//! The retail scenario end to end (paper Figs. 1, 5, 6, 7).
//!
//! Generates a retail database, then contrasts the two result shapes:
//! the classical denormalized join (one wide relation, duplicated
//! customers, NULL-padded outers in the relational baseline) versus the
//! FQL subdatabase (reduced relations, separate inner/outer streams).
//!
//! Run with: `cargo run -p fdm-examples --bin retail_orders`

use fdm_fql::prelude::*;
use fdm_relational::{outer_join, OuterSide};
use fdm_workload::{generate, to_fdm, to_relational, RetailConfig};

fn main() -> fdm_core::Result<()> {
    let cfg = RetailConfig {
        customers: 200,
        products: 50,
        orders: 600,
        product_skew: 1.0,
        inactive_customers: 0.25,
        seed: 2026,
    };
    let data = generate(&cfg);
    let db = to_fdm(&data);
    let rel = to_relational(&data);
    println!(
        "retail db: {} customers, {} products, {} orders",
        data.customers.len(),
        data.products.len(),
        data.orders.len()
    );

    // ── Fig. 6: the denormalized join (FQL can do it too) ───────────────
    let joined = join(&db)?;
    println!("\nFig. 6  join(subdatabase) -> single relation function");
    println!("  denormalized rows: {}", joined.len());
    let footprint: usize = joined.tuples()?.iter().map(|(_, t)| t.attr_count()).sum();
    println!("  total attribute values materialized: {footprint}");

    // ── Fig. 5: the subdatabase result instead ───────────────────────────
    let sub = subdatabase(&db, &["customers", "products", "order"]);
    let reduced = reduce_db(&sub)?;
    println!("\nFig. 5  reduce_DB(subdatabase) -> a database, not a table");
    for (name, entry) in reduced.iter() {
        println!("  {name}: {}", entry.kind());
    }
    let c = reduced.relation("customers")?;
    let p = reduced.relation("products")?;
    let o = reduced.relationship("order")?;
    println!(
        "  customers {} -> {}, products {} -> {}, orders {}",
        data.customers.len(),
        c.len(),
        data.products.len(),
        p.len(),
        o.len()
    );
    let sub_footprint = c.len() * 3 + p.len() * 3 + o.len() * 2;
    println!("  subdatabase footprint ~{sub_footprint} values vs denormalized {footprint}");

    // ── Fig. 7: generalized outer join, no NULLs ─────────────────────────
    let out = outer(&db, &["products", "customers"])?;
    println!("\nFig. 7  outer-marked relations -> separate inner/outer streams");
    println!(
        "  products.inner (sold): {}, products.outer (unsold): {}",
        out.relation("products.inner")?.len(),
        out.relation("products.outer")?.len()
    );
    println!(
        "  customers.inner (active): {}, customers.outer (never ordered): {}",
        out.relation("customers.inner")?.len(),
        out.relation("customers.outer")?.len()
    );

    // the relational baseline answer: one stream, NULL-padded
    let ro = outer_join(&rel.customers, &rel.orders, "cid", "cid", OuterSide::Left);
    println!(
        "\n  relational LEFT OUTER JOIN: {} rows, {} manufactured NULLs",
        ro.len(),
        ro.null_count()
    );
    println!("  (FQL version above manufactured 0 NULLs — the type doesn't even exist)");

    // ── Fig. 4b/c: grouping + aggregation on the join result ─────────────
    let per_customer = group_and_aggregate(
        &join(&db)?,
        &["customers.name"],
        &[
            ("orders", AggSpec::Count),
            ("total_qty", AggSpec::Sum("order.quantity".into())),
        ],
    )?;
    let top = filter_expr(&per_customer, "orders >= $n", Params::new().set("n", 8))?;
    println!(
        "\nFig. 4b/c  customers with >= 8 orders: {} of {}",
        top.len(),
        per_customer.len()
    );

    Ok(())
}
