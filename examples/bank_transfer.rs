//! Transactions with snapshot semantics (paper Fig. 11).
//!
//! The bank-accounts example: `begin()` ... `commit()`, immediate
//! application to the transaction's snapshot, first-committer-wins
//! conflicts, and a concurrent stress run that conserves money exactly.
//!
//! Run with: `cargo run -p fdm-examples --bin bank_transfer`

use fdm_core::{DatabaseF, FdmError, RelationF, TupleF, Value};
use fdm_txn::Store;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() -> fdm_core::Result<()> {
    // accounts 0..16, 1000 each
    let mut accounts = RelationF::new("accounts", &["id"]);
    for id in 0..16i64 {
        accounts = accounts.insert(
            Value::Int(id),
            TupleF::builder("a").attr("balance", 1000i64).build(),
        )?;
    }
    let store = Store::new(DatabaseF::new("bank").with_relation(accounts));

    // ── Fig. 11 verbatim ─────────────────────────────────────────────────
    // begin(); accounts[42->0]['balance'] -= 100; accounts[84->1] += 100; commit()
    let mut txn = store.begin();
    txn.modify_attr("accounts", &Value::Int(0), "balance", |v| {
        v.sub(&Value::Int(100))
    })?;
    txn.modify_attr("accounts", &Value::Int(1), "balance", |v| {
        v.add(&Value::Int(100))
    })?;
    println!(
        "inside txn  : acct0 = {}, acct1 = {} (immediately applied to the txn snapshot)",
        txn.get_attr("accounts", &Value::Int(0), "balance")?,
        txn.get_attr("accounts", &Value::Int(1), "balance")?,
    );
    println!(
        "outside txn : acct0 = {} (committed state untouched before commit)",
        store
            .snapshot()
            .relation("accounts")?
            .lookup(&Value::Int(0))
            .unwrap()
            .get("balance")?
    );
    let v = txn.commit()?;
    println!("committed as version {v}");

    // ── conflicting writers: first committer wins ────────────────────────
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    t1.modify_attr("accounts", &Value::Int(5), "balance", |v| {
        v.sub(&Value::Int(10))
    })?;
    t1.modify_attr("accounts", &Value::Int(6), "balance", |v| {
        v.add(&Value::Int(10))
    })?;
    t2.modify_attr("accounts", &Value::Int(5), "balance", |v| {
        v.sub(&Value::Int(20))
    })?;
    t2.modify_attr("accounts", &Value::Int(7), "balance", |v| {
        v.add(&Value::Int(20))
    })?;
    t1.commit()?;
    match t2.commit() {
        Err(FdmError::TransactionConflict { detail, .. }) => {
            println!("\nsecond writer aborted: {detail}");
        }
        other => panic!("expected a conflict, got {other:?}"),
    }

    // ── concurrent stress: money is conserved exactly ────────────────────
    const THREADS: usize = 8;
    const TRANSFERS: usize = 200;
    let committed = Arc::new(AtomicUsize::new(0));
    let conflicted = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let store = Arc::clone(&store);
            let committed = Arc::clone(&committed);
            let conflicted = Arc::clone(&conflicted);
            s.spawn(move || {
                let mut x = (tid as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..TRANSFERS {
                    let from = (next() % 16) as i64;
                    let to = ((from + 1 + (next() % 15) as i64) % 16).max(0);
                    let amount = 1 + (next() % 20) as i64;
                    let mut txn = store.begin();
                    txn.modify_attr("accounts", &Value::Int(from), "balance", |v| {
                        v.sub(&Value::Int(amount))
                    })
                    .unwrap();
                    txn.modify_attr("accounts", &Value::Int(to), "balance", |v| {
                        v.add(&Value::Int(amount))
                    })
                    .unwrap();
                    match txn.commit() {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            conflicted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let total: i64 = store
        .snapshot()
        .relation("accounts")?
        .tuples()?
        .iter()
        .map(|(_, t)| t.get("balance").unwrap().as_int("balance").unwrap())
        .sum();
    println!(
        "\nstress: {} committed, {} conflicted (first-committer-wins), total balance = {total}",
        committed.load(Ordering::Relaxed),
        conflicted.load(Ordering::Relaxed),
    );
    assert_eq!(total, 16 * 1000, "money conserved exactly");
    println!("invariant holds: 16 * 1000 = {total}");
    Ok(())
}
