//! One ER schema, two compilation targets (paper Fig. 1).
//!
//! Declares the retail ER schema once, compiles it to (a) an FDM database
//! — relationship functions over shared domains, FKs by construction —
//! and (b) a classical relational schema — junction table + FK metadata
//! the engine itself cannot enforce.
//!
//! Run with: `cargo run -p fdm-examples --bin erm_to_fdm`

use fdm_core::{TupleF, Value};
use fdm_erm::{compile_to_fdm, compile_to_relational, retail_schema};

fn main() -> fdm_core::Result<()> {
    let schema = retail_schema();
    println!("ER schema '{}':", schema.name);
    for e in &schema.entities {
        println!("  entity {} (key {}: {})", e.name, e.key.name, e.key.ty);
    }
    for r in &schema.relationships {
        let ends: Vec<String> = r
            .ends
            .iter()
            .map(|e| format!("{}:{:?}", e.entity, e.cardinality))
            .collect();
        println!("  relationship {}({})", r.name, ends.join(", "));
    }

    // ── target 1: FDM ────────────────────────────────────────────────────
    let db = compile_to_fdm(&schema);
    println!("\ncompiled to FDM:");
    for (name, entry) in db.iter() {
        println!("  DB('{name}') = {}", entry.kind());
    }
    for (name, _) in db.shared_domains() {
        println!("  shared domain: {name}");
    }

    // load a little data; the FK constraint is domain sharing, enforced
    // at the relationship function itself:
    let customers = db.relation("customers")?;
    let customers = customers.insert(
        Value::Int(1),
        TupleF::builder("c")
            .attr("name", "Alice")
            .attr("age", 43)
            .build(),
    )?;
    let db = db.with_entry("customers", fdm_core::FnValue::from(customers));
    let order = db.relationship("order")?;
    let order = order.insert(
        &[Value::Int(1), Value::Int(7)],
        TupleF::builder("o")
            .attr("name", "o1")
            .attr("date", "2026-06-12")
            .build(),
    )?;
    println!(
        "\n  order.relates(1, 7) = {}   (relationship predicate, Def. 3)",
        order.relates(&[Value::Int(1), Value::Int(7)])
    );
    // type errors are caught by the shared domain:
    let bad = order.insert_link(&[Value::str("oops"), Value::Int(7)]);
    println!("  inserting a string cid: {}", bad.unwrap_err());

    // the declared attribute types are constraints on the relation fn:
    let bad_age = db.relation("customers")?.insert(
        Value::Int(2),
        TupleF::builder("c")
            .attr("name", "Bob")
            .attr("age", "thirty")
            .build(),
    );
    println!("  inserting age='thirty': {}", bad_age.unwrap_err());

    // ── target 2: classical relational ──────────────────────────────────
    let rel = compile_to_relational(&schema);
    println!("\ncompiled to relational:");
    for t in &rel.tables {
        let cols: Vec<&str> = t.schema().cols().iter().map(|c| c.as_ref()).collect();
        println!("  table {}({})", t.name(), cols.join(", "));
    }
    for (ft, fc, tt, tc) in &rel.foreign_keys {
        println!("  FK {ft}.{fc} -> {tt}.{tc}   (metadata only — separate enforcement needed)");
    }
    Ok(())
}
