//! Time travel: querying the past for free.
//!
//! Because the database function is a persistent value, retaining history
//! costs one root pointer per version — unchanged data is shared. This
//! example keeps every commit, queries a past version, and diffs two
//! points in time with the Fig. 9 set operations.
//!
//! Run with: `cargo run -p fdm-examples --bin time_travel`

use fdm_core::{DatabaseF, RelationF, TupleF, Value};
use fdm_fql::prelude::*;
use fdm_txn::{History, Store};
use std::sync::Arc;

fn main() -> fdm_core::Result<()> {
    let products = RelationF::new("products", &["pid"])
        .insert(
            Value::Int(1),
            TupleF::builder("p")
                .attr("name", "keyboard")
                .attr("price", 49.0)
                .build(),
        )?
        .insert(
            Value::Int(2),
            TupleF::builder("p")
                .attr("name", "mouse")
                .attr("price", 19.0)
                .build(),
        )?;
    let store = Store::new(DatabaseF::new("shop").with_relation(products));
    let history = Arc::new(History::new(64));
    history.record(store.version(), store.snapshot());

    // a week of price changes and catalog churn, one commit per "day"
    let days: &[(&str, i64, f64)] = &[
        ("mon", 1, 44.0),
        ("tue", 2, 17.5),
        ("wed", 1, 39.0),
        ("thu", 2, 21.0),
        ("fri", 1, 35.0),
    ];
    for (day, pid, price) in days {
        let mut txn = store.begin();
        txn.update_attr("products", &Value::Int(*pid), "price", *price)?;
        if *day == "wed" {
            txn.upsert(
                "products",
                Value::Int(3),
                TupleF::builder("p")
                    .attr("name", "webcam")
                    .attr("price", 89.0)
                    .build(),
            )?;
        }
        let v = txn.commit()?;
        history.record(v, store.snapshot());
        println!("committed {day} as version {v}");
    }

    // ── query a past version like any other database ─────────────────────
    let monday = history.as_of(1)?;
    let keyboard_mon = monday
        .relation("products")?
        .lookup(&Value::Int(1))
        .unwrap()
        .get("price")?;
    let keyboard_now = store
        .snapshot()
        .relation("products")?
        .lookup(&Value::Int(1))
        .unwrap()
        .get("price")?;
    println!("\nkeyboard price: monday = {keyboard_mon}, now = {keyboard_now}");
    assert_eq!(keyboard_mon, Value::Float(44.0));
    assert_eq!(keyboard_now, Value::Float(35.0));

    // a full FQL query against the past
    let cheap_then = filter_expr(
        monday.relation("products")?.as_ref(),
        "price < $p",
        Params::new().set("p", 20.0),
    )?;
    println!("products under 20 on monday: {}", cheap_then.len());

    // ── diff two versions with Fig. 9 machinery ──────────────────────────
    let diff = difference(&history.as_of(1)?, &history.as_of(5)?)?;
    println!("\nchanges between monday and friday:");
    for (name, entry) in diff.iter() {
        let n = entry.as_relation().map(|r| r.len()).unwrap_or(0);
        println!("  {name}: {n} tuple(s)");
    }
    let added = diff.relation("products.added")?;
    // webcam appeared + both repriced tuples count as added/removed pairs
    assert!(!added.is_empty());
    assert!(history.versions().len() >= 6);
    println!("\nretained versions: {:?}", history.versions());
    Ok(())
}
