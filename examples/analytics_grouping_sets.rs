//! Grouping sets the FDM way vs the SQL way (paper Fig. 8).
//!
//! The same three-grouping query — by age, by (age, name), global min —
//! run on both engines. SQL returns ONE relation with NULL-filled columns
//! where a grouping doesn't apply; FDM returns one relation function per
//! semantically different grouping, with exactly its own attributes.
//!
//! Run with: `cargo run -p fdm-examples --bin analytics_grouping_sets`

use fdm_fql::prelude::*;
use fdm_fql::{cube, rollup};
use fdm_relational::{grouping_sets as rel_grouping_sets, Agg, GroupingSet};
use fdm_workload::{generate, to_fdm, to_relational, RetailConfig};

fn main() -> fdm_core::Result<()> {
    let data = generate(&RetailConfig {
        customers: 500,
        products: 50,
        orders: 1500,
        product_skew: 1.0,
        inactive_customers: 0.1,
        seed: 11,
    });
    let db = to_fdm(&data);
    let rel = to_relational(&data);
    let customers = db.relation("customers")?;

    // ── FDM: one relation function per grouping (Fig. 8) ────────────────
    let gset = grouping_sets(
        &customers,
        &[
            GroupingSpec::new("age_cc", &["age"], &[("count", AggSpec::Count)]),
            GroupingSpec::new(
                "state_age_cc",
                &["state", "age"],
                &[("count", AggSpec::Count)],
            ),
            GroupingSpec::new("global_min", &[], &[("min", AggSpec::Min("age".into()))]),
        ],
    )?;
    println!(
        "FDM grouping sets -> {} separate relation functions:",
        gset.len()
    );
    for (name, entry) in gset.iter() {
        let r = entry.as_relation().unwrap();
        let attrs: Vec<String> = r
            .tuples()?
            .first()
            .map(|(_, t)| t.attr_names().map(|n| n.to_string()).collect())
            .unwrap_or_default();
        println!("  {name}: {} tuples, attrs {attrs:?}", r.len());
    }

    // ── SQL baseline: one NULL-filled relation ───────────────────────────
    let sql_out = rel_grouping_sets(
        &rel.customers,
        &[
            GroupingSet {
                by: vec!["age".into()],
                aggs: vec![Agg::CountStar],
            },
            GroupingSet {
                by: vec!["state".into(), "age".into()],
                aggs: vec![Agg::CountStar],
            },
            GroupingSet {
                by: vec![],
                aggs: vec![Agg::Min("age".into())],
            },
        ],
    );
    println!(
        "\nSQL GROUPING SETS -> ONE relation: {} rows x {} cols = {} cells, {} of them NULL ({:.0}%)",
        sql_out.len(),
        sql_out.schema().width(),
        sql_out.cell_count(),
        sql_out.null_count(),
        100.0 * sql_out.null_count() as f64 / sql_out.cell_count() as f64
    );
    println!("(the FDM result above contains zero NULLs — the concept doesn't exist)");

    // ── rollup & cube, same contrast ─────────────────────────────────────
    let r = rollup(&customers, &["state", "age"], &[("count", AggSpec::Count)])?;
    println!("\nFDM rollup(state, age): {} separate relations", r.len());
    let c = cube(&customers, &["state", "age"], &[("count", AggSpec::Count)])?;
    println!("FDM cube(state, age):   {} separate relations", c.len());
    let sql_cube = fdm_relational::cube(&rel.customers, &["state", "age"], &[Agg::CountStar]);
    println!(
        "SQL cube(state, age):   1 relation, {} rows, {} NULLs",
        sql_cube.len(),
        sql_cube.null_count()
    );

    // each FDM grouping can be queried on directly, like any relation fn:
    let busy = filter_expr(
        gset.relation("age_cc")?.as_ref(),
        "count >= $n",
        Params::new().set("n", 12),
    )?;
    println!("\nage groups with >= 12 customers: {}", busy.len());
    Ok(())
}
