//! Quickstart: the FDM in five minutes.
//!
//! Builds the paper's running example from scratch — tuples as functions,
//! relations as functions, databases as functions — then runs the Fig. 4a
//! filter in all six costumes.
//!
//! Run with: `cargo run -p fdm-examples --bin quickstart`

use fdm_core::{DatabaseF, Domain, FnValue, RelationF, TupleF, Value};
use fdm_expr::{parse, Params, GT};
use fdm_fql::prelude::*;

fn main() -> fdm_core::Result<()> {
    // ── tuples are functions: t1('foo') = 12 ────────────────────────────
    let t1 = TupleF::builder("t1")
        .attr("name", "Alice")
        .attr("foo", 12)
        .build();
    println!("t1('foo')  = {}", t1.get("foo")?);
    println!("t1('name') = {}", t1.get("name")?);

    // computed attributes are indistinguishable from stored ones:
    let t = TupleF::builder("t")
        .attr("name", "Alice")
        .attr("foo", 12)
        .computed("bar", |t| t.get("foo")?.mul(&Value::Int(42)))
        .build();
    println!("t('bar')   = {}  (computed: 42 * foo)", t.get("bar")?);

    // ── relations are functions: R1(1) = t1 ─────────────────────────────
    let customers = RelationF::new("customers", &["cid"])
        .insert(
            Value::Int(1),
            TupleF::builder("c1")
                .attr("name", "Alice")
                .attr("age", 43)
                .build(),
        )?
        .insert(
            Value::Int(2),
            TupleF::builder("c2")
                .attr("name", "Bob")
                .attr("age", 30)
                .build(),
        )?
        .insert(
            Value::Int(3),
            TupleF::builder("c3")
                .attr("name", "Carol")
                .attr("age", 55)
                .build(),
        )?;
    println!(
        "\ncustomers(1)('name') = {}",
        customers.lookup(&Value::Int(1)).unwrap().get("name")?
    );

    // a computed relation: data that was never inserted (paper's R4)
    let squares = RelationF::computed("squares", &["n"], Domain::IntRange(1, 1_000_000), |k| {
        let n = k.as_int("n")?;
        Ok(Value::Fn(FnValue::from(
            TupleF::builder("sq")
                .attr("n", n)
                .attr("square", n * n)
                .build(),
        )))
    });
    println!(
        "squares(731)('square') = {}",
        squares.lookup(&Value::Int(731)).unwrap().get("square")?
    );

    // ── databases are functions: DB('customers') = customers ────────────
    let db = DatabaseF::new("DB").with_relation(customers);
    let customers = db.relation("customers")?;

    // ── Fig. 4a: ONE query, SIX costumes ────────────────────────────────
    println!("\ncustomers older than 42, six ways:");
    // 1. closure, call syntax
    let a = filter_fn(&customers, |t| Ok(t.get("age")?.as_int("age")? > 42))?;
    // 2. closure, "dot" syntax (same thing in Rust)
    let b = filter_fn(&customers, |t| {
        Ok(matches!(t.get("age")?, Value::Int(i) if i > 42))
    })?;
    // 3. Django-ORM style kwargs
    let c = filter_kwargs(&customers, &[("age__gt", Value::Int(42))])?;
    // 4. broken-up predicate with imported operators
    let d = filter_attr(&customers, "age", GT, 42)?;
    // 5. textual predicate with free parameters (injection-proof)
    let e = filter_expr(&customers, "age>$foo", Params::new().set("foo", 42))?;
    // 6. pre-parsed, pre-bound expression
    let bound = Params::new()
        .set("foo", 42)
        .bind(&parse("age>$foo").unwrap())?;
    let f = filter_bound(&customers, &bound)?;

    for (i, r) in [&a, &b, &c, &d, &e, &f].iter().enumerate() {
        let names: Vec<String> = r
            .tuples()?
            .into_iter()
            .map(|(_, t)| t.get("name").unwrap().to_string())
            .collect();
        println!("  costume {}: {} -> {:?}", i + 1, r.len(), names);
    }
    assert_eq!(a.len(), 2);

    // ── lazy plans + the optimizer (§4.2) ────────────────────────────────
    let q = Query::scan("customers")
        .filter("age > $min", Params::new().set("min", 42))
        .project(&["name"]);
    println!("\nlazy plan:\n{}", q.explain());
    let optimized = q.optimize();
    let out = optimized.eval(&db)?;
    println!("evaluates to {} tuple function(s)", out.len());

    Ok(())
}
