//! SQL injection vs FQL's structural immunity (paper contribution 10).
//!
//! The same user-facing feature — "look my account up by name" — built
//! twice: once on the string-spliced mini-SQL baseline (the classic
//! vulnerable pattern), once on FQL's value-level parameter binding.
//! The classic `' OR '1'='1` payload dumps the whole table on the first
//! and is just an unusual name on the second.
//!
//! Run with: `cargo run -p fdm-examples --bin injection_demo`

use fdm_core::{RelationF, TupleF, Value};
use fdm_expr::Params;
use fdm_fql::filter_expr;
use fdm_relational::{Catalog, Cell, Relation, Schema};

fn main() -> fdm_core::Result<()> {
    // the same user table in both engines
    let mut users_rel = Relation::new("users", Schema::new(&["id", "name", "secret"]));
    users_rel.extend([
        vec![Cell::Int(1), Cell::str("alice"), Cell::str("s3cr3t-a")],
        vec![Cell::Int(2), Cell::str("bob"), Cell::str("s3cr3t-b")],
        vec![Cell::Int(3), Cell::str("carol"), Cell::str("s3cr3t-c")],
    ]);
    let mut catalog = Catalog::new();
    catalog.register(users_rel);

    let mut users_fdm = RelationF::new("users", &["id"]);
    for (id, name, secret) in [
        (1, "alice", "s3cr3t-a"),
        (2, "bob", "s3cr3t-b"),
        (3, "carol", "s3cr3t-c"),
    ] {
        users_fdm = users_fdm.insert(
            Value::Int(id),
            TupleF::builder("u")
                .attr("name", name)
                .attr("secret", secret)
                .build(),
        )?;
    }

    let honest = "alice";
    let payload = "' OR '1'='1";

    // ── the vulnerable pattern: string splicing ──────────────────────────
    println!("SQL (string splicing):");
    let ok = catalog
        .query_where_name_equals_spliced("users", honest)
        .unwrap();
    println!("  input {honest:?}: {} row(s)", ok.len());
    let owned = catalog
        .query_where_name_equals_spliced("users", payload)
        .unwrap();
    println!(
        "  input {payload:?}: {} row(s)  <-- INJECTED: whole table dumped, secrets included",
        owned.len()
    );
    assert_eq!(owned.len(), 3);

    // ── FQL: parameters are values, never parsed ─────────────────────────
    println!("\nFQL (value-level parameter binding):");
    let ok = filter_expr(&users_fdm, "name == $n", Params::new().set("n", honest))?;
    println!("  input {honest:?}: {} tuple function(s)", ok.len());
    let safe = filter_expr(&users_fdm, "name == $n", Params::new().set("n", payload))?;
    println!(
        "  input {payload:?}: {} tuple function(s)  <-- just a weird name; no grammar to escape into",
        safe.len()
    );
    assert_eq!(safe.len(), 0);

    println!("\nwhy: the predicate \"name == $n\" is parsed BEFORE any runtime data exists;");
    println!("binding substitutes a Value into the finished AST. There is no API anywhere");
    println!("in fdm-expr/fdm-fql that concatenates data into query text — immunity is");
    println!("a property of the design, not of driver discipline (paper contribution 10).");
    Ok(())
}
