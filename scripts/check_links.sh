#!/usr/bin/env bash
# Markdown link-liveness check for the repo's narrative docs.
#
# Extracts every inline markdown link target from the listed files and
# verifies that relative targets exist in the working tree, resolved
# against the linking file's own directory — standard markdown semantics,
# so docs under docs/ may link `../crates/...` (anchors and external URLs
# are skipped — the build environment is offline). Fails with a list of
# dead links, so CI catches a renamed crate directory or a moved pinning
# test the moment a doc goes stale.
#
#   scripts/check_links.sh [file.md ...]   # defaults to the repo's root
#                                          # docs plus docs/ recursively

set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md ARCHITECTURE.md ROADMAP.md CHANGES.md)
    while IFS= read -r doc; do
        files+=("$doc")
    done < <(find docs -name '*.md' 2>/dev/null | sort)
fi

fail=0
for f in "${files[@]}"; do
    if [ ! -f "$f" ]; then
        echo "check_links: missing doc file $f"
        fail=1
        continue
    fi
    # inline links: [text](target) — tolerate several per line
    targets=$(grep -o '\](\([^)]*\))' "$f" | sed 's/^](//; s/)$//')
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
            http://*|https://*|mailto:*) continue ;;   # external: offline env
            \#*) continue ;;                            # intra-doc anchor
        esac
        path="${target%%#*}"                            # strip anchors
        [ -z "$path" ] && continue
        # resolve relative to the linking file's directory (for root-level
        # docs this is the repo root, as before)
        if [ ! -e "$(dirname "$f")/$path" ]; then
            echo "check_links: $f → dead link: $target"
            fail=1
        fi
    done <<< "$targets"
done

if [ "$fail" -ne 0 ]; then
    echo "check_links: FAILED"
    exit 1
fi
echo "check_links: ok (${files[*]})"
