//! Time travel: queries against past versions.
//!
//! Because the whole database function is a persistent value, *keeping
//! history is free apart from the root pointers*: retaining version v's
//! root shares all unchanged structure with version v+1. This module adds
//! a bounded version history to [`crate::Store`]-like usage — an FDM
//! extension the paper's model makes nearly trivial ("tears down the
//! boundary between data that is stored and data that is computed" —
//! here, between data that is *current* and data that is *past*).

use fdm_core::{DatabaseF, FdmError, Result};
use fdm_storage::Version;
use parking_lot::RwLock;

/// A bounded history of committed database versions.
///
/// # Examples
///
/// ```
/// use fdm_core::DatabaseF;
/// use fdm_txn::History;
///
/// let h = History::new(8);
/// h.record(0, DatabaseF::new("v0"));
/// h.record(1, DatabaseF::new("v1"));
/// assert_eq!(h.as_of(0).unwrap().name(), "v0");
/// assert_eq!(h.latest().unwrap().0, 1);
/// ```
pub struct History {
    inner: RwLock<Vec<(Version, DatabaseF)>>,
    capacity: usize,
}

impl History {
    /// Creates a history retaining up to `capacity` versions.
    pub fn new(capacity: usize) -> History {
        History {
            inner: RwLock::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records a committed version (drops the oldest beyond capacity).
    pub fn record(&self, version: Version, db: DatabaseF) {
        let mut g = self.inner.write();
        g.push((version, db));
        if g.len() > self.capacity {
            let excess = g.len() - self.capacity;
            g.drain(..excess);
        }
    }

    /// The snapshot that was current *at* `version`: the newest recorded
    /// version ≤ `version`. Errors if that version has been evicted.
    pub fn as_of(&self, version: Version) -> Result<DatabaseF> {
        let g = self.inner.read();
        g.iter()
            .rev()
            .find(|(v, _)| *v <= version)
            .map(|(_, db)| db.clone())
            .ok_or_else(|| {
                FdmError::Other(format!(
                    "version {version} is no longer retained (history keeps {} entries)",
                    self.capacity
                ))
            })
    }

    /// The newest recorded version, if any.
    pub fn latest(&self) -> Option<(Version, DatabaseF)> {
        self.inner.read().last().cloned()
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// `true` if no versions are recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// All retained `(version, db)` pairs, oldest first.
    pub fn versions(&self) -> Vec<Version> {
        self.inner.read().iter().map(|(v, _)| *v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Store;
    use fdm_core::{RelationF, TupleF, Value};
    use fdm_fql::difference;
    use std::sync::Arc;

    #[test]
    fn as_of_finds_enclosing_version() {
        let h = History::new(10);
        h.record(0, DatabaseF::new("v0"));
        h.record(3, DatabaseF::new("v3"));
        h.record(7, DatabaseF::new("v7"));
        assert_eq!(h.as_of(0).unwrap().name(), "v0");
        assert_eq!(h.as_of(2).unwrap().name(), "v0");
        assert_eq!(h.as_of(3).unwrap().name(), "v3");
        assert_eq!(h.as_of(100).unwrap().name(), "v7");
        assert_eq!(h.versions(), vec![0, 3, 7]);
    }

    #[test]
    fn eviction_is_bounded_and_reported() {
        let h = History::new(2);
        h.record(0, DatabaseF::new("v0"));
        h.record(1, DatabaseF::new("v1"));
        h.record(2, DatabaseF::new("v2"));
        assert_eq!(h.len(), 2);
        let err = h.as_of(0).unwrap_err();
        assert!(err.to_string().contains("no longer retained"), "{err}");
        assert_eq!(h.as_of(1).unwrap().name(), "v1");
    }

    #[test]
    fn time_travel_with_a_store() {
        // the intended usage: record each commit, then diff versions
        let accounts = RelationF::new("accounts", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("a").attr("balance", 100).build(),
            )
            .unwrap();
        let store = Store::new(DatabaseF::new("bank").with_relation(accounts));
        let history = Arc::new(History::new(16));
        history.record(store.version(), store.snapshot());

        for i in 0..5 {
            let mut txn = store.begin();
            txn.update_attr("accounts", &Value::Int(1), "balance", 100 + i)
                .unwrap();
            let v = txn.commit().unwrap();
            history.record(v, store.snapshot());
        }

        // query the past
        let past = history.as_of(2).unwrap();
        assert_eq!(
            past.relation("accounts")
                .unwrap()
                .lookup(&Value::Int(1))
                .unwrap()
                .get("balance")
                .unwrap(),
            Value::Int(101)
        );
        // and diff two points in time with Fig. 9 machinery
        let diff = difference(&history.as_of(1).unwrap(), &history.as_of(5).unwrap()).unwrap();
        assert_eq!(diff.relation("accounts.added").unwrap().len(), 1);
        assert_eq!(diff.relation("accounts.removed").unwrap().len(), 1);
    }

    #[test]
    fn empty_history() {
        let h = History::new(4);
        assert!(h.is_empty());
        assert!(h.latest().is_none());
        assert!(h.as_of(0).is_err());
    }
}
