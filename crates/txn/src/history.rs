//! Time travel: queries against past versions.
//!
//! Because the whole database function is a persistent value, *keeping
//! history is free apart from the root pointers*: retaining version v's
//! root shares all unchanged structure with version v+1. This module adds
//! a bounded version history to [`crate::Store`]-like usage — an FDM
//! extension the paper's model makes nearly trivial ("tears down the
//! boundary between data that is stored and data that is computed" —
//! here, between data that is *current* and data that is *past*).

use fdm_core::{DatabaseF, FdmError, Result};
use fdm_storage::Version;
use parking_lot::RwLock;

/// A bounded history of committed database versions.
///
/// # Examples
///
/// ```
/// use fdm_core::DatabaseF;
/// use fdm_txn::History;
///
/// let h = History::new(8);
/// h.record(0, DatabaseF::new("v0"));
/// h.record(1, DatabaseF::new("v1"));
/// assert_eq!(h.as_of(0).unwrap().name(), "v0");
/// assert_eq!(h.latest().unwrap().0, 1);
/// ```
pub struct History {
    inner: RwLock<Vec<(Version, DatabaseF)>>,
    capacity: usize,
}

impl History {
    /// Creates a history retaining up to `capacity` versions.
    pub fn new(capacity: usize) -> History {
        History {
            inner: RwLock::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records a committed version (drops the oldest beyond capacity).
    ///
    /// Entries are kept sorted by version: two committers that install
    /// versions `v` and `v+1` may reach the history in either order (the
    /// record happens after the root CAS), so the insert position is
    /// found from the rear rather than assumed to be the end. Recording
    /// the same version twice replaces the earlier value.
    pub fn record(&self, version: Version, db: DatabaseF) {
        let mut g = self.inner.write();
        let at = g
            .iter()
            .rposition(|(v, _)| *v <= version)
            .map(|i| i + 1)
            .unwrap_or(0);
        if at > 0 && g[at - 1].0 == version {
            g[at - 1].1 = db;
        } else {
            g.insert(at, (version, db));
        }
        if g.len() > self.capacity {
            let excess = g.len() - self.capacity;
            g.drain(..excess);
        }
    }

    /// The snapshot that was current *at* `version`: the newest recorded
    /// version ≤ `version`. Errors with [`FdmError::VersionEvicted`] if
    /// that version is older than everything retained.
    pub fn as_of(&self, version: Version) -> Result<DatabaseF> {
        let g = self.inner.read();
        g.iter()
            .rev()
            .find(|(v, _)| *v <= version)
            .map(|(_, db)| db.clone())
            .ok_or_else(|| FdmError::VersionEvicted {
                version,
                oldest: g.first().map(|(v, _)| *v),
                newest: g.last().map(|(v, _)| *v),
            })
    }

    /// Drops everything but the newest `keep_last_n` versions (min 1),
    /// bounding the log explicitly; returns how many entries were
    /// evicted. Reads inside the kept window are unaffected; reads below
    /// it error with [`FdmError::VersionEvicted`].
    pub fn compact(&self, keep_last_n: usize) -> usize {
        let mut g = self.inner.write();
        let keep = keep_last_n.max(1);
        if g.len() <= keep {
            return 0;
        }
        let evicted = g.len() - keep;
        g.drain(..evicted);
        evicted
    }

    /// The oldest retained version, if any.
    pub fn oldest(&self) -> Option<Version> {
        self.inner.read().first().map(|(v, _)| *v)
    }

    /// The newest recorded version, if any.
    pub fn latest(&self) -> Option<(Version, DatabaseF)> {
        self.inner.read().last().cloned()
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// `true` if no versions are recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// All retained `(version, db)` pairs, oldest first.
    pub fn versions(&self) -> Vec<Version> {
        self.inner.read().iter().map(|(v, _)| *v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Store;
    use fdm_core::{RelationF, TupleF, Value};
    use fdm_fql::difference;
    use std::sync::Arc;

    #[test]
    fn as_of_finds_enclosing_version() {
        let h = History::new(10);
        h.record(0, DatabaseF::new("v0"));
        h.record(3, DatabaseF::new("v3"));
        h.record(7, DatabaseF::new("v7"));
        assert_eq!(h.as_of(0).unwrap().name(), "v0");
        assert_eq!(h.as_of(2).unwrap().name(), "v0");
        assert_eq!(h.as_of(3).unwrap().name(), "v3");
        assert_eq!(h.as_of(100).unwrap().name(), "v7");
        assert_eq!(h.versions(), vec![0, 3, 7]);
    }

    #[test]
    fn eviction_is_bounded_and_reported() {
        let h = History::new(2);
        h.record(0, DatabaseF::new("v0"));
        h.record(1, DatabaseF::new("v1"));
        h.record(2, DatabaseF::new("v2"));
        assert_eq!(h.len(), 2);
        let err = h.as_of(0).unwrap_err();
        assert!(err.to_string().contains("no longer retained"), "{err}");
        assert!(
            err.to_string().contains("version 0"),
            "error names the evicted version: {err}"
        );
        assert!(
            err.to_string().contains("v1..=v2"),
            "error names the retention window: {err}"
        );
        assert!(
            matches!(
                err,
                FdmError::VersionEvicted {
                    version: 0,
                    oldest: Some(1),
                    newest: Some(2)
                }
            ),
            "eviction is a typed error: {err:?}"
        );
        assert_eq!(h.as_of(1).unwrap().name(), "v1");
        assert_eq!(h.oldest(), Some(1));
    }

    #[test]
    fn out_of_order_records_are_insert_sorted() {
        let h = History::new(10);
        h.record(2, DatabaseF::new("v2"));
        h.record(0, DatabaseF::new("v0"));
        h.record(1, DatabaseF::new("v1"));
        assert_eq!(h.versions(), vec![0, 1, 2]);
        assert_eq!(h.as_of(1).unwrap().name(), "v1");
        // re-recording a version replaces it
        h.record(1, DatabaseF::new("v1b"));
        assert_eq!(h.versions(), vec![0, 1, 2]);
        assert_eq!(h.as_of(1).unwrap().name(), "v1b");
    }

    #[test]
    fn compact_keeps_the_newest_window() {
        let h = History::new(64);
        for v in 0..10 {
            h.record(v, DatabaseF::new(format!("v{v}")));
        }
        assert_eq!(h.compact(3), 7);
        assert_eq!(h.versions(), vec![7, 8, 9]);
        assert_eq!(h.as_of(8).unwrap().name(), "v8");
        let err = h.as_of(6).unwrap_err();
        assert!(matches!(
            err,
            FdmError::VersionEvicted {
                version: 6,
                oldest: Some(7),
                newest: Some(9)
            }
        ));
        assert_eq!(h.compact(3), 0, "already inside the window");
        assert_eq!(h.compact(0), 2, "keep_last_n is clamped to 1");
        assert_eq!(h.versions(), vec![9]);
    }

    #[test]
    fn compact_edge_cases_are_pinned() {
        // compact(0) clamps to keeping one version, never zero.
        let h = History::new(16);
        h.record(0, DatabaseF::new("v0"));
        h.record(1, DatabaseF::new("v1"));
        h.record(2, DatabaseF::new("v2"));
        assert_eq!(h.compact(0), 2);
        assert_eq!(h.versions(), vec![2]);
        assert_eq!(h.compact(0), 0, "single entry survives repeated compact(0)");

        // keep_last_n > len is a no-op, not an error or over-retention.
        let h = History::new(16);
        h.record(5, DatabaseF::new("v5"));
        h.record(6, DatabaseF::new("v6"));
        assert_eq!(h.compact(100), 0);
        assert_eq!(h.versions(), vec![5, 6]);

        // compacting an empty history is a no-op too.
        let h = History::new(16);
        assert_eq!(h.compact(0), 0);
        assert_eq!(h.compact(8), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn time_travel_with_a_store() {
        // the intended usage: record each commit, then diff versions
        let accounts = RelationF::new("accounts", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("a").attr("balance", 100).build(),
            )
            .unwrap();
        let store = Store::new(DatabaseF::new("bank").with_relation(accounts));
        let history = Arc::new(History::new(16));
        history.record(store.version(), store.snapshot());

        for i in 0..5 {
            let mut txn = store.begin();
            txn.update_attr("accounts", &Value::Int(1), "balance", 100 + i)
                .unwrap();
            let v = txn.commit().unwrap();
            history.record(v, store.snapshot());
        }

        // query the past
        let past = history.as_of(2).unwrap();
        assert_eq!(
            past.relation("accounts")
                .unwrap()
                .lookup(&Value::Int(1))
                .unwrap()
                .get("balance")
                .unwrap(),
            Value::Int(101)
        );
        // and diff two points in time with Fig. 9 machinery
        let diff = difference(&history.as_of(1).unwrap(), &history.as_of(5).unwrap()).unwrap();
        assert_eq!(diff.relation("accounts.added").unwrap().len(), 1);
        assert_eq!(diff.relation("accounts.removed").unwrap().len(), 1);
    }

    #[test]
    fn empty_history() {
        let h = History::new(4);
        assert!(h.is_empty());
        assert!(h.latest().is_none());
        assert!(h.as_of(0).is_err());
    }
}
