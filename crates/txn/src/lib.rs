//! # fdm-txn — transactions over the Functional Data Model
//!
//! The paper's Fig. 10/11 semantics: changes apply immediately to *the
//! snapshot of the transaction*, and `begin()`/`commit()` bracket
//! multi-statement transactions. Because the whole database function is a
//! persistent structure (see `fdm-storage`), a snapshot is O(1) and a
//! transaction's working copy never disturbs readers.
//!
//! Isolation level: **snapshot isolation** with first-committer-wins
//! write-write conflict detection. Transactions whose write sets are
//! disjoint from every commit since their snapshot merge by replaying
//! their recorded operations onto the newest root.
//!
//! The commit path is hardened for concurrency (see
//! `docs/TRANSACTIONS.md` at the repo root): transient losses (CAS
//! races) retry automatically under a [`CommitPolicy`] with
//! deterministic seeded backoff, genuine write-write conflicts surface
//! as typed errors carrying the conflicting keys, [`Store::run`]
//! re-derives read-modify-write transactions from fresh snapshots, and
//! every commit is recorded into a bounded [`History`] serving
//! [`Store::as_of`] time-travel reads. Building with the
//! `fault-injection` feature (or in tests) adds `FaultPlan` hooks that
//! force conflicts, delays, and poisoned write sets at chosen versions.
//!
//! Stores built with [`Store::create`] / [`Store::open`] are **durable**
//! (see `docs/DURABILITY.md` at the repo root): every commit's writeset
//! goes through a segmented write-ahead log before the commit is
//! acknowledged, checkpoints bound replay, and `open` recovers the
//! committed prefix after a crash — including a torn tail, which is
//! truncated, never silently extended past acknowledged commits. The
//! `fault-injection` feature adds `CrashPlan` hooks (torn writes, bit
//! flips, dropped fsyncs) on the durability layer.
//!
//! ```
//! use fdm_core::{DatabaseF, RelationF, TupleF, Value};
//! use fdm_txn::Store;
//!
//! let accounts = RelationF::new("accounts", &["id"])
//!     .insert(Value::Int(1), TupleF::builder("a").attr("balance", 10).build()).unwrap();
//! let store = Store::new(DatabaseF::new("bank").with_relation(accounts));
//!
//! let mut t = store.begin();
//! t.update_attr("accounts", &Value::Int(1), "balance", 20).unwrap();
//! t.commit().unwrap();
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod catalog;
#[cfg(any(test, feature = "fault-injection"))]
pub mod fault;
pub mod history;
pub mod store;
pub mod txn;
pub mod writeset;

pub use batch::BatchPolicy;
pub use cache::{CacheStats, HotTupleCache};
pub use catalog::{RefreshMode, ViewCatalog};
#[cfg(any(test, feature = "fault-injection"))]
pub use fault::FaultPlan;
#[cfg(any(test, feature = "fault-injection"))]
pub use fdm_durability::CrashPlan;
pub use fdm_durability::{DurabilityConfig, DurabilityError, IntegrityReport, SyncPolicy};
pub use fdm_storage::Version;
pub use history::History;
pub use store::{CommitOutcome, CommitPolicy, Store, StoreConfig};
pub use txn::Transaction;
pub use writeset::{Op, WriteSet};
