//! Write sets and recorded operations for snapshot-isolation commits.

use fdm_core::{DatabaseF, FnValue, Name, Result, TupleF, Value};
use fdm_durability::WalOp;
use fdm_fql::{db_delete, db_upsert};
use std::collections::BTreeSet;
use std::sync::Arc;

/// What a transaction wrote: per-relation keys, or whole entries.
///
/// Two write sets **conflict** when they touch the same `(relation, key)`
/// pair, or one of them replaced a whole entry the other touched at all.
#[derive(Debug, Default, Clone)]
pub struct WriteSet {
    /// `(relation, key)` point writes.
    keys: BTreeSet<(Name, Value)>,
    /// Whole-entry replacements (`DB(name) := f`).
    entries: BTreeSet<Name>,
}

impl WriteSet {
    /// The write set a list of recorded operations touches — used when
    /// rebuilding commit-log entries from recovered WAL records.
    pub fn from_ops(ops: &[Op]) -> WriteSet {
        let mut ws = WriteSet::default();
        for op in ops {
            match op {
                Op::Upsert { rel, key, .. } | Op::Delete { rel, key } => ws.touch_key(rel, key),
                Op::Assign { name, .. } | Op::Drop { name } => ws.touch_entry(name),
            }
        }
        ws
    }

    /// Records a point write.
    pub fn touch_key(&mut self, rel: &Name, key: &Value) {
        self.keys.insert((rel.clone(), key.clone()));
    }

    /// Records a whole-entry replacement.
    pub fn touch_entry(&mut self, name: &Name) {
        self.entries.insert(name.clone());
    }

    /// `true` if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.entries.is_empty()
    }

    /// Number of point writes plus entry replacements.
    pub fn len(&self) -> usize {
        self.keys.len() + self.entries.len()
    }

    /// Folds `other`'s writes into this set — the batch committer's
    /// union of every coalesced member's writes, recorded as one commit.
    pub fn merge(&mut self, other: &WriteSet) {
        self.keys.extend(other.keys.iter().cloned());
        self.entries.extend(other.entries.iter().cloned());
    }

    /// `true` if this set wrote `(rel, key)` — either the point write
    /// itself or a whole-entry replacement of `rel`. The hot-tuple
    /// cache's invalidation predicate.
    pub fn touches_key(&self, rel: &str, key: &Value) -> bool {
        self.entries.iter().any(|e| e.as_ref() == rel)
            || self.keys.iter().any(|(r, k)| r.as_ref() == rel && k == key)
    }

    /// The `(relation, key)` point writes, in sorted order.
    pub fn iter_keys(&self) -> impl Iterator<Item = &(Name, Value)> + '_ {
        self.keys.iter()
    }

    /// The whole-entry replacements, in sorted order.
    pub fn iter_entries(&self) -> impl Iterator<Item = &Name> + '_ {
        self.entries.iter()
    }

    /// Write-write conflict test.
    pub fn conflicts_with(&self, other: &WriteSet) -> bool {
        // entry-level vs anything touching that entry
        for e in &self.entries {
            if other.entries.contains(e) || other.keys.iter().any(|(r, _)| r == e) {
                return true;
            }
        }
        for e in &other.entries {
            if self.keys.iter().any(|(r, _)| r == e) {
                return true;
            }
        }
        // key-level overlap (both sorted sets; intersect the smaller)
        let (small, large) = if self.keys.len() <= other.keys.len() {
            (&self.keys, &other.keys)
        } else {
            (&other.keys, &self.keys)
        };
        small.iter().any(|k| large.contains(k))
    }

    /// Every conflicting pair with `other`, in display form, for the
    /// structured `keys` field of `FdmError::TransactionConflict`:
    /// key-granular conflicts as `(relation, key)`, whole-entry conflicts
    /// as `(entry, "*")`.
    pub fn conflict_keys(&self, other: &WriteSet) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        let mut push_entry = |e: &Name| {
            let pair = (e.to_string(), "*".to_string());
            if !out.contains(&pair) {
                out.push(pair);
            }
        };
        for e in &self.entries {
            if other.entries.contains(e) || other.keys.iter().any(|(r, _)| r == e) {
                push_entry(e);
            }
        }
        for e in &other.entries {
            if self.keys.iter().any(|(r, _)| r == e) {
                push_entry(e);
            }
        }
        for k in &self.keys {
            if other.keys.contains(k) {
                out.push((k.0.to_string(), k.1.to_string()));
            }
        }
        out
    }

    /// Human-readable description of the first overlap with `other`
    /// (for conflict error messages).
    pub fn describe_overlap(&self, other: &WriteSet) -> String {
        for e in &self.entries {
            if other.entries.contains(e) || other.keys.iter().any(|(r, _)| r == e) {
                return format!("entry '{e}'");
            }
        }
        for e in &other.entries {
            if self.keys.iter().any(|(r, _)| r == e) {
                return format!("entry '{e}'");
            }
        }
        for k in &self.keys {
            if other.keys.contains(k) {
                return format!("{}[{}]", k.0, k.1);
            }
        }
        "(no overlap)".to_string()
    }
}

/// A recorded change, replayable onto a newer committed root when the
/// write sets are disjoint (the snapshot-isolation merge path).
#[derive(Debug, Clone)]
pub enum Op {
    /// Insert-or-replace one tuple.
    Upsert {
        /// Relation entry name.
        rel: Name,
        /// Tuple key.
        key: Value,
        /// The final tuple value as of commit time.
        tuple: Arc<TupleF>,
    },
    /// Delete one tuple.
    Delete {
        /// Relation entry name.
        rel: Name,
        /// Tuple key.
        key: Value,
    },
    /// Replace (or create) a whole database entry.
    Assign {
        /// Entry name.
        name: Name,
        /// The new function bound under `name`.
        value: FnValue,
    },
    /// Remove a whole database entry.
    Drop {
        /// Entry name.
        name: Name,
    },
}

/// Applies recorded operations onto a committed root, in order — the
/// single replay path shared by the snapshot-isolation merge (disjoint
/// writers replaying onto a newer root) and crash recovery (replaying
/// WAL records onto a checkpoint).
pub(crate) fn apply_ops(base: &DatabaseF, ops: &[Op]) -> Result<DatabaseF> {
    let mut db = base.clone();
    for op in ops {
        match op {
            Op::Upsert { rel, key, tuple } => {
                db = db_upsert(&db, rel, key.clone(), (**tuple).clone())?;
            }
            Op::Delete { rel, key } => {
                db = db_delete(&db, rel, key)?;
            }
            Op::Assign { name, value } => {
                db = db.with_entry(name.as_ref(), value.clone());
            }
            Op::Drop { name } => {
                db = db.without_entry(name)?;
            }
        }
    }
    Ok(db)
}

// The WAL stores its own op type (`fdm-durability` cannot depend on this
// crate), mirroring [`Op`] field for field; the conversions are lossless
// in both directions.

impl From<&Op> for WalOp {
    fn from(op: &Op) -> WalOp {
        match op {
            Op::Upsert { rel, key, tuple } => WalOp::Upsert {
                rel: rel.clone(),
                key: key.clone(),
                tuple: Arc::clone(tuple),
            },
            Op::Delete { rel, key } => WalOp::Delete {
                rel: rel.clone(),
                key: key.clone(),
            },
            Op::Assign { name, value } => WalOp::Assign {
                name: name.clone(),
                value: value.clone(),
            },
            Op::Drop { name } => WalOp::Drop { name: name.clone() },
        }
    }
}

impl From<WalOp> for Op {
    fn from(op: WalOp) -> Op {
        match op {
            WalOp::Upsert { rel, key, tuple } => Op::Upsert { rel, key, tuple },
            WalOp::Delete { rel, key } => Op::Delete { rel, key },
            WalOp::Assign { name, value } => Op::Assign { name, value },
            WalOp::Drop { name } => Op::Drop { name },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::from(s)
    }

    #[test]
    fn disjoint_key_writes_do_not_conflict() {
        let mut a = WriteSet::default();
        a.touch_key(&n("accounts"), &Value::Int(1));
        let mut b = WriteSet::default();
        b.touch_key(&n("accounts"), &Value::Int(2));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn same_key_conflicts() {
        let mut a = WriteSet::default();
        a.touch_key(&n("accounts"), &Value::Int(1));
        let mut b = WriteSet::default();
        b.touch_key(&n("accounts"), &Value::Int(1));
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(a.describe_overlap(&b).contains("accounts[1]"));
    }

    #[test]
    fn entry_write_conflicts_with_key_write() {
        let mut a = WriteSet::default();
        a.touch_entry(&n("accounts"));
        let mut b = WriteSet::default();
        b.touch_key(&n("accounts"), &Value::Int(7));
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a), "symmetric");
        let mut c = WriteSet::default();
        c.touch_key(&n("other"), &Value::Int(7));
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn same_key_different_relations_no_conflict() {
        let mut a = WriteSet::default();
        a.touch_key(&n("accounts"), &Value::Int(1));
        let mut b = WriteSet::default();
        b.touch_key(&n("orders"), &Value::Int(1));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn conflict_keys_enumerate_every_overlap() {
        let mut a = WriteSet::default();
        a.touch_key(&n("accounts"), &Value::Int(1));
        a.touch_key(&n("accounts"), &Value::Int(2));
        a.touch_key(&n("orders"), &Value::Int(9));
        let mut b = WriteSet::default();
        b.touch_key(&n("accounts"), &Value::Int(1));
        b.touch_key(&n("accounts"), &Value::Int(2));
        b.touch_key(&n("orders"), &Value::Int(8));
        let keys = a.conflict_keys(&b);
        assert_eq!(
            keys,
            vec![
                ("accounts".to_string(), "1".to_string()),
                ("accounts".to_string(), "2".to_string()),
            ]
        );

        let mut e = WriteSet::default();
        e.touch_entry(&n("accounts"));
        assert_eq!(
            e.conflict_keys(&a),
            vec![("accounts".to_string(), "*".to_string())]
        );
        assert_eq!(
            a.conflict_keys(&e),
            vec![("accounts".to_string(), "*".to_string())],
            "entry overlap is symmetric and not duplicated"
        );
        assert!(a.conflict_keys(&WriteSet::default()).is_empty());
    }

    #[test]
    fn emptiness() {
        let a = WriteSet::default();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert!(!a.conflicts_with(&a.clone()));
    }
}
