//! The view catalog: maintained views subscribed to commits.
//!
//! [`Store::register_view`](crate::Store::register_view) compiles an FQL
//! plan into a [`MaintainedView`] (see `fdm-fql`'s `ivm` module) and
//! subscribes it to the store's commit stream. Every committed writeset
//! becomes a [`DbDelta`] and is propagated through the view's operator
//! tree *under the same version watermark the commit installed*, so
//! reading a view always answers "the view as of version v" for a
//! concrete, known v.
//!
//! Commits can reach the catalog out of version order (the installing
//! CAS and the post-install bookkeeping are not one atomic step), so the
//! catalog buffers `(version, ops, root)` entries and advances each view
//! only through a *contiguous* version prefix — a view's watermark never
//! jumps a gap that a straggling committer might still fill.
//!
//! Maintenance errors never fail the commit that triggered them: the
//! commit is already installed and durable by the time the catalog sees
//! it. A failing view is instead *poisoned* — its error is remembered
//! and surfaced on the next read — while other views keep advancing.

use crate::writeset::Op;
use fdm_core::delta::{DbDelta, EntryDelta, TupleChange};
use fdm_core::{DatabaseF, FdmError, Name, Result, Value};
use fdm_fql::ivm::{IvmStats, MaintainedView};
use fdm_fql::plan::Query;
use fdm_storage::Version;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};

/// When a registered view is brought forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Maintained inside every commit's bookkeeping: reads are always at
    /// the store head (default).
    Eager,
    /// Maintained only when
    /// [`Store::refresh_views_to`](crate::Store::refresh_views_to) is
    /// called: commits stay cheap, reads pick their version.
    Manual,
}

/// One subscribed view plus its maintenance cursor.
struct RegisteredView {
    view: MaintainedView,
    /// The newest version whose delta has been applied.
    watermark: Version,
    /// The committed root at `watermark` — the "before" side of the next
    /// delta.
    base: DatabaseF,
    mode: RefreshMode,
    /// Set when maintenance failed; the view stops advancing and reads
    /// surface this until re-registered.
    error: Option<String>,
}

#[derive(Default)]
struct CatalogInner {
    /// Commits not yet consumed by every view, keyed by version:
    /// `(recorded ops, the root the commit installed)`.
    pending: BTreeMap<Version, (Vec<Op>, DatabaseF)>,
    views: Vec<RegisteredView>,
}

/// The set of maintained views subscribed to a [`Store`](crate::Store).
///
/// All state sits behind one mutex: view maintenance is serialized with
/// respect to itself, which is what makes "apply each commit's delta
/// exactly once, in version order" trivially correct. Commits on a store
/// with no registered views pay one uncontended lock and return.
#[derive(Default)]
pub struct ViewCatalog {
    inner: Mutex<CatalogInner>,
}

impl ViewCatalog {
    /// Feeds one installed commit to the catalog. Called from the
    /// store's commit bookkeeping *after* the root is installed and the
    /// commit is in the time-travel history. Never fails the commit:
    /// per-view errors poison that view only.
    pub(crate) fn observe(&self, version: Version, ops: &[Op], db: &DatabaseF) {
        let mut inner = self.inner.lock();
        if inner.views.is_empty() {
            return;
        }
        inner.pending.insert(version, (ops.to_vec(), db.clone()));
        inner.drain(Some(RefreshMode::Eager), Version::MAX);
        inner.prune();
    }

    /// Registers a view against the store's current snapshot, taken
    /// *while holding the catalog lock* so no commit can slip between
    /// the initial materialization and the subscription. Returns the
    /// version the view starts at.
    pub(crate) fn register(
        &self,
        name: &str,
        query: Query,
        mode: RefreshMode,
        snapshot: impl FnOnce() -> (Version, DatabaseF),
    ) -> Result<Version> {
        let mut inner = self.inner.lock();
        // Any commit whose observe() completed before we took the lock
        // has version <= v0 (install precedes observe); later commits
        // will be drained from `pending` by watermark order.
        let (v0, db0) = snapshot();
        if inner.views.iter().any(|rv| rv.view.name() == name) {
            return Err(FdmError::Expr(format!(
                "view '{name}' is already registered"
            )));
        }
        let view = MaintainedView::new(name, query, &db0)?;
        inner.views.push(RegisteredView {
            view,
            watermark: v0,
            base: db0,
            mode,
            error: None,
        });
        if mode == RefreshMode::Eager {
            inner.drain(Some(RefreshMode::Eager), Version::MAX);
        }
        inner.prune();
        Ok(v0)
    }

    /// Brings **every** view (eager and manual) forward through the
    /// contiguous pending prefix, up to at most `version`. Returns the
    /// minimum watermark across healthy views afterwards — the version
    /// every view is guaranteed to reflect.
    pub(crate) fn refresh_to(&self, version: Version) -> Result<Version> {
        let mut inner = self.inner.lock();
        inner.drain(None, version);
        inner.prune();
        let floor = inner
            .views
            .iter()
            .filter(|rv| rv.error.is_none())
            .map(|rv| rv.watermark)
            .min();
        match floor {
            Some(v) => Ok(v),
            None if inner.views.is_empty() => Err(FdmError::Expr(
                "refresh_views_to: no views are registered".into(),
            )),
            None => Err(FdmError::Expr(
                inner
                    .views
                    .iter()
                    .find_map(|rv| rv.error.clone())
                    .unwrap_or_else(|| "all registered views are poisoned".into()),
            )),
        }
    }

    /// The view's result relation and the version it reflects, or the
    /// poisoning error if maintenance failed.
    pub(crate) fn read(&self, name: &str) -> Result<(Version, fdm_core::RelationF)> {
        let inner = self.inner.lock();
        let rv = inner
            .views
            .iter()
            .find(|rv| rv.view.name() == name)
            .ok_or_else(|| FdmError::Expr(format!("no registered view named '{name}'")))?;
        if let Some(e) = &rv.error {
            return Err(FdmError::Expr(format!(
                "view '{name}' is poisoned by a maintenance error: {e}"
            )));
        }
        Ok((rv.watermark, rv.view.relation()))
    }

    /// Maintenance counters for a view, if it is registered.
    pub(crate) fn stats(&self, name: &str) -> Option<IvmStats> {
        let inner = self.inner.lock();
        inner
            .views
            .iter()
            .find(|rv| rv.view.name() == name)
            .map(|rv| rv.view.stats().clone())
    }
}

impl CatalogInner {
    /// Advances views (those matching `mode`, or all when `None`)
    /// through the contiguous prefix of `pending`, stopping at `up_to`.
    fn drain(&mut self, mode: Option<RefreshMode>, up_to: Version) {
        for rv in &mut self.views {
            if rv.error.is_some() || mode.is_some_and(|m| rv.mode != m) {
                continue;
            }
            loop {
                let next = rv.watermark + 1;
                if next > up_to {
                    break;
                }
                let Some((ops, db)) = self.pending.get(&next) else {
                    break; // gap: a straggling committer may still fill it
                };
                let delta = delta_from_ops(&rv.base, db, ops);
                match rv.view.apply(db, &delta) {
                    Ok(_) => {
                        rv.base = db.clone();
                        rv.watermark = next;
                    }
                    Err(e) => {
                        rv.error = Some(format!("applying delta for v{next}: {e}"));
                        break;
                    }
                }
            }
        }
    }

    /// Drops pending commits every healthy view has consumed. Poisoned
    /// views never hold entries back — they will not advance again.
    fn prune(&mut self) {
        if self.views.is_empty() {
            self.pending.clear();
            return;
        }
        let floor = self
            .views
            .iter()
            .filter(|rv| rv.error.is_none())
            .map(|rv| rv.watermark)
            .min()
            .unwrap_or(Version::MAX);
        self.pending.retain(|v, _| *v > floor);
    }
}

/// Translates a commit's recorded ops into the [`DbDelta`] the IVM layer
/// consumes, using the committed roots on either side of the commit to
/// resolve each touched key's old/new tuple. Point writes become
/// [`EntryDelta::Rows`]; whole-entry rebinds ([`Op::Assign`] /
/// [`Op::Drop`]) become [`EntryDelta::Replaced`], which the view layer
/// handles with a scoped recompute.
fn delta_from_ops(base: &DatabaseF, after: &DatabaseF, ops: &[Op]) -> DbDelta {
    let mut touched: BTreeMap<Name, BTreeSet<Value>> = BTreeMap::new();
    let mut replaced: BTreeSet<Name> = BTreeSet::new();
    for op in ops {
        match op {
            Op::Upsert { rel, key, .. } | Op::Delete { rel, key } => {
                touched.entry(rel.clone()).or_default().insert(key.clone());
            }
            Op::Assign { name, .. } | Op::Drop { name } => {
                replaced.insert(name.clone());
            }
        }
    }
    let mut entries: Vec<(Name, EntryDelta)> = Vec::new();
    for (rel, keys) in touched {
        if replaced.contains(&rel) {
            continue; // the rebind supersedes the point writes
        }
        let (old_rel, new_rel) = (base.relation(&rel), after.relation(&rel));
        let (Ok(old_rel), Ok(new_rel)) = (old_rel, new_rel) else {
            // the entry appeared, vanished, or changed kind mid-commit —
            // too coarse for a row delta
            entries.push((rel, EntryDelta::Replaced));
            continue;
        };
        let mut changes = Vec::new();
        for key in keys {
            let old = old_rel.lookup(&key);
            let new = new_rel.lookup(&key);
            let same = match (&old, &new) {
                (None, None) => true,
                (Some(o), Some(n)) => o.eq_data(n),
                _ => false,
            };
            if !same {
                changes.push(TupleChange { key, old, new });
            }
        }
        if !changes.is_empty() {
            entries.push((rel, EntryDelta::Rows(changes)));
        }
    }
    for name in replaced {
        entries.push((name, EntryDelta::Replaced));
    }
    DbDelta { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use fdm_core::TupleF;
    use fdm_fql::prelude::Params;
    use fdm_fql::testutil::retail_db;
    use fdm_fql::update::db_upsert;
    use fdm_fql::DynamicView;
    use std::sync::Arc;

    fn olds_query() -> Query {
        Query::scan("customers").filter("age > $min", Params::new().set("min", 42))
    }

    fn customer(cid: i64, name: &str, age: i64) -> Arc<TupleF> {
        Arc::new(
            TupleF::builder(format!("c{cid}"))
                .attr("name", name)
                .attr("age", age)
                .build(),
        )
    }

    fn upsert_op(cid: i64, name: &str, age: i64) -> Op {
        Op::Upsert {
            rel: Name::from("customers"),
            key: Value::Int(cid),
            tuple: customer(cid, name, age),
        }
    }

    #[test]
    fn eager_view_follows_store_commits() {
        let store = Store::new(retail_db());
        let v0 = store.register_view("olds", olds_query()).unwrap();
        assert_eq!(v0, 0);
        let (v, rel) = store.view("olds").unwrap();
        assert_eq!((v, rel.len()), (0, 2));

        let mut t = store.begin();
        t.upsert(
            "customers",
            Value::Int(9),
            TupleF::builder("c9")
                .attr("name", "Zoe")
                .attr("age", 70)
                .build(),
        )
        .unwrap();
        let v1 = t.commit().unwrap();

        let (v, rel) = store.view("olds").unwrap();
        assert_eq!(v, v1, "eager views read at the commit head");
        assert_eq!(rel.len(), 3);
        // the maintained result matches a from-scratch dynamic eval
        let fresh = DynamicView::new("olds", olds_query())
            .eval(&store.snapshot())
            .unwrap();
        let keyed = |r: &fdm_core::RelationF| {
            r.tuples()
                .unwrap()
                .into_iter()
                .map(|(k, t)| (k, t.data_key().unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(keyed(&rel), keyed(&fresh));
        assert!(store.view_stats("olds").unwrap().deltas_applied >= 1);
    }

    #[test]
    fn out_of_order_commits_buffer_behind_the_gap() {
        let db0 = retail_db();
        let catalog = ViewCatalog::default();
        catalog
            .register("olds", olds_query(), RefreshMode::Eager, || {
                (0, db0.clone())
            })
            .unwrap();

        let db1 = db_upsert(
            &db0,
            "customers",
            Value::Int(9),
            (*customer(9, "Zoe", 70)).clone(),
        )
        .unwrap();
        let db2 = db_upsert(
            &db1,
            "customers",
            Value::Int(10),
            (*customer(10, "Yan", 61)).clone(),
        )
        .unwrap();

        // v2 arrives first: the view must NOT jump the v1 gap
        catalog.observe(2, &[upsert_op(10, "Yan", 61)], &db2);
        let (v, rel) = catalog.read("olds").unwrap();
        assert_eq!((v, rel.len()), (0, 2), "gap holds the watermark at v0");

        // the straggler fills the gap: both drain, in order
        catalog.observe(1, &[upsert_op(9, "Zoe", 70)], &db1);
        let (v, rel) = catalog.read("olds").unwrap();
        assert_eq!((v, rel.len()), (2, 4));
    }

    #[test]
    fn manual_views_advance_only_on_refresh() {
        let store = Store::new(retail_db());
        store
            .register_view_with("olds", olds_query(), RefreshMode::Manual)
            .unwrap();
        let mut t = store.begin();
        t.upsert(
            "customers",
            Value::Int(9),
            TupleF::builder("c9")
                .attr("name", "Zoe")
                .attr("age", 70)
                .build(),
        )
        .unwrap();
        let v1 = t.commit().unwrap();

        let (v, rel) = store.view("olds").unwrap();
        assert_eq!((v, rel.len()), (0, 2), "manual: stale until refreshed");

        let reached = store.refresh_views_to(v1).unwrap();
        assert_eq!(reached, v1);
        let (v, rel) = store.view("olds").unwrap();
        assert_eq!((v, rel.len()), (v1, 3));
    }

    #[test]
    fn maintenance_errors_poison_only_the_failing_view() {
        let store = Store::new(retail_db());
        store.register_view("olds", olds_query()).unwrap();
        store
            .register_view("names", Query::scan("customers").project(&["name"]))
            .unwrap();

        // a customer with no `age` makes the filter predicate fail
        let mut t = store.begin();
        t.upsert(
            "customers",
            Value::Int(9),
            TupleF::builder("c9").attr("name", "Ghost").build(),
        )
        .unwrap();
        let v1 = t.commit().unwrap();

        let err = store.view("olds").unwrap_err().to_string();
        assert!(err.contains("poisoned"), "got: {err}");
        // the healthy view advanced past the same commit
        let (v, rel) = store.view("names").unwrap();
        assert_eq!((v, rel.len()), (v1, 4));
        // refresh reports the poisoning only once no healthy view remains
        assert_eq!(store.refresh_views_to(v1).unwrap(), v1);
    }

    #[test]
    fn register_rejects_duplicates_and_read_rejects_unknown() {
        let store = Store::new(retail_db());
        store.register_view("olds", olds_query()).unwrap();
        assert!(store.register_view("olds", olds_query()).is_err());
        assert!(store.view("nope").is_err());
        assert!(store.view_stats("nope").is_none());
        assert!(store.refresh_views_to(0).is_ok());
    }

    #[test]
    fn whole_entry_rebinds_take_the_replaced_path() {
        let store = Store::new(retail_db());
        store.register_view("olds", olds_query()).unwrap();
        // rebind `customers` wholesale: one extra senior, one junior
        let rebound = crate::writeset::apply_ops(
            &store.snapshot(),
            &[upsert_op(9, "Zoe", 70), upsert_op(10, "Kid", 12)],
        )
        .unwrap()
        .relation("customers")
        .unwrap();
        let mut t = store.begin();
        t.assign("customers", fdm_core::FnValue::Relation(rebound))
            .unwrap();
        let v1 = t.commit().unwrap();
        let (v, rel) = store.view("olds").unwrap();
        assert_eq!((v, rel.len()), (v1, 3));
        assert!(
            store.view_stats("olds").unwrap().fallback_recomputes >= 1,
            "an Assign must go through the scoped-recompute fallback"
        );
    }
}
