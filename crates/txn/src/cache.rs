//! The hot-tuple cache: a bounded fingerprint-keyed front for point
//! reads, invalidated by commit version.
//!
//! A Zipf-skewed serving workload reads a small set of head tuples over
//! and over; each uncached read walks the persistent tree (O(log n) node
//! hops and `Arc` bumps per lookup). The cache fronts that path with one
//! hash probe: entries are keyed by the same FxHash fingerprint
//! machinery as the PR 3 [`fdm_core::DataKey`] — the 64-bit
//! [`fdm_core::Value::fx_hash`] of the `(relation, key)` pair, verified
//! against the stored pair on hit so a collision can never serve the
//! wrong tuple — and each fill warms the tuple's own `DataKey` cache, so
//! downstream set operations and grouping on served tuples start O(1).
//!
//! # Invalidation contract (pinned by `tests/tests/cache_invalidation.rs`)
//!
//! **A cache entry is never served to a reader whose snapshot version it
//! could be stale for.** Concretely, a hit requires the cache to have
//! *processed the invalidations of every commit up to the reader's
//! snapshot version*:
//!
//! * every committed version's write set is fed to [`HotTupleCache::invalidate`]
//!   (the store does this inside `record_commit`), which evicts the
//!   written keys and advances a **contiguous** watermark `applied` —
//!   version `v` only advances the watermark once every version `<= v`
//!   has been processed, because commits can record out of order;
//! * a read at snapshot version `v` consults the cache only when
//!   `applied >= v`; otherwise it is a (counted) miss and falls through
//!   to the tree;
//! * a fill observed at version `v` is dropped if any invalidation for a
//!   version `> v` has already been processed (`max_processed > v`) —
//!   the fill could resurrect a value that invalidation already evicted.
//!
//! Together these make staleness impossible: an entry present under
//! `applied >= v` survived the invalidation of every commit `<= applied`,
//! so it is the newest committed value for its key as of `applied` — at
//! or after the reader's snapshot, never before it. (A cached point read
//! therefore serves the *latest* committed value; strict historical
//! reads use [`Store::as_of`](crate::Store::as_of), which never touches
//! the cache.) A recovered store starts with an empty, cold cache reset
//! to the recovered version — recovery replay proves nothing about what
//! a pre-crash cache held.

use crate::writeset::WriteSet;
use fdm_core::{FxHashMap, Name, TupleF, Value};
use fdm_storage::Version;
use parking_lot::Mutex;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Observability counters for the cache (cumulative since the last
/// [`HotTupleCache::reset`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads answered from the cache.
    pub hits: u64,
    /// Reads that fell through because the key was absent.
    pub misses: u64,
    /// Reads that fell through because the invalidation watermark had
    /// not yet covered the reader's snapshot version.
    pub stale_misses: u64,
    /// Entries inserted.
    pub fills: u64,
    /// Fills dropped because a newer version's invalidation had already
    /// been processed.
    pub rejected_fills: u64,
    /// Entries evicted by capacity.
    pub evictions: u64,
    /// Entries evicted by commit invalidation.
    pub invalidations: u64,
}

struct CacheEntry {
    rel: Name,
    key: Value,
    tuple: Arc<TupleF>,
}

struct Inner {
    /// fingerprint → entry; the fingerprint is `fx_hash(rel) ^ fx_hash(key)`
    /// rotated, verified against the stored `(rel, key)` on every hit.
    map: FxHashMap<u64, CacheEntry>,
    /// Insertion-order queue for FIFO eviction (may hold stale
    /// fingerprints of already-invalidated entries; they are skipped).
    queue: VecDeque<u64>,
    /// Contiguous invalidation watermark: every version `<= applied` has
    /// had its write set processed.
    applied: Version,
    /// Highest version whose invalidation has been processed (may be
    /// ahead of `applied` when commits record out of order).
    max_processed: Version,
    /// Processed versions above `applied`, awaiting the gap to fill.
    pending: BTreeSet<Version>,
    stats: CacheStats,
}

/// The cache itself; one per [`Store`](crate::Store), shared by all
/// readers. See the module docs for the invalidation contract.
pub struct HotTupleCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// The `(relation, key)` fingerprint: an FxHash-style fold over the
/// relation-name bytes (no `Value` allocation on the hot read path)
/// mixed with the key's [`Value::fx_hash`], so `("a", 1)` and `("b", 1)`
/// land apart.
fn fingerprint(rel: &str, key: &Value) -> u64 {
    let mut h: u64 = 0;
    for &b in rel.as_bytes() {
        h = (h.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    fdm_core::splitmix64(h).wrapping_add(key.fx_hash())
}

impl HotTupleCache {
    /// An empty cache holding at most `capacity` entries, with the
    /// invalidation watermark at `version` (the store's version at
    /// construction — 0 for a fresh store, the recovered version after
    /// [`Store::open`](crate::Store::open)).
    pub fn new(capacity: usize, version: Version) -> HotTupleCache {
        HotTupleCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                queue: VecDeque::new(),
                applied: version,
                max_processed: version,
                pending: BTreeSet::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `(rel, key)` for a reader at snapshot `version`. `None`
    /// is a miss (absent, or the watermark has not covered `version`).
    pub fn get(&self, rel: &str, key: &Value, version: Version) -> Option<Arc<TupleF>> {
        let mut inner = self.inner.lock();
        if inner.applied < version {
            inner.stats.stale_misses += 1;
            return None;
        }
        let fp = fingerprint(rel, key);
        match inner.map.get(&fp) {
            Some(e) if e.rel.as_ref() == rel && e.key == *key => {
                let t = Arc::clone(&e.tuple);
                inner.stats.hits += 1;
                Some(t)
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Offers a tuple read from a snapshot at `version` for caching.
    /// Dropped when an invalidation for a newer version already ran (the
    /// fill could be stale). Warms the tuple's `DataKey` fingerprint.
    pub fn fill(&self, rel: &str, key: &Value, tuple: &Arc<TupleF>, version: Version) {
        // warming outside the lock: first fingerprint() call pays the
        // canonical-key materialization, every later consumer is O(1)
        let _ = tuple.fingerprint();
        let mut inner = self.inner.lock();
        if inner.max_processed > version {
            inner.stats.rejected_fills += 1;
            return;
        }
        let fp = fingerprint(rel, key);
        let fresh = !inner.map.contains_key(&fp);
        if fresh && inner.map.len() >= self.capacity {
            // skip queue residue of entries already invalidated
            while let Some(old) = inner.queue.pop_front() {
                if inner.map.remove(&old).is_some() {
                    inner.stats.evictions += 1;
                    break;
                }
            }
        }
        inner.map.insert(
            fp,
            CacheEntry {
                rel: Name::from(rel),
                key: key.clone(),
                tuple: Arc::clone(tuple),
            },
        );
        if fresh {
            inner.queue.push_back(fp);
        }
        inner.stats.fills += 1;
    }

    /// Processes one committed version's write set: evicts every written
    /// key (a whole-entry replacement evicts everything cached under
    /// that relation) and advances the contiguous watermark.
    pub fn invalidate(&self, version: Version, writes: &WriteSet) {
        let mut inner = self.inner.lock();
        for (rel, key) in writes.iter_keys() {
            let fp = fingerprint(rel.as_ref(), key);
            if inner.map.remove(&fp).is_some() {
                inner.stats.invalidations += 1;
            }
        }
        let replaced: Vec<&Name> = writes.iter_entries().collect();
        if !replaced.is_empty() {
            let before = inner.map.len();
            inner
                .map
                .retain(|_, e| !replaced.iter().any(|r| **r == e.rel));
            inner.stats.invalidations += (before - inner.map.len()) as u64;
        }
        inner.max_processed = inner.max_processed.max(version);
        if version > inner.applied {
            inner.pending.insert(version);
            loop {
                let next = inner.applied + 1;
                if !inner.pending.remove(&next) {
                    break;
                }
                inner.applied = next;
            }
        }
    }

    /// Empties the cache and moves the watermark to `version` — what a
    /// just-recovered store does: nothing cached before the crash can be
    /// trusted, and reads resume cold.
    pub fn reset(&self, version: Version) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.queue.clear();
        inner.pending.clear();
        inner.applied = version;
        inner.max_processed = version;
        inner.stats = CacheStats::default();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contiguous invalidation watermark (highest version `v` such
    /// that every commit `<= v` has been processed).
    pub fn applied_version(&self) -> Version {
        self.inner.lock().applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Arc<TupleF> {
        Arc::new(TupleF::builder("t").attr("x", x).build())
    }

    fn writes(rel: &str, key: i64) -> WriteSet {
        let mut w = WriteSet::default();
        w.touch_key(&Name::from(rel), &Value::Int(key));
        w
    }

    #[test]
    fn hit_after_fill_at_same_version() {
        let c = HotTupleCache::new(8, 0);
        assert!(c.get("r", &Value::Int(1), 0).is_none());
        c.fill("r", &Value::Int(1), &t(10), 0);
        let got = c.get("r", &Value::Int(1), 0).unwrap();
        assert_eq!(got.get("x").unwrap(), Value::Int(10));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn reader_ahead_of_watermark_misses() {
        let c = HotTupleCache::new(8, 0);
        c.fill("r", &Value::Int(1), &t(10), 0);
        // a commit installed v1 but its invalidation has not run yet
        assert!(c.get("r", &Value::Int(1), 1).is_none(), "stale-guard miss");
        assert_eq!(c.stats().stale_misses, 1);
        c.invalidate(1, &WriteSet::default());
        assert!(c.get("r", &Value::Int(1), 1).is_some());
    }

    #[test]
    fn invalidate_evicts_written_keys() {
        let c = HotTupleCache::new(8, 0);
        c.fill("r", &Value::Int(1), &t(10), 0);
        c.fill("r", &Value::Int(2), &t(20), 0);
        c.invalidate(1, &writes("r", 1));
        assert!(c.get("r", &Value::Int(1), 1).is_none(), "written key gone");
        assert!(
            c.get("r", &Value::Int(2), 1).is_some(),
            "other key survives"
        );
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn entry_replacement_sweeps_the_relation() {
        let c = HotTupleCache::new(8, 0);
        c.fill("r", &Value::Int(1), &t(10), 0);
        c.fill("s", &Value::Int(1), &t(11), 0);
        let mut w = WriteSet::default();
        w.touch_entry(&Name::from("r"));
        c.invalidate(1, &w);
        assert!(c.get("r", &Value::Int(1), 1).is_none());
        assert!(c.get("s", &Value::Int(1), 1).is_some());
    }

    #[test]
    fn out_of_order_invalidation_advances_contiguously() {
        let c = HotTupleCache::new(8, 0);
        c.invalidate(2, &WriteSet::default());
        assert_eq!(c.applied_version(), 0, "v1 missing: watermark held");
        c.invalidate(1, &WriteSet::default());
        assert_eq!(c.applied_version(), 2, "gap filled: both applied");
    }

    #[test]
    fn late_fill_after_newer_invalidation_is_dropped() {
        let c = HotTupleCache::new(8, 0);
        // commit v1 writes the key and its invalidation runs first
        c.invalidate(1, &writes("r", 1));
        // a reader that loaded the v0 snapshot now offers the old value
        c.fill("r", &Value::Int(1), &t(10), 0);
        assert_eq!(c.stats().rejected_fills, 1);
        assert!(
            c.get("r", &Value::Int(1), 1).is_none(),
            "stale fill must not resurrect the evicted value"
        );
    }

    #[test]
    fn capacity_evicts_fifo() {
        let c = HotTupleCache::new(2, 0);
        c.fill("r", &Value::Int(1), &t(1), 0);
        c.fill("r", &Value::Int(2), &t(2), 0);
        c.fill("r", &Value::Int(3), &t(3), 0);
        assert_eq!(c.len(), 2);
        assert!(c.get("r", &Value::Int(1), 0).is_none(), "oldest evicted");
        assert!(c.get("r", &Value::Int(3), 0).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reset_goes_cold_at_version() {
        let c = HotTupleCache::new(8, 0);
        c.fill("r", &Value::Int(1), &t(1), 0);
        c.reset(7);
        assert!(c.is_empty());
        assert_eq!(c.applied_version(), 7);
        assert!(c.get("r", &Value::Int(1), 7).is_none());
    }

    #[test]
    fn fill_warms_the_data_key() {
        let c = HotTupleCache::new(8, 0);
        let tuple = t(42);
        c.fill("r", &Value::Int(1), &tuple, 0);
        let served = c.get("r", &Value::Int(1), 0).unwrap();
        // the served Arc shares the warmed fingerprint cache
        assert!(served.fingerprint().is_ok());
        assert!(Arc::ptr_eq(&served, &tuple));
    }
}
