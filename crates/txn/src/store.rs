//! The transactional store: a versioned root holding the committed
//! database function, the commit log used for snapshot-isolation
//! validation, and the bounded version history behind time-travel reads.

use crate::catalog::{RefreshMode, ViewCatalog};
use crate::history::History;
use crate::txn::Transaction;
use crate::writeset::{apply_ops, Op, WriteSet};
use fdm_core::{DatabaseF, FdmError, RelationF, Result, TupleF, Value};
use fdm_durability::{
    check_record_payload, encode_ops, list_checkpoints, prune_checkpoints, recover,
    write_checkpoint, DurabilityConfig, DurabilityError, IntegrityReport, SyncPolicy, Wal, WalOp,
};
use fdm_storage::VersionedRoot;
use fdm_storage::{Backoff, Version};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::FaultPlan;
#[cfg(any(test, feature = "fault-injection"))]
use fdm_durability::{write_checkpoint_faulty, CrashPlan};

/// How a commit behaves under contention: how many attempts it makes, how
/// it paces them, and when it gives up.
///
/// The backoff between attempts is exponential with **deterministic
/// seeded jitter** ([`fdm_storage::Backoff`]): a fixed `jitter_seed`
/// replays the same delay schedule, so contention tests are reproducible,
/// while different seeds desynchronize contending committers.
#[derive(Debug, Clone)]
pub struct CommitPolicy {
    /// Total commit attempts, including the first (min 1).
    pub max_attempts: usize,
    /// First retry delay; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single retry delay.
    pub max_backoff: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Overall wall-clock budget; `None` = bounded by attempts only.
    pub timeout: Option<Duration>,
}

impl Default for CommitPolicy {
    fn default() -> Self {
        CommitPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 0xFD_C0FFEE,
            timeout: None,
        }
    }
}

impl CommitPolicy {
    /// A policy that makes exactly one attempt (the pre-hardening
    /// behavior: any transient conflict surfaces immediately).
    pub fn no_retry() -> Self {
        CommitPolicy {
            max_attempts: 1,
            ..CommitPolicy::default()
        }
    }

    /// Sets the attempt budget (min 1).
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the backoff range (first delay, ceiling).
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Sets the jitter seed (deterministic schedules per seed).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// A fresh backoff schedule for one commit, per this policy.
    pub(crate) fn backoff(&self) -> Backoff {
        Backoff::new(self.base_backoff, self.max_backoff, self.jitter_seed)
    }
}

/// What a successful commit reports, beyond the bare version number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The version this commit installed (the snapshot version for a
    /// read-only transaction, which installs nothing).
    pub version: Version,
    /// Commit attempts spent, including the successful one (0 for a
    /// read-only transaction, which never reaches the commit path).
    pub attempts: usize,
    /// Transient conflicts survived along the way, in display form:
    /// `("<cas>", "v{expected}->v{found}")` for lost install races and
    /// `("<injected>", "v{n}")` for injected faults. Genuine first-
    /// committer-wins conflicts never appear here — they are terminal and
    /// carry their keys on [`FdmError::TransactionConflict`] instead.
    pub conflicts: Vec<(String, String)>,
}

/// Construction-time knobs for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Default policy used by [`Transaction::commit`] and
    /// [`Store::run`].
    pub policy: CommitPolicy,
    /// Versions retained for [`Store::as_of`] time travel. Persistence
    /// makes retention cheap — each entry is one root pointer sharing all
    /// unchanged structure with its neighbors.
    pub history_capacity: usize,
    /// Commit-log entries retained for conflict validation.
    pub log_cap: usize,
    /// Durability section: directory, fsync cadence (group commit),
    /// segment rotation, checkpoint retention. `None` (the default) is a
    /// purely in-memory store. Durable stores are built with
    /// [`Store::create`] / [`Store::open`] / [`Store::open_with`], which
    /// are fallible; the infallible constructors reject a config that
    /// sets this.
    pub durability: Option<DurabilityConfig>,
    /// Capacity of the hot-tuple cache fronting [`Store::read_point`]
    /// (see [`crate::cache`] for the invalidation contract). `None` (the
    /// default) disables caching: point reads always walk the tree.
    pub hot_cache: Option<usize>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            policy: CommitPolicy::default(),
            history_capacity: 1024,
            log_cap: 4096,
            durability: None,
            hot_cache: None,
        }
    }
}

/// The durability half of a store: the live WAL writer plus checkpoint
/// bookkeeping. Present only on stores built by [`Store::create`] /
/// [`Store::open`].
pub(crate) struct Durable {
    /// Directory, fsync cadence, retention — fixed at open time.
    cfg: DurabilityConfig,
    /// The append half of the write-ahead log. A `std` mutex (not the
    /// vendored `parking_lot` shim) because waiters on the durable
    /// watermark need a [`std::sync::Condvar`] paired with this exact
    /// lock; access goes through [`Durable::wal`].
    wal: std::sync::Mutex<Wal>,
    /// Signaled (with `wal` held) whenever an append advances the
    /// durable watermark. Under [`SyncPolicy::Always`] an out-of-order
    /// committer parks here until the gap-filling append's fsync covers
    /// its version — see [`Store::record_commit`].
    wal_synced: std::sync::Condvar,
    /// Commits since the last checkpoint (drives
    /// [`DurabilityConfig::checkpoint_every`]).
    since_checkpoint: Mutex<u64>,
    /// Crash plan for checkpoint writes; the WAL writer holds its own
    /// copy (test/fault-injection builds only).
    #[cfg(any(test, feature = "fault-injection"))]
    plan: Mutex<Option<Arc<CrashPlan>>>,
}

impl Durable {
    /// Locks the WAL, recovering from poison — the same non-poisoning
    /// discipline as the `parking_lot` locks used everywhere else.
    fn wal(&self) -> std::sync::MutexGuard<'_, Wal> {
        self.wal.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A transactional FDM store.
///
/// Readers take O(1) snapshots (the database function is persistent);
/// writers run under snapshot isolation: each transaction works on its
/// snapshot, and at commit time its write set is validated against every
/// transaction that committed after the snapshot was taken. Disjoint
/// writers merge (their recorded operations replay onto the latest root);
/// overlapping writers lose with [`FdmError::TransactionConflict`] —
/// first committer wins. Transient losses (CAS races, injected faults)
/// are retried under the store's [`CommitPolicy`] with deterministic
/// seeded backoff.
///
/// Every commit is also recorded into a bounded [`History`], so
/// [`Store::as_of`] serves time-travel reads without blocking writers.
///
/// # Examples
///
/// ```
/// use fdm_core::{DatabaseF, RelationF, TupleF, Value};
/// use fdm_txn::Store;
///
/// let accounts = RelationF::new("accounts", &["id"])
///     .insert(Value::Int(42), TupleF::builder("a").attr("balance", 1000).build()).unwrap()
///     .insert(Value::Int(84), TupleF::builder("a").attr("balance", 500).build()).unwrap();
/// let store = Store::new(DatabaseF::new("bank").with_relation(accounts));
///
/// // begin() ... commit()  (paper Fig. 11)
/// let mut txn = store.begin();
/// txn.modify_attr("accounts", &Value::Int(42), "balance", |v| v.sub(&Value::Int(100))).unwrap();
/// txn.modify_attr("accounts", &Value::Int(84), "balance", |v| v.add(&Value::Int(100))).unwrap();
/// txn.commit().unwrap();
///
/// let db = store.snapshot();
/// let bal = db.relation("accounts").unwrap().lookup(&Value::Int(42)).unwrap()
///     .get("balance").unwrap();
/// assert_eq!(bal, Value::Int(900));
///
/// // time travel: the pre-transfer state is one as_of away
/// let past = store.as_of(0).unwrap();
/// let bal0 = past.relation("accounts").unwrap().lookup(&Value::Int(42)).unwrap()
///     .get("balance").unwrap();
/// assert_eq!(bal0, Value::Int(1000));
/// ```
pub struct Store {
    pub(crate) root: Arc<VersionedRoot<DatabaseF>>,
    /// Commit log: `(version, write set)` of every commit, version-sorted,
    /// newest last. Trimming below the oldest version any conflict check
    /// can need would require tracking active transactions; we keep a
    /// bounded tail instead, which is correct as long as snapshots are not
    /// older than the tail — enforced in commit validation.
    pub(crate) log: Mutex<Vec<(Version, WriteSet)>>,
    /// Maximum retained commit-log entries.
    pub(crate) log_cap: usize,
    /// Default commit policy (see [`Transaction::commit_with`] to
    /// override per commit).
    pub(crate) policy: CommitPolicy,
    /// Committed roots for time travel, recorded on every write commit.
    pub(crate) history: History,
    /// The WAL + checkpoint machinery, when this store is durable.
    pub(crate) durable: Option<Durable>,
    /// Maintained views subscribed to commits (see [`Store::register_view`]).
    pub(crate) views: ViewCatalog,
    /// Hot-tuple cache fronting point reads, when configured
    /// (`StoreConfig::hot_cache`); invalidated inside
    /// [`Store::record_commit`] before anything else.
    pub(crate) cache: Option<crate::cache::HotTupleCache>,
    /// Injected faults, if a plan is installed (test/fault-injection
    /// builds only).
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl Store {
    /// Creates a store with the given initial database (version 0) and
    /// default configuration.
    pub fn new(db: DatabaseF) -> Arc<Store> {
        Store::with_config(db, StoreConfig::default())
    }

    /// Creates a store with an explicit default [`CommitPolicy`].
    pub fn with_policy(db: DatabaseF, policy: CommitPolicy) -> Arc<Store> {
        Store::with_config(
            db,
            StoreConfig {
                policy,
                ..StoreConfig::default()
            },
        )
    }

    /// Creates a store with full construction-time configuration.
    ///
    /// # Panics
    ///
    /// If `config.durability` is set — durable stores need fallible
    /// construction; use [`Store::create`] or [`Store::open_with`].
    pub fn with_config(db: DatabaseF, config: StoreConfig) -> Arc<Store> {
        assert!(
            config.durability.is_none(),
            "StoreConfig sets durability: build this store with Store::create or Store::open_with"
        );
        Store::build(db, 0, config, None)
    }

    fn build(
        db: DatabaseF,
        version: Version,
        config: StoreConfig,
        durable: Option<Durable>,
    ) -> Arc<Store> {
        let history = History::new(config.history_capacity);
        history.record(version, db.clone());
        Arc::new(Store {
            root: Arc::new(VersionedRoot::with_version(db, version)),
            log: Mutex::new(Vec::new()),
            log_cap: config.log_cap.max(1),
            policy: config.policy,
            history,
            durable,
            views: ViewCatalog::default(),
            // a recovered store starts cold at the recovered version:
            // nothing cached before the crash can be trusted
            cache: config
                .hot_cache
                .map(|cap| crate::cache::HotTupleCache::new(cap, version)),
            #[cfg(any(test, feature = "fault-injection"))]
            faults: Mutex::new(None),
        })
    }

    /// Creates a **durable** store in a fresh directory: writes the
    /// version-0 checkpoint (the initial database), starts the WAL at
    /// version 1, and returns the running store. `config.durability`
    /// must be set; the directory must not already hold checkpoints
    /// (open an existing store with [`Store::open`]).
    pub fn create(db: DatabaseF, config: StoreConfig) -> Result<Arc<Store>, DurabilityError> {
        let dcfg = config
            .durability
            .clone()
            .ok_or_else(|| DurabilityError::Corrupt {
                detail: "Store::create needs StoreConfig::durability".into(),
            })?;
        std::fs::create_dir_all(&dcfg.dir)?;
        if !list_checkpoints(&dcfg.dir)?.is_empty() {
            return Err(DurabilityError::Corrupt {
                detail: format!(
                    "{}: directory already holds checkpoints; use Store::open",
                    dcfg.dir.display()
                ),
            });
        }
        write_checkpoint(&dcfg.dir, 0, &db)?;
        let wal = Wal::create(&dcfg, 1)?;
        Ok(Store::build(
            db,
            0,
            config,
            Some(Durable {
                cfg: dcfg,
                wal: std::sync::Mutex::new(wal),
                wal_synced: std::sync::Condvar::new(),
                since_checkpoint: Mutex::new(0),
                #[cfg(any(test, feature = "fault-injection"))]
                plan: Mutex::new(None),
            }),
        ))
    }

    /// Opens (recovers) a durable store from `dir` with default
    /// configuration: newest valid checkpoint + WAL tail replay, torn
    /// tail truncated on resume. See [`Store::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Arc<Store>, DurabilityError> {
        Store::open_with(StoreConfig {
            durability: Some(DurabilityConfig::new(dir.as_ref())),
            ..StoreConfig::default()
        })
    }

    /// Opens (recovers) a durable store with explicit configuration.
    ///
    /// Recovery anchors on the newest *valid* checkpoint, replays every
    /// contiguous WAL record above it through the same apply path commits
    /// use, truncates a torn tail (a crash artifact) in place, and
    /// resumes the WAL at the next version. Mid-log corruption — a
    /// record that fails its CRC but is *followed* by valid records — is
    /// a hard [`DurabilityError::ChecksumMismatch`]: that is damage, not
    /// a crash, and silently dropping acknowledged commits is worse than
    /// refusing to open.
    ///
    /// Every replayed commit is recorded into the commit log and the
    /// time-travel history, so conflict validation and [`Store::as_of`]
    /// behave exactly as if the store had never restarted.
    pub fn open_with(config: StoreConfig) -> Result<Arc<Store>, DurabilityError> {
        let dcfg = config
            .durability
            .clone()
            .ok_or_else(|| DurabilityError::Corrupt {
                detail: "Store::open_with needs StoreConfig::durability".into(),
            })?;
        let rec = recover(&dcfg)?;
        let wal = Wal::resume(&dcfg, rec.next_version, rec.tail.clone())?;
        let store = Store::build(
            rec.db.clone(),
            rec.checkpoint_version,
            config,
            Some(Durable {
                cfg: dcfg,
                wal: std::sync::Mutex::new(wal),
                wal_synced: std::sync::Condvar::new(),
                since_checkpoint: Mutex::new(0),
                #[cfg(any(test, feature = "fault-injection"))]
                plan: Mutex::new(None),
            }),
        );
        let mut db = rec.db;
        for commit in rec.commits {
            let ops: Vec<Op> = commit.ops.into_iter().map(Op::from).collect();
            db = apply_ops(&db, &ops).map_err(|e| DurabilityError::Corrupt {
                detail: format!("replaying recovered commit v{}: {e}", commit.version),
            })?;
            store
                .root
                .try_install(commit.version - 1, db.clone())
                .map_err(|race| DurabilityError::Corrupt {
                    detail: format!(
                        "recovery replay raced: expected v{}, found v{}",
                        race.expected, race.found
                    ),
                })?;
            store
                .record_commit(
                    commit.version,
                    WriteSet::from_ops(&ops),
                    &ops,
                    None,
                    db.clone(),
                )
                .map_err(|e| DurabilityError::Corrupt {
                    detail: format!("recording recovered commit v{}: {e}", commit.version),
                })?;
        }
        Ok(store)
    }

    /// The current committed version.
    pub fn version(&self) -> Version {
        self.root.version()
    }

    /// An O(1) consistent snapshot of the committed database.
    pub fn snapshot(&self) -> DatabaseF {
        self.root.load().value
    }

    /// An O(1) consistent snapshot together with the version it was taken
    /// at (version and value read atomically).
    pub fn snapshot_versioned(&self) -> (Version, DatabaseF) {
        let snap = self.root.load();
        (snap.version, snap.value)
    }

    /// The store's default commit policy.
    pub fn policy(&self) -> &CommitPolicy {
        &self.policy
    }

    /// The committed database as of `version`: the newest recorded
    /// version ≤ `version`, replayed from the store's [`History`].
    /// Errors with [`FdmError::VersionEvicted`] below the retained
    /// window. Never blocks writers — the history read lock is held only
    /// to clone one persistent root.
    pub fn as_of(&self, version: Version) -> Result<DatabaseF> {
        self.history.as_of(version)
    }

    /// The version history behind [`Store::as_of`].
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Bounds the time-travel log to the newest `keep_last_n` versions;
    /// returns how many entries were evicted.
    pub fn compact_history(&self, keep_last_n: usize) -> usize {
        self.history.compact(keep_last_n)
    }

    /// Registers an **eagerly maintained** view: compiles `query` through
    /// the default optimizer, materializes it against the current
    /// snapshot, and subscribes it to every subsequent commit — each
    /// commit's writeset is propagated incrementally through the view's
    /// operator tree under that commit's version (see `docs/VIEWS.md`).
    /// Returns the version the view starts at. Errors if a view with
    /// this name is already registered or the initial evaluation fails.
    pub fn register_view(&self, name: &str, query: fdm_fql::Query) -> Result<Version> {
        self.register_view_with(name, query, RefreshMode::Eager)
    }

    /// [`Store::register_view`] with an explicit [`RefreshMode`]:
    /// [`RefreshMode::Manual`] views are advanced only by
    /// [`Store::refresh_views_to`], keeping the commit path free of
    /// maintenance work while the catalog buffers the deltas.
    pub fn register_view_with(
        &self,
        name: &str,
        query: fdm_fql::Query,
        mode: RefreshMode,
    ) -> Result<Version> {
        self.views
            .register(name, query, mode, || self.snapshot_versioned())
    }

    /// Reads a registered view: the maintained result relation and the
    /// commit version it reflects. Errors if no view has this name or a
    /// maintenance failure poisoned it.
    pub fn view(&self, name: &str) -> Result<(Version, RelationF)> {
        self.views.read(name)
    }

    /// Maintenance counters for a registered view (deltas applied, rows
    /// changed, dirty groups, fallback recomputes), or `None` if no view
    /// has this name.
    pub fn view_stats(&self, name: &str) -> Option<fdm_fql::IvmStats> {
        self.views.stats(name)
    }

    /// Brings every registered view — manual and eager — forward through
    /// the buffered commits, up to at most `version`. Returns the
    /// minimum watermark across healthy views: the version all of them
    /// are guaranteed to reflect (which may exceed `version` if they
    /// were already ahead, or fall short of it if a commit in between
    /// has installed but not yet reached its post-install bookkeeping).
    pub fn refresh_views_to(&self, version: Version) -> Result<Version> {
        self.views.refresh_to(version)
    }

    /// Begins a transaction on the current snapshot (paper Fig. 11
    /// `begin()`).
    ///
    /// Deliberately touches only the versioned root's read lock — never
    /// the commit-log mutex — so a reader-heavy workload cannot stall
    /// committers and a stalled committer cannot stall `begin()`. Pinned
    /// by `begin_and_snapshot_never_take_the_commit_log_lock` below.
    pub fn begin(self: &Arc<Self>) -> Transaction {
        let snap = self.root.load();
        Transaction::new(Arc::clone(self), snap.version, snap.value)
    }

    /// Runs `f` as a transaction under the store's default policy; see
    /// [`Store::run_with`].
    pub fn run<T>(
        self: &Arc<Self>,
        f: impl FnMut(&mut Transaction) -> Result<T>,
    ) -> Result<(T, CommitOutcome)> {
        let policy = self.policy.clone();
        self.run_with(&policy, f)
    }

    /// Runs `f` as a transaction, retrying the **whole closure** on
    /// conflict: a fresh snapshot, a re-executed body, a new commit. This
    /// is the safe retry for read-modify-write logic — replaying recorded
    /// writes after a genuine conflict would lose the other committer's
    /// update, so `commit` refuses to, and this re-derivation is the
    /// correct discipline instead.
    ///
    /// Up to `policy.max_attempts` executions, paced by the policy's
    /// seeded backoff; each inner commit also retries *transient* races
    /// under the same policy. Returns the closure's value and the final
    /// [`CommitOutcome`] (attempts = closure executions).
    pub fn run_with<T>(
        self: &Arc<Self>,
        policy: &CommitPolicy,
        mut f: impl FnMut(&mut Transaction) -> Result<T>,
    ) -> Result<(T, CommitOutcome)> {
        let start = std::time::Instant::now();
        let mut backoff = policy.backoff();
        let max_attempts = policy.max_attempts.max(1);
        let mut conflicts: Vec<(String, String)> = Vec::new();
        for attempt in 1..=max_attempts {
            let mut txn = self.begin();
            let out = f(&mut txn)?;
            match txn.commit_with(policy) {
                Ok(mut outcome) => {
                    outcome.attempts = attempt;
                    conflicts.append(&mut outcome.conflicts);
                    outcome.conflicts = conflicts;
                    return Ok((out, outcome));
                }
                Err(FdmError::TransactionConflict { detail, mut keys }) => {
                    conflicts.append(&mut keys);
                    if attempt == max_attempts {
                        return Err(FdmError::TransactionRetriesExhausted {
                            attempts: attempt,
                            detail,
                        });
                    }
                }
                Err(FdmError::TransactionRetriesExhausted { detail, .. }) => {
                    if attempt == max_attempts {
                        return Err(FdmError::TransactionRetriesExhausted {
                            attempts: attempt,
                            detail,
                        });
                    }
                }
                Err(e) => return Err(e),
            }
            if let Some(t) = policy.timeout {
                if start.elapsed() >= t {
                    return Err(FdmError::TransactionTimeout {
                        attempts: attempt,
                        elapsed_ms: start.elapsed().as_millis() as u64,
                    });
                }
            }
            backoff.sleep_next();
        }
        unreachable!("loop returns on the final attempt")
    }

    /// Per-statement autocommit (the paper's Fig. 10 note: "depending on
    /// the configured transaction mode ... the snapshot of the individual
    /// operation"): runs `f` as a single-statement transaction, retrying
    /// on conflict up to `retries` times.
    pub fn autocommit<T>(
        self: &Arc<Self>,
        retries: usize,
        f: impl Fn(&mut Transaction) -> Result<T>,
    ) -> Result<T> {
        let policy = self.policy.clone().with_max_attempts(retries + 1);
        self.run_with(&policy, f).map(|(out, _)| out)
    }

    /// Convenience single-statement write: insert-or-replace one tuple.
    pub fn upsert_one(self: &Arc<Self>, rel: &str, key: Value, tuple: TupleF) -> Result<Version> {
        let mut txn = self.begin();
        txn.upsert(rel, key, tuple)?;
        txn.commit()
    }

    /// Number of commits retained in the validation log.
    pub fn log_len(&self) -> usize {
        self.log.lock().len()
    }

    /// Point read of one tuple at the current version, served through
    /// the hot-tuple cache when one is configured
    /// (`StoreConfig::hot_cache`). The cache can only serve a value at
    /// or after the reader's snapshot version, never before it (the
    /// [`crate::cache`] invalidation contract); without a cache this is
    /// a plain snapshot lookup.
    pub fn read_point(&self, rel: &str, key: &Value) -> Result<Option<Arc<TupleF>>> {
        self.read_point_versioned(rel, key).map(|(_, t)| t)
    }

    /// [`Store::read_point`], also reporting the snapshot version the
    /// read was served at — the version the invalidation contract is
    /// stated against, which the pin tests assert with.
    pub fn read_point_versioned(
        &self,
        rel: &str,
        key: &Value,
    ) -> Result<(Version, Option<Arc<TupleF>>)> {
        if let Some(cache) = &self.cache {
            // Hit fast path: the version number alone suffices — no
            // snapshot clone. A hit at version `v` requires the cache to
            // have processed every invalidation `<= v`, so the entry is
            // the newest committed value *at or after* `v` (a commit can
            // land between the version read and the probe; serving its
            // newer value is within the contract, never older).
            let version = self.root.version();
            if let Some(t) = cache.get(rel, key, version) {
                return Ok((version, Some(t)));
            }
            let current = self.root.load();
            let found = current.value.relation(rel)?.lookup(key);
            if let Some(t) = &found {
                cache.fill(rel, key, t, current.version);
            }
            return Ok((current.version, found));
        }
        let current = self.root.load();
        Ok((current.version, current.value.relation(rel)?.lookup(key)))
    }

    /// The hot-tuple cache's counters, when one is configured.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Records a successful commit: the write set into the validation log
    /// (version-sorted — concurrent winners may arrive out of order), the
    /// new root into the time-travel history, and — on a durable store
    /// with `wal_payload` — the encoded writeset into the WAL, fsynced
    /// per the configured [`fdm_durability::SyncPolicy`]. Recovery replay
    /// passes `None`: those commits are already on disk.
    ///
    /// Under [`SyncPolicy::Always`] this returns only once the commit's
    /// record is actually covered by an fsync: a record that arrived out
    /// of version order (parked in the WAL's pending buffer) blocks on
    /// [`Durable::wal_synced`] until the gap-filling append syncs past
    /// it, and fails with [`FdmError::Durability`] if the gap never
    /// fills ([`DurabilityConfig::gap_sync_timeout`]) — never a false
    /// acknowledgement.
    ///
    /// The in-memory bookkeeping always completes (the commit *is*
    /// installed); a WAL or checkpoint failure is then surfaced as
    /// [`FdmError::Durability`] — the memory state may be ahead of the
    /// log, exactly as after a crash, and recovery replays the durable
    /// prefix.
    pub(crate) fn record_commit(
        &self,
        version: Version,
        writes: WriteSet,
        ops: &[Op],
        wal_payload: Option<&[u8]>,
        db: DatabaseF,
    ) -> Result<()> {
        // Cache invalidation first: evict the written keys and advance
        // the watermark before this commit's version becomes servable
        // (readers at this version miss until the watermark covers it —
        // see `crate::cache` for why that ordering is the safe one).
        if let Some(cache) = &self.cache {
            cache.invalidate(version, &writes);
        }
        {
            let mut log = self.log.lock();
            let at = log
                .iter()
                .rposition(|(v, _)| *v <= version)
                .map(|i| i + 1)
                .unwrap_or(0);
            log.insert(at, (version, writes));
            if log.len() > self.log_cap {
                let excess = log.len() - self.log_cap;
                log.drain(..excess);
            }
        }
        self.history.record(version, db.clone());
        // Maintain registered views before the WAL section: the commit is
        // installed and in the history, so views must see it even if the
        // durability acknowledgement below fails. Per-view maintenance
        // errors never fail the commit (they poison that view only).
        self.views.observe(version, ops, &db);
        if let (Some(d), Some(payload)) = (self.durable.as_ref(), wal_payload) {
            {
                let mut wal = d.wal();
                let ack = wal
                    .append(version, payload)
                    .map_err(|e| FdmError::Durability {
                        detail: e.to_string(),
                    })?;
                // This append may have drained buffered successors past
                // their covering fsync — wake any committer parked on
                // the durable watermark below.
                d.wal_synced.notify_all();
                if matches!(d.cfg.sync, SyncPolicy::Always) && !ack.durable {
                    // Out-of-order arrival: the record sits in the
                    // pending buffer behind a version gap, with no fsync
                    // covering it. `Always` promises an acknowledged
                    // commit is on the medium, so block until the
                    // gap-filling committer writes and syncs past this
                    // version — and fail the commit (durability NOT
                    // acknowledged) if it never does, e.g. because that
                    // committer died between its install and its append.
                    let deadline = std::time::Instant::now() + d.cfg.gap_sync_timeout;
                    while wal.synced_version() < version {
                        let left = deadline.saturating_duration_since(std::time::Instant::now());
                        if left.is_zero() {
                            return Err(FdmError::Durability {
                                detail: format!(
                                    "commit v{version} is buffered behind a WAL version gap \
                                     (durable watermark v{}) that did not fill within {:?}; \
                                     durability cannot be acknowledged",
                                    wal.synced_version(),
                                    d.cfg.gap_sync_timeout
                                ),
                            });
                        }
                        wal = d
                            .wal_synced
                            .wait_timeout(wal, left)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
            let due = {
                let mut since = d.since_checkpoint.lock();
                *since += 1;
                match d.cfg.checkpoint_every {
                    Some(every) if *since >= every => {
                        *since = 0;
                        true
                    }
                    _ => false,
                }
            };
            if due {
                self.write_checkpoint_now(d, version, &db)
                    .map_err(|e| FdmError::Durability {
                        detail: e.to_string(),
                    })?;
            }
        }
        Ok(())
    }

    /// Encodes a transaction's recorded ops for the WAL — *before* the
    /// CAS loop, so an unserializable write (a closure-valued assign) or
    /// a writeset too large for the record format fails the commit
    /// before anything installs. `None` on an in-memory store.
    pub(crate) fn encode_for_wal(&self, ops: &[Op]) -> Result<Option<Vec<u8>>> {
        if self.durable.is_none() {
            return Ok(None);
        }
        let wal_ops: Vec<WalOp> = ops.iter().map(WalOp::from).collect();
        let payload = encode_ops(&wal_ops).map_err(|e| FdmError::Durability {
            detail: e.to_string(),
        })?;
        check_record_payload(payload.len()).map_err(|e| FdmError::Durability {
            detail: e.to_string(),
        })?;
        Ok(Some(payload))
    }

    fn write_checkpoint_now(
        &self,
        d: &Durable,
        version: Version,
        db: &DatabaseF,
    ) -> Result<(), DurabilityError> {
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(plan) = d.plan.lock().clone() {
            write_checkpoint_faulty(&d.cfg.dir, version, db, &plan)?;
            prune_checkpoints(&d.cfg.dir, d.cfg.retain_checkpoints)?;
            return Ok(());
        }
        write_checkpoint(&d.cfg.dir, version, db)?;
        prune_checkpoints(&d.cfg.dir, d.cfg.retain_checkpoints)?;
        Ok(())
    }

    /// `true` if this store has a WAL (built by [`Store::create`] /
    /// [`Store::open`]).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The highest version known durable (its fsync ran), or `None` on
    /// an in-memory store. Under [`fdm_durability::SyncPolicy::Always`]
    /// this equals [`Store::version`] after every commit; under group
    /// commit it can lag by up to the group size.
    pub fn durable_version(&self) -> Option<Version> {
        self.durable.as_ref().map(|d| d.wal().synced_version())
    }

    /// Forces an fsync of the WAL, draining any group-commit window.
    /// A no-op on an in-memory store.
    pub fn sync_wal(&self) -> Result<(), DurabilityError> {
        match &self.durable {
            Some(d) => d.wal().sync(),
            None => Ok(()),
        }
    }

    /// Writes a checkpoint of the current committed state, applies
    /// retention (pruning old checkpoints and fully-covered WAL
    /// segments), and returns the checkpointed version.
    pub fn checkpoint(&self) -> Result<Version, DurabilityError> {
        let d = self
            .durable
            .as_ref()
            .ok_or_else(|| DurabilityError::Corrupt {
                detail: "checkpoint() on an in-memory store".into(),
            })?;
        let (version, db) = self.snapshot_versioned();
        self.write_checkpoint_now(d, version, &db)?;
        *d.since_checkpoint.lock() = 0;
        Ok(version)
    }

    /// Offline-style fsck of this store's durability directory: validates
    /// every checkpoint, scans every WAL segment, and reports what
    /// recovery would do. Reads the files as they are on disk; call
    /// [`Store::sync_wal`] first if you want the report to cover the
    /// current group-commit window.
    pub fn verify_integrity(&self) -> Result<IntegrityReport, DurabilityError> {
        let d = self
            .durable
            .as_ref()
            .ok_or_else(|| DurabilityError::Corrupt {
                detail: "verify_integrity() on an in-memory store".into(),
            })?;
        fdm_durability::verify_integrity(&d.cfg)
    }
}

#[cfg(any(test, feature = "fault-injection"))]
impl Store {
    /// Installs a fault plan; subsequent commits consult it. Replaces any
    /// previous plan.
    pub fn install_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.faults.lock() = Some(plan);
    }

    /// Removes the installed fault plan, if any.
    pub fn clear_fault_plan(&self) {
        *self.faults.lock() = None;
    }

    /// Installs a crash plan on the durability layer: subsequent WAL
    /// writes, fsyncs, and checkpoint writes consult it (torn writes,
    /// bit flips, duplicated tail records, dropped fsyncs). A no-op on
    /// an in-memory store. Crash plans are sticky — after a simulated
    /// crash the store keeps failing with `Crashed`; "reboot" by
    /// dropping the store and calling [`Store::open`].
    pub fn install_crash_plan(&self, plan: Arc<CrashPlan>) {
        if let Some(d) = &self.durable {
            d.wal().install_crash_plan(Arc::clone(&plan));
            *d.plan.lock() = Some(plan);
        }
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    pub(crate) fn fault_take_conflict(&self, v: Version) -> bool {
        self.fault_plan().is_some_and(|p| p.take_conflict(v))
    }

    pub(crate) fn fault_poisoned(&self, v: Version) -> bool {
        self.fault_plan().is_some_and(|p| p.poisoned(v))
    }

    pub(crate) fn fault_delay_before_cas(&self, v: Version) {
        if let Some(delay) = self.fault_plan().and_then(|p| p.delay_for(v)) {
            std::thread::sleep(delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm_core::RelationF;
    use std::sync::mpsc;
    use std::time::Duration;

    fn bank() -> Arc<Store> {
        let accounts = RelationF::new("accounts", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("a").attr("balance", 100).build(),
            )
            .unwrap();
        Store::new(DatabaseF::new("bank").with_relation(accounts))
    }

    #[test]
    fn snapshot_is_stable_across_commits() {
        let store = bank();
        let before = store.snapshot();
        store
            .upsert_one(
                "accounts",
                Value::Int(2),
                TupleF::builder("a").attr("balance", 7).build(),
            )
            .unwrap();
        assert_eq!(before.relation("accounts").unwrap().len(), 1);
        assert_eq!(store.snapshot().relation("accounts").unwrap().len(), 2);
        assert_eq!(store.version(), 1);
        let (v, db) = store.snapshot_versioned();
        assert_eq!(v, 1);
        assert_eq!(db.relation("accounts").unwrap().len(), 2);
    }

    #[test]
    fn autocommit_retries_until_success() {
        let store = bank();
        let out = store
            .autocommit(3, |txn| {
                txn.modify_attr("accounts", &Value::Int(1), "balance", |v| {
                    v.add(&Value::Int(1))
                })?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn run_reports_a_commit_outcome() {
        let store = bank();
        let (out, outcome) = store
            .run(|txn| {
                txn.update_attr("accounts", &Value::Int(1), "balance", 7)?;
                Ok("done")
            })
            .unwrap();
        assert_eq!(out, "done");
        assert_eq!(outcome.version, 1);
        assert_eq!(outcome.attempts, 1);
        assert!(outcome.conflicts.is_empty());
    }

    #[test]
    fn run_rederives_after_a_genuine_conflict() {
        // two closure-retried writers to the same key: both must land,
        // and the loser's re-execution must see the winner's value (no
        // lost update)
        let store = bank();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for _ in 0..20 {
                        store
                            .run(|txn| {
                                txn.modify_attr("accounts", &Value::Int(1), "balance", |v| {
                                    v.add(&Value::Int(1))
                                })
                            })
                            .unwrap();
                    }
                });
            }
        });
        let bal = store
            .snapshot()
            .relation("accounts")
            .unwrap()
            .lookup(&Value::Int(1))
            .unwrap()
            .get("balance")
            .unwrap();
        assert_eq!(bal, Value::Int(140), "all 40 increments applied");
    }

    #[test]
    fn as_of_replays_the_commit_history() {
        let store = bank();
        for i in 0..5i64 {
            store
                .run(|txn| txn.update_attr("accounts", &Value::Int(1), "balance", 100 + i))
                .unwrap();
        }
        assert_eq!(store.version(), 5);
        for v in 0..=5u64 {
            let db = store.as_of(v).unwrap();
            let bal = db
                .relation("accounts")
                .unwrap()
                .lookup(&Value::Int(1))
                .unwrap()
                .get("balance")
                .unwrap();
            let expect = if v == 0 { 100 } else { 100 + v as i64 - 1 };
            assert_eq!(bal, Value::Int(expect), "as_of({v})");
        }
        // compaction bounds the log and reports typed eviction below it
        assert_eq!(store.compact_history(2), 4);
        assert!(store.as_of(5).is_ok());
        let err = store.as_of(1).unwrap_err();
        assert!(matches!(
            err,
            FdmError::VersionEvicted {
                version: 1,
                oldest: Some(4),
                newest: Some(5)
            }
        ));
    }

    #[test]
    fn forced_conflict_is_survived_by_the_default_policy() {
        let store = bank();
        let plan = FaultPlan::new();
        plan.force_conflict_at(0);
        store.install_fault_plan(Arc::clone(&plan));
        // the old code surfaced the conflict immediately; the policy-driven
        // commit replays and wins on the second attempt
        let mut txn = store.begin();
        txn.update_attr("accounts", &Value::Int(1), "balance", 1)
            .unwrap();
        let outcome = txn.commit_with(&CommitPolicy::default()).unwrap();
        assert_eq!(outcome.version, 1);
        assert_eq!(outcome.attempts, 2);
        assert_eq!(
            outcome.conflicts,
            vec![("<injected>".to_string(), "v0".to_string())]
        );
        assert_eq!(plan.injected_conflicts(), 1);
    }

    #[test]
    fn forced_conflict_fails_a_no_retry_policy() {
        let store = bank();
        let plan = FaultPlan::new();
        plan.force_conflict_at(0);
        store.install_fault_plan(plan);
        let mut txn = store.begin();
        txn.update_attr("accounts", &Value::Int(1), "balance", 1)
            .unwrap();
        let err = txn.commit_with(&CommitPolicy::no_retry()).unwrap_err();
        assert!(
            matches!(
                err,
                FdmError::TransactionRetriesExhausted { attempts: 1, .. }
            ),
            "{err:?}"
        );
        assert_eq!(store.version(), 0, "nothing installed");
    }

    #[test]
    fn poisoned_writeset_exhausts_bounded_retries() {
        let store = bank();
        let plan = FaultPlan::new();
        plan.poison_writeset_at(0);
        store.install_fault_plan(Arc::clone(&plan));
        let mut txn = store.begin();
        txn.update_attr("accounts", &Value::Int(1), "balance", 1)
            .unwrap();
        let policy = CommitPolicy::default()
            .with_max_attempts(4)
            .with_backoff(Duration::from_micros(1), Duration::from_micros(10));
        let err = txn.commit_with(&policy).unwrap_err();
        assert!(
            matches!(
                err,
                FdmError::TransactionRetriesExhausted { attempts: 4, .. }
            ),
            "{err:?}"
        );
        assert_eq!(plan.injected_poisons(), 4, "every attempt was poisoned");
        assert_eq!(store.version(), 0);
        // clearing the plan restores normal commits
        store.clear_fault_plan();
        store
            .run(|txn| txn.update_attr("accounts", &Value::Int(1), "balance", 2))
            .unwrap();
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn commit_timeout_is_enforced() {
        let store = bank();
        let plan = FaultPlan::new();
        plan.poison_writeset_at(0);
        store.install_fault_plan(plan);
        let mut txn = store.begin();
        txn.update_attr("accounts", &Value::Int(1), "balance", 1)
            .unwrap();
        let policy = CommitPolicy::default()
            .with_max_attempts(1_000_000)
            .with_backoff(Duration::from_micros(50), Duration::from_micros(200))
            .with_timeout(Duration::from_millis(5));
        let err = txn.commit_with(&policy).unwrap_err();
        assert!(
            matches!(err, FdmError::TransactionTimeout { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn delay_fault_widens_the_race_window_but_commit_still_lands() {
        let store = bank();
        let plan = FaultPlan::new();
        plan.delay_before_cas_at(0, Duration::from_millis(1));
        store.install_fault_plan(Arc::clone(&plan));
        store
            .run(|txn| txn.update_attr("accounts", &Value::Int(1), "balance", 5))
            .unwrap();
        assert!(plan.injected_delays() >= 1);
        assert_eq!(store.version(), 1);
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fdm-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_store_survives_a_restart() {
        let dir = scratch("restart");
        let accounts = RelationF::new("accounts", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("a").attr("balance", 100).build(),
            )
            .unwrap();
        let db = DatabaseF::new("bank").with_relation(accounts);
        let cfg = StoreConfig {
            durability: Some(fdm_durability::DurabilityConfig::new(&dir)),
            ..StoreConfig::default()
        };
        let store = Store::create(db, cfg).unwrap();
        assert!(store.is_durable());
        for i in 1..=5i64 {
            store
                .run(|txn| txn.update_attr("accounts", &Value::Int(1), "balance", 100 + i))
                .unwrap();
        }
        assert_eq!(store.version(), 5);
        assert_eq!(
            store.durable_version(),
            Some(5),
            "Always policy: every ack durable"
        );
        let report = store.verify_integrity().unwrap();
        assert_eq!(report.replay_to, 5);
        assert!(!report.torn_tail);
        drop(store);

        let back = Store::open(&dir).unwrap();
        assert_eq!(back.version(), 5);
        let bal = back
            .snapshot()
            .relation("accounts")
            .unwrap()
            .lookup(&Value::Int(1))
            .unwrap()
            .get("balance")
            .unwrap();
        assert_eq!(bal, Value::Int(105));
        // history and commit log were rebuilt: time travel + new commits work
        assert_eq!(
            back.as_of(2)
                .unwrap()
                .relation("accounts")
                .unwrap()
                .lookup(&Value::Int(1))
                .unwrap()
                .get("balance")
                .unwrap(),
            Value::Int(102)
        );
        back.run(|txn| txn.update_attr("accounts", &Value::Int(1), "balance", 1))
            .unwrap();
        assert_eq!(back.version(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_a_populated_directory_and_checkpoint_bounds_replay() {
        let dir = scratch("create-twice");
        let db = DatabaseF::new("d").with_relation(RelationF::new("r", &["k"]));
        let cfg = || StoreConfig {
            durability: Some(fdm_durability::DurabilityConfig::new(&dir)),
            ..StoreConfig::default()
        };
        let store = Store::create(db.clone(), cfg()).unwrap();
        store
            .run(|txn| {
                txn.upsert(
                    "r",
                    Value::Int(1),
                    TupleF::builder("t").attr("v", 1).build(),
                )
            })
            .unwrap();
        let err = match Store::create(db, cfg()) {
            Err(e) => e,
            Ok(_) => panic!("create on a populated directory must fail"),
        };
        assert!(matches!(
            err,
            fdm_durability::DurabilityError::Corrupt { .. }
        ));
        // an explicit checkpoint anchors recovery at the current version
        assert_eq!(store.checkpoint().unwrap(), 1);
        let report = store.verify_integrity().unwrap();
        assert_eq!(report.checkpoint_version, 1);
        drop(store);
        let back = Store::open(&dir).unwrap();
        assert_eq!(back.version(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unserializable_write_fails_before_install() {
        let dir = scratch("unserializable");
        let db = DatabaseF::new("d").with_relation(RelationF::new("r", &["k"]));
        let store = Store::create(
            db,
            StoreConfig {
                durability: Some(fdm_durability::DurabilityConfig::new(&dir)),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let mut txn = store.begin();
        txn.assign(
            "f",
            fdm_core::FnValue::Lambda(Arc::new(fdm_core::LambdaF::unary(
                "f",
                fdm_core::Domain::Typed(fdm_core::ValueType::Int),
                |v| Ok(v.clone()),
            ))),
        )
        .unwrap();
        let err = txn.commit().unwrap_err();
        assert!(
            matches!(err, FdmError::Durability { .. }),
            "lambda assigns cannot be logged: {err}"
        );
        assert_eq!(store.version(), 0, "nothing installed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression pin for the `SyncPolicy::Always` acknowledgement
    /// contract: a commit whose WAL record arrives out of version order
    /// (parked in the pending buffer, `AppendAck::durable == false`)
    /// must not return `Ok` until the gap-filling append's fsync covers
    /// it.
    #[test]
    fn out_of_order_wal_append_blocks_until_durable() {
        let dir = scratch("gap-fill");
        let store = Store::create(
            DatabaseF::new("d"),
            StoreConfig {
                durability: Some(fdm_durability::DurabilityConfig::new(&dir)),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let payload = store.encode_for_wal(&[]).unwrap().unwrap();
        let db = store.snapshot();
        // v2 reaches the WAL first, as if its committer won the race to
        // record_commit after losing the install race
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel();
            let v2_store = Arc::clone(&store);
            let v2_payload = payload.clone();
            let v2_db = db.clone();
            let handle = s.spawn(move || {
                let out = v2_store.record_commit(
                    2,
                    WriteSet::from_ops(&[]),
                    &[],
                    Some(&v2_payload),
                    v2_db,
                );
                tx.send(()).unwrap();
                out
            });
            assert!(
                rx.recv_timeout(Duration::from_millis(100)).is_err(),
                "v2 must stay parked while the v1 gap is open"
            );
            store
                .record_commit(1, WriteSet::from_ops(&[]), &[], Some(&payload), db.clone())
                .unwrap();
            rx.recv_timeout(Duration::from_secs(10))
                .expect("filling the gap must release the parked committer");
            handle.join().unwrap().unwrap();
        });
        assert_eq!(store.durable_version(), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The dual: if the gap never fills (the missing version's committer
    /// died between its install and its WAL append), the parked commit
    /// fails with a durability error — it is never falsely acknowledged.
    #[test]
    fn unfilled_wal_gap_fails_the_commit_instead_of_acking() {
        let dir = scratch("gap-timeout");
        let store = Store::create(
            DatabaseF::new("d"),
            StoreConfig {
                durability: Some(
                    fdm_durability::DurabilityConfig::new(&dir)
                        .with_gap_sync_timeout(Duration::from_millis(50)),
                ),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let payload = store.encode_for_wal(&[]).unwrap().unwrap();
        let db = store.snapshot();
        let err = store
            .record_commit(2, WriteSet::from_ops(&[]), &[], Some(&payload), db)
            .unwrap_err();
        assert!(
            matches!(&err, FdmError::Durability { detail } if detail.contains("version gap")),
            "{err:?}"
        );
        assert_eq!(store.durable_version(), Some(0), "nothing acknowledged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression pin for the commit-log locking discipline: `begin()`
    /// and snapshot reads must never touch the commit-log mutex, so a
    /// stalled committer (or anything else holding the log) cannot block
    /// readers — and long-running readers, holding only persistent
    /// clones, cannot block commits.
    #[test]
    fn begin_and_snapshot_never_take_the_commit_log_lock() {
        let store = bank();
        let guard = store.log.lock(); // a "stalled committer"
        let (tx, rx) = mpsc::channel();
        let reader_store = Arc::clone(&store);
        let handle = std::thread::spawn(move || {
            let txn = reader_store.begin();
            let (v, db) = reader_store.snapshot_versioned();
            let _ = reader_store.as_of(v);
            tx.send((
                txn.base_version(),
                v,
                db.relation("accounts").unwrap().len(),
            ))
            .unwrap();
        });
        let got = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("begin()/snapshot()/as_of() must not block on the commit-log mutex");
        assert_eq!(got, (0, 0, 1));
        drop(guard);
        handle.join().unwrap();

        // and the dual: a long-lived reader (open transaction + snapshot
        // in hand) never blocks a commit
        let long_reader = store.begin();
        let held_snapshot = store.snapshot();
        let (tx, rx) = mpsc::channel();
        let writer_store = Arc::clone(&store);
        let handle = std::thread::spawn(move || {
            let v = writer_store
                .upsert_one(
                    "accounts",
                    Value::Int(9),
                    TupleF::builder("a").attr("balance", 1).build(),
                )
                .unwrap();
            tx.send(v).unwrap();
        });
        let v = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("a commit must not block on open readers");
        assert_eq!(v, 1);
        handle.join().unwrap();
        assert_eq!(held_snapshot.relation("accounts").unwrap().len(), 1);
        assert!(long_reader
            .get("accounts", &Value::Int(9))
            .unwrap()
            .is_none());
    }
}
