//! The transactional store: a versioned root holding the committed
//! database function, plus the commit log used for snapshot-isolation
//! validation.

use crate::txn::Transaction;
use crate::writeset::WriteSet;
use fdm_core::{DatabaseF, FdmError, Result, TupleF, Value};
use fdm_storage::{Version, VersionedRoot};
use parking_lot::Mutex;
use std::sync::Arc;

/// A transactional FDM store.
///
/// Readers take O(1) snapshots (the database function is persistent);
/// writers run under snapshot isolation: each transaction works on its
/// snapshot, and at commit time its write set is validated against every
/// transaction that committed after the snapshot was taken. Disjoint
/// writers merge (their recorded operations replay onto the latest root);
/// overlapping writers lose with [`FdmError::TransactionConflict`] —
/// first committer wins.
///
/// # Examples
///
/// ```
/// use fdm_core::{DatabaseF, RelationF, TupleF, Value};
/// use fdm_txn::Store;
///
/// let accounts = RelationF::new("accounts", &["id"])
///     .insert(Value::Int(42), TupleF::builder("a").attr("balance", 1000).build()).unwrap()
///     .insert(Value::Int(84), TupleF::builder("a").attr("balance", 500).build()).unwrap();
/// let store = Store::new(DatabaseF::new("bank").with_relation(accounts));
///
/// // begin() ... commit()  (paper Fig. 11)
/// let mut txn = store.begin();
/// txn.modify_attr("accounts", &Value::Int(42), "balance", |v| v.sub(&Value::Int(100))).unwrap();
/// txn.modify_attr("accounts", &Value::Int(84), "balance", |v| v.add(&Value::Int(100))).unwrap();
/// txn.commit().unwrap();
///
/// let db = store.snapshot();
/// let bal = db.relation("accounts").unwrap().lookup(&Value::Int(42)).unwrap()
///     .get("balance").unwrap();
/// assert_eq!(bal, Value::Int(900));
/// ```
pub struct Store {
    pub(crate) root: Arc<VersionedRoot<DatabaseF>>,
    /// Commit log: `(version, write set)` of every commit, newest last.
    /// Trimmed below the oldest version any conflict check can need would
    /// require tracking active transactions; we keep a bounded tail
    /// instead, which is correct as long as snapshots are not older than
    /// the tail — enforced in `validate`.
    pub(crate) log: Mutex<Vec<(Version, WriteSet)>>,
    /// Maximum retained commit-log entries.
    pub(crate) log_cap: usize,
}

impl Store {
    /// Creates a store with the given initial database (version 0).
    pub fn new(db: DatabaseF) -> Arc<Store> {
        Arc::new(Store {
            root: Arc::new(VersionedRoot::new(db)),
            log: Mutex::new(Vec::new()),
            log_cap: 4096,
        })
    }

    /// The current committed version.
    pub fn version(&self) -> Version {
        self.root.version()
    }

    /// An O(1) consistent snapshot of the committed database.
    pub fn snapshot(&self) -> DatabaseF {
        self.root.load().value
    }

    /// Begins a transaction on the current snapshot (paper Fig. 11
    /// `begin()`).
    pub fn begin(self: &Arc<Self>) -> Transaction {
        let snap = self.root.load();
        Transaction::new(Arc::clone(self), snap.version, snap.value)
    }

    /// Per-statement autocommit (the paper's Fig. 10 note: "depending on
    /// the configured transaction mode ... the snapshot of the individual
    /// operation"): runs `f` as a single-statement transaction, retrying
    /// on conflict up to `retries` times.
    pub fn autocommit<T>(
        self: &Arc<Self>,
        retries: usize,
        f: impl Fn(&mut Transaction) -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 0;
        loop {
            let mut txn = self.begin();
            let out = f(&mut txn)?;
            match txn.commit() {
                Ok(_) => return Ok(out),
                Err(FdmError::TransactionConflict { .. }) if attempt < retries => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Convenience single-statement write: insert-or-replace one tuple.
    pub fn upsert_one(self: &Arc<Self>, rel: &str, key: Value, tuple: TupleF) -> Result<Version> {
        let mut txn = self.begin();
        txn.upsert(rel, key, tuple)?;
        txn.commit()
    }

    /// Number of commits retained in the validation log.
    pub fn log_len(&self) -> usize {
        self.log.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm_core::RelationF;

    fn bank() -> Arc<Store> {
        let accounts = RelationF::new("accounts", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("a").attr("balance", 100).build(),
            )
            .unwrap();
        Store::new(DatabaseF::new("bank").with_relation(accounts))
    }

    #[test]
    fn snapshot_is_stable_across_commits() {
        let store = bank();
        let before = store.snapshot();
        store
            .upsert_one(
                "accounts",
                Value::Int(2),
                TupleF::builder("a").attr("balance", 7).build(),
            )
            .unwrap();
        assert_eq!(before.relation("accounts").unwrap().len(), 1);
        assert_eq!(store.snapshot().relation("accounts").unwrap().len(), 2);
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn autocommit_retries_until_success() {
        let store = bank();
        let out = store
            .autocommit(3, |txn| {
                txn.modify_attr("accounts", &Value::Int(1), "balance", |v| {
                    v.add(&Value::Int(1))
                })?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(out, 42);
    }
}
