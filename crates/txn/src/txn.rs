//! The transaction object (paper Fig. 11).
//!
//! A transaction holds a snapshot of the database function and applies
//! changes to it **immediately** — "note the absence of an explicit
//! save()-method: changes are applied immediately to the snapshot"
//! (Fig. 10 caption). Persistence makes this safe: the working copy
//! shares structure with the committed root but never disturbs it.
//!
//! `commit()` validates the write set against everything committed since
//! the snapshot: disjoint writers replay their recorded operations onto
//! the newest root and win; overlapping writers get
//! [`FdmError::TransactionConflict`] — first committer wins.

use crate::store::{CommitOutcome, CommitPolicy, Store};
use crate::writeset::{Op, WriteSet};
use fdm_core::{DatabaseF, FdmError, FnValue, Name, Result, TupleF, Value};
use fdm_fql::{db_delete, db_upsert};
use fdm_storage::Version;
use std::sync::Arc;
use std::time::Instant;

/// An in-flight transaction.
pub struct Transaction {
    store: Arc<Store>,
    base_version: Version,
    /// The working database: snapshot + own writes (read-your-writes).
    working: DatabaseF,
    writes: WriteSet,
    ops: Vec<Op>,
    finished: bool,
}

impl Transaction {
    pub(crate) fn new(store: Arc<Store>, base_version: Version, snapshot: DatabaseF) -> Self {
        Transaction {
            store,
            base_version,
            working: snapshot,
            writes: WriteSet::default(),
            ops: Vec::new(),
            finished: false,
        }
    }

    /// The version this transaction's snapshot was taken at.
    pub fn base_version(&self) -> Version {
        self.base_version
    }

    /// The transaction's current view: snapshot plus its own writes.
    pub fn db(&self) -> &DatabaseF {
        &self.working
    }

    /// Reads one tuple (from the transaction's own view).
    pub fn get(&self, rel: &str, key: &Value) -> Result<Option<Arc<TupleF>>> {
        Ok(self.working.relation(rel)?.lookup(key))
    }

    /// Reads one attribute of one tuple.
    pub fn get_attr(&self, rel: &str, key: &Value, attr: &str) -> Result<Value> {
        let t = self.get(rel, key)?.ok_or_else(|| FdmError::Undefined {
            function: rel.to_string(),
            input: key.to_string(),
        })?;
        t.get(attr)
    }

    /// `rel[key] = tuple` — insert-or-replace.
    pub fn upsert(&mut self, rel: &str, key: Value, tuple: TupleF) -> Result<()> {
        self.working = db_upsert(&self.working, rel, key.clone(), tuple.clone())?;
        let rel_name = Name::from(rel);
        self.writes.touch_key(&rel_name, &key);
        self.ops.push(Op::Upsert {
            rel: rel_name,
            key,
            tuple: Arc::new(tuple),
        });
        Ok(())
    }

    /// `del rel[key]`.
    pub fn delete(&mut self, rel: &str, key: &Value) -> Result<()> {
        self.working = db_delete(&self.working, rel, key)?;
        let rel_name = Name::from(rel);
        self.writes.touch_key(&rel_name, key);
        self.ops.push(Op::Delete {
            rel: rel_name,
            key: key.clone(),
        });
        Ok(())
    }

    /// `rel[key][attr] = value`.
    pub fn update_attr(
        &mut self,
        rel: &str,
        key: &Value,
        attr: &str,
        value: impl Into<Value>,
    ) -> Result<()> {
        let t = self.get(rel, key)?.ok_or_else(|| FdmError::Undefined {
            function: rel.to_string(),
            input: key.to_string(),
        })?;
        self.upsert(rel, key.clone(), t.with_attr(attr, value))
    }

    /// `rel[key][attr] op= ...` — read-modify-write of one attribute
    /// (the Fig. 11 `accounts[42]['balance'] -= 100`).
    pub fn modify_attr(
        &mut self,
        rel: &str,
        key: &Value,
        attr: &str,
        f: impl FnOnce(&Value) -> Result<Value>,
    ) -> Result<()> {
        let old = self.get_attr(rel, key, attr)?;
        let new = f(&old)?;
        self.update_attr(rel, key, attr, new)
    }

    /// Auto-id insert; returns the assigned key.
    pub fn add(&mut self, rel: &str, tuple: TupleF) -> Result<Value> {
        let r = self.working.relation(rel)?;
        let (_, key) = r.insert_auto(tuple.clone())?;
        self.upsert(rel, key.clone(), tuple)?;
        Ok(key)
    }

    /// `DB(name) := f` — whole-entry assignment (in-place FQL, §4.4).
    /// Conflicts with *any* concurrent write touching `name`.
    pub fn assign(&mut self, name: &str, f: impl Into<FnValue>) -> Result<()> {
        let fv = f.into();
        self.working = self.working.with_entry(name, fv.clone());
        let n = Name::from(name);
        self.writes.touch_entry(&n);
        self.ops.push(Op::Assign { name: n, value: fv });
        Ok(())
    }

    /// Removes a whole entry.
    pub fn drop_entry(&mut self, name: &str) -> Result<()> {
        self.working = self.working.without_entry(name)?;
        let n = Name::from(name);
        self.writes.touch_entry(&n);
        self.ops.push(Op::Drop { name: n });
        Ok(())
    }

    /// Number of recorded write operations.
    pub fn write_count(&self) -> usize {
        self.ops.len()
    }

    /// Abandons the transaction; the committed database is untouched
    /// (trivially so — the working copy was private all along).
    pub fn rollback(mut self) {
        self.finished = true;
    }

    /// Validates and commits under the store's default [`CommitPolicy`].
    /// On success returns the new version.
    ///
    /// Read-only transactions commit without touching the root.
    pub fn commit(self) -> Result<Version> {
        let policy = self.store.policy().clone();
        self.commit_with(&policy).map(|o| o.version)
    }

    /// Validates and commits under an explicit [`CommitPolicy`],
    /// reporting a structured [`CommitOutcome`].
    ///
    /// Each attempt revalidates the write set against everything
    /// committed since the snapshot. Two failure classes are treated
    /// differently:
    ///
    /// * **Transient** losses — a CAS race lost to a concurrent
    ///   committer whose writes were *disjoint* from ours, or an injected
    ///   fault — are replayed automatically: the policy's seeded backoff
    ///   paces up to `max_attempts` revalidate-and-install rounds, and
    ///   the survived races are reported in
    ///   [`CommitOutcome::conflicts`]. Exhausting the budget yields
    ///   [`FdmError::TransactionRetriesExhausted`]; exceeding
    ///   `policy.timeout` yields [`FdmError::TransactionTimeout`].
    /// * **Genuine** write-write conflicts — another commit since our
    ///   snapshot touched the same `(relation, key)` — are terminal:
    ///   [`FdmError::TransactionConflict`] carries the conflicting keys
    ///   and is returned on the *first* detection, never retried.
    ///   Recorded operations hold final values (a read-modify-write's
    ///   result, not its delta), so blindly replaying them over the
    ///   other committer's version would silently lose its update. The
    ///   safe retry is to re-derive the writes from a fresh snapshot —
    ///   [`Store::run_with`] does exactly that.
    pub fn commit_with(mut self, policy: &CommitPolicy) -> Result<CommitOutcome> {
        self.finished = true;
        if self.writes.is_empty() {
            return Ok(CommitOutcome {
                version: self.base_version,
                attempts: 0,
                conflicts: Vec::new(),
            });
        }
        // Durable stores encode the writeset for the WAL *before* the
        // CAS loop: an unserializable write (e.g. a closure-valued
        // assign) must fail the commit before anything installs.
        let wal_payload = self.store.encode_for_wal(&self.ops)?;
        let start = Instant::now();
        let mut backoff = policy.backoff();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempts = 0usize;
        let mut conflicts: Vec<(String, String)> = Vec::new();
        loop {
            attempts += 1;
            let current = self.store.root.load();

            // Injected fault: pretend this attempt lost a transient race.
            #[cfg(any(test, feature = "fault-injection"))]
            if self.store.fault_take_conflict(current.version) {
                conflicts.push(("<injected>".to_string(), format!("v{}", current.version)));
                self.pace(policy, &mut backoff, attempts, max_attempts, start)?;
                continue;
            }

            // Validate against commits after our snapshot. Genuine
            // overlaps are terminal (see above); the log lock is scoped
            // so it is never held across replay or install.
            if current.version != self.base_version {
                let log = self.store.log.lock();
                let oldest = log.first().map(|(v, _)| *v).unwrap_or(current.version);
                if self.base_version + 1 < oldest {
                    return Err(FdmError::TransactionConflict {
                        detail: format!(
                            "snapshot v{} is older than the retained commit log (oldest v{oldest})",
                            self.base_version
                        ),
                        keys: Vec::new(),
                    });
                }
                for (v, ws) in log.iter() {
                    if *v > self.base_version && self.writes.conflicts_with(ws) {
                        return Err(FdmError::TransactionConflict {
                            detail: format!(
                                "write-write conflict with commit v{v} on {}",
                                self.writes.describe_overlap(ws)
                            ),
                            keys: self.writes.conflict_keys(ws),
                        });
                    }
                }
            }

            // Injected fault: validation "sees" a conflict storm — every
            // attempt at this version loses, so bounded budgets exhaust.
            #[cfg(any(test, feature = "fault-injection"))]
            if self.store.fault_poisoned(current.version) {
                conflicts.push(("<poisoned>".to_string(), format!("v{}", current.version)));
                self.pace(policy, &mut backoff, attempts, max_attempts, start)?;
                continue;
            }

            // Disjoint (or first): build the candidate root. The fast
            // path installs the working copy as-is; the merge path
            // replays our recorded ops onto the newest root.
            let candidate = if current.version == self.base_version {
                self.working.clone()
            } else {
                self.replay_onto(&current.value)?
            };

            // Injected fault: widen the validate→install race window.
            #[cfg(any(test, feature = "fault-injection"))]
            self.store.fault_delay_before_cas(current.version);

            let installed = candidate.clone();
            match self.store.root.try_install(current.version, candidate) {
                Ok(v) => {
                    self.store.record_commit(
                        v,
                        self.writes.clone(),
                        &self.ops,
                        wal_payload.as_deref(),
                        installed,
                    )?;
                    return Ok(CommitOutcome {
                        version: v,
                        attempts,
                        conflicts,
                    });
                }
                Err(race) => {
                    // another commit landed between load and install —
                    // transient by definition; revalidate and retry
                    conflicts.push((
                        "<cas>".to_string(),
                        format!("v{}->v{}", race.expected, race.found),
                    ));
                    self.pace(policy, &mut backoff, attempts, max_attempts, start)?;
                }
            }
        }
    }

    /// Between-attempt bookkeeping for transient losses: errors out when
    /// the attempt or wall-clock budget is spent, otherwise sleeps the
    /// next backoff delay.
    fn pace(
        &self,
        policy: &CommitPolicy,
        backoff: &mut fdm_storage::Backoff,
        attempts: usize,
        max_attempts: usize,
        start: Instant,
    ) -> Result<()> {
        if attempts >= max_attempts {
            return Err(FdmError::TransactionRetriesExhausted {
                attempts,
                detail: format!(
                    "transient commit conflicts persisted at v{}",
                    self.store.version()
                ),
            });
        }
        if let Some(t) = policy.timeout {
            if start.elapsed() >= t {
                return Err(FdmError::TransactionTimeout {
                    attempts,
                    elapsed_ms: start.elapsed().as_millis() as u64,
                });
            }
        }
        backoff.sleep_next();
        Ok(())
    }

    fn replay_onto(&self, base: &DatabaseF) -> Result<DatabaseF> {
        crate::writeset::apply_ops(base, &self.ops)
    }

    /// Decomposes the transaction into its commit ingredients — the
    /// batch committer's entry point ([`crate::batch`]); the transaction
    /// is consumed, exactly like `commit`.
    pub(crate) fn into_parts(self) -> (Version, WriteSet, Vec<Op>) {
        (self.base_version, self.writes, self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use fdm_core::RelationF;

    fn bank() -> Arc<Store> {
        let accounts = RelationF::new("accounts", &["id"])
            .insert(
                Value::Int(42),
                TupleF::builder("a").attr("balance", 1000).build(),
            )
            .unwrap()
            .insert(
                Value::Int(84),
                TupleF::builder("a").attr("balance", 500).build(),
            )
            .unwrap();
        Store::new(DatabaseF::new("bank").with_relation(accounts))
    }

    fn balance(db: &DatabaseF, id: i64) -> i64 {
        db.relation("accounts")
            .unwrap()
            .lookup(&Value::Int(id))
            .unwrap()
            .get("balance")
            .unwrap()
            .as_int("balance")
            .unwrap()
    }

    #[test]
    fn fig11_transfer() {
        let store = bank();
        let mut txn = store.begin();
        txn.modify_attr("accounts", &Value::Int(42), "balance", |v| {
            v.sub(&Value::Int(100))
        })
        .unwrap();
        txn.modify_attr("accounts", &Value::Int(84), "balance", |v| {
            v.add(&Value::Int(100))
        })
        .unwrap();
        // before commit, the store sees nothing
        assert_eq!(balance(&store.snapshot(), 42), 1000);
        txn.commit().unwrap();
        let db = store.snapshot();
        assert_eq!(balance(&db, 42), 900);
        assert_eq!(balance(&db, 84), 600);
        assert_eq!(balance(&db, 42) + balance(&db, 84), 1500, "money conserved");
    }

    #[test]
    fn read_your_own_writes() {
        let store = bank();
        let mut txn = store.begin();
        txn.update_attr("accounts", &Value::Int(42), "balance", 7)
            .unwrap();
        assert_eq!(
            txn.get_attr("accounts", &Value::Int(42), "balance")
                .unwrap(),
            Value::Int(7)
        );
        txn.rollback();
        assert_eq!(balance(&store.snapshot(), 42), 1000, "rollback discards");
    }

    #[test]
    fn first_committer_wins_on_same_key() {
        let store = bank();
        let mut t1 = store.begin();
        let mut t2 = store.begin();
        t1.modify_attr("accounts", &Value::Int(42), "balance", |v| {
            v.sub(&Value::Int(10))
        })
        .unwrap();
        t2.modify_attr("accounts", &Value::Int(42), "balance", |v| {
            v.sub(&Value::Int(20))
        })
        .unwrap();
        t1.commit().unwrap();
        let err = t2.commit().unwrap_err();
        assert!(matches!(err, FdmError::TransactionConflict { .. }), "{err}");
        // the first committer's write survives; no lost update
        assert_eq!(balance(&store.snapshot(), 42), 990);
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let store = bank();
        let mut t1 = store.begin();
        let mut t2 = store.begin();
        t1.update_attr("accounts", &Value::Int(42), "balance", 1)
            .unwrap();
        t2.update_attr("accounts", &Value::Int(84), "balance", 2)
            .unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        let db = store.snapshot();
        assert_eq!(balance(&db, 42), 1);
        assert_eq!(balance(&db, 84), 2);
    }

    #[test]
    fn snapshot_isolation_reads_ignore_concurrent_commits() {
        let store = bank();
        let txn = store.begin();
        // someone else commits mid-flight
        store
            .upsert_one(
                "accounts",
                Value::Int(99),
                TupleF::builder("a").attr("balance", 1).build(),
            )
            .unwrap();
        // our snapshot does not see it
        assert!(txn.get("accounts", &Value::Int(99)).unwrap().is_none());
        assert_eq!(txn.db().relation("accounts").unwrap().len(), 2);
    }

    #[test]
    fn entry_assignment_conflicts_with_key_write() {
        let store = bank();
        let mut t1 = store.begin();
        let mut t2 = store.begin();
        t1.assign("accounts", RelationF::new("accounts", &["id"]))
            .unwrap();
        t2.update_attr("accounts", &Value::Int(42), "balance", 0)
            .unwrap();
        t1.commit().unwrap();
        let err = t2.commit().unwrap_err();
        assert!(matches!(err, FdmError::TransactionConflict { .. }));
        assert_eq!(store.snapshot().relation("accounts").unwrap().len(), 0);
    }

    #[test]
    fn read_only_txn_commits_trivially() {
        let store = bank();
        let txn = store.begin();
        let _ = txn.get("accounts", &Value::Int(42)).unwrap();
        let v = txn.commit().unwrap();
        assert_eq!(v, 0, "no version bump for read-only");
    }

    #[test]
    fn add_assigns_sequential_keys_and_conflicts() {
        let store = bank();
        let mut t1 = store.begin();
        let mut t2 = store.begin();
        let k1 = t1
            .add("accounts", TupleF::builder("a").attr("balance", 0).build())
            .unwrap();
        let k2 = t2
            .add("accounts", TupleF::builder("a").attr("balance", 0).build())
            .unwrap();
        assert_eq!(k1, Value::Int(85));
        assert_eq!(
            k2,
            Value::Int(85),
            "both reserved the same id from the same snapshot"
        );
        t1.commit().unwrap();
        assert!(
            t2.commit().is_err(),
            "auto-id collision is a write-write conflict"
        );
    }

    #[test]
    fn delete_in_txn() {
        let store = bank();
        let mut txn = store.begin();
        txn.delete("accounts", &Value::Int(84)).unwrap();
        txn.commit().unwrap();
        assert_eq!(store.snapshot().relation("accounts").unwrap().len(), 1);
    }

    #[test]
    fn drop_entry_in_txn() {
        let store = bank();
        let mut txn = store.begin();
        txn.drop_entry("accounts").unwrap();
        txn.commit().unwrap();
        assert!(!store.snapshot().contains("accounts"));
    }
}
