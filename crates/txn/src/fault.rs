//! Fault injection for the commit path.
//!
//! Degradation paths — lost CAS races, conflict storms, stalls between
//! validation and install — are exactly the code that never runs in clean
//! unit tests. A [`FaultPlan`] installed on a [`crate::Store`] forces them
//! at chosen version numbers, so retry/backoff discipline and isolation
//! invariants are testable as first-class behavior instead of hoping the
//! scheduler produces the interleaving.
//!
//! The whole module is compiled only under `cfg(any(test, feature =
//! "fault-injection"))`: production builds carry zero fault-plan code, and
//! the hooks in [`crate::Transaction::commit_with`] disappear with it.
//!
//! Three fault kinds, all keyed on the *current committed version* a
//! commit attempt observes:
//!
//! * **Forced conflict** (`force_conflict_at`) — the attempt is treated as
//!   having lost a transient CAS race. Consumed once per registered
//!   version, so a retrying commit succeeds on a later attempt; a commit
//!   without retries surfaces the conflict. This is the scenario the old
//!   code failed: an immediate raw error where one retry would have won.
//! * **Delay before CAS** (`delay_before_cas_at`) — the attempt sleeps
//!   between validation and install, widening the race window so real
//!   contenders land in between. Sticky (fires every time the version
//!   matches).
//! * **Poisoned write set** (`poison_writeset_at`) — validation treats the
//!   transaction's write set as conflicting, and keeps doing so (sticky).
//!   With no concurrent committers the version never advances, so a
//!   bounded policy must exhaust its retries and return
//!   `TransactionRetriesExhausted` — the degradation path under a
//!   conflict storm.

use fdm_storage::Version;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A set of faults to inject into a store's commit path.
///
/// Construct with [`FaultPlan::new`], register faults with the `*_at`
/// methods, install with `Store::install_fault_plan`, and read the
/// injection counters afterwards to assert the faults actually fired.
///
/// # Examples
///
/// ```
/// use fdm_txn::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new();
/// plan.force_conflict_at(0);
/// plan.delay_before_cas_at(2, Duration::from_micros(50));
/// assert_eq!(plan.injected_conflicts(), 0);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    conflicts: Mutex<BTreeSet<Version>>,
    delays: Mutex<BTreeMap<Version, Duration>>,
    poisons: Mutex<BTreeSet<Version>>,
    injected_conflicts: AtomicUsize,
    injected_delays: AtomicUsize,
    injected_poisons: AtomicUsize,
}

impl FaultPlan {
    /// Creates an empty plan (shared handle — the store keeps a clone).
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Force one transient conflict on the first commit attempt that
    /// observes current version `v` (consumed once).
    pub fn force_conflict_at(&self, v: Version) {
        self.conflicts.lock().insert(v);
    }

    /// Sleep `delay` before the CAS on every commit attempt that observes
    /// current version `v` (sticky).
    pub fn delay_before_cas_at(&self, v: Version, delay: Duration) {
        self.delays.lock().insert(v, delay);
    }

    /// Treat every write set validated at current version `v` as
    /// conflicting (sticky): bounded retries must exhaust.
    pub fn poison_writeset_at(&self, v: Version) {
        self.poisons.lock().insert(v);
    }

    /// Number of forced conflicts that actually fired.
    pub fn injected_conflicts(&self) -> usize {
        self.injected_conflicts.load(Ordering::Relaxed)
    }

    /// Number of pre-CAS delays that actually fired.
    pub fn injected_delays(&self) -> usize {
        self.injected_delays.load(Ordering::Relaxed)
    }

    /// Number of poisoned-write-set validations that actually fired.
    pub fn injected_poisons(&self) -> usize {
        self.injected_poisons.load(Ordering::Relaxed)
    }

    pub(crate) fn take_conflict(&self, v: Version) -> bool {
        let fired = self.conflicts.lock().remove(&v);
        if fired {
            self.injected_conflicts.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    pub(crate) fn delay_for(&self, v: Version) -> Option<Duration> {
        let d = self.delays.lock().get(&v).copied();
        if d.is_some() {
            self.injected_delays.fetch_add(1, Ordering::Relaxed);
        }
        d
    }

    pub(crate) fn poisoned(&self, v: Version) -> bool {
        let hit = self.poisons.lock().contains(&v);
        if hit {
            self.injected_poisons.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicts_are_consumed_once_per_version() {
        let plan = FaultPlan::new();
        plan.force_conflict_at(3);
        plan.force_conflict_at(5);
        assert!(!plan.take_conflict(4));
        assert!(plan.take_conflict(3));
        assert!(!plan.take_conflict(3), "consumed");
        assert!(plan.take_conflict(5));
        assert_eq!(plan.injected_conflicts(), 2);
    }

    #[test]
    fn delays_and_poisons_are_sticky() {
        let plan = FaultPlan::new();
        plan.delay_before_cas_at(1, Duration::from_micros(5));
        plan.poison_writeset_at(2);
        assert_eq!(plan.delay_for(1), Some(Duration::from_micros(5)));
        assert_eq!(plan.delay_for(1), Some(Duration::from_micros(5)));
        assert_eq!(plan.delay_for(0), None);
        assert!(plan.poisoned(2));
        assert!(plan.poisoned(2));
        assert!(!plan.poisoned(1));
        assert_eq!(plan.injected_delays(), 2);
        assert_eq!(plan.injected_poisons(), 2);
    }
}
