//! Write batching: coalescing compatible small commits into one CAS
//! install and one WAL append.
//!
//! The serving workload is dominated by tiny transactions (a single
//! read-modify-write of one tuple). Committed one at a time, each pays a
//! full CAS round on the versioned root, a commit-log insertion, a
//! history record, and — on a durable store — its own WAL append and,
//! under [`SyncPolicy::Always`](fdm_durability::SyncPolicy), its own
//! fsync. [`Store::commit_batch`] amortizes all of that: a *group* of
//! transactions whose write sets are pairwise disjoint is validated,
//! replayed onto the current root in submission order, and installed as
//! **one** version with **one** WAL append — so an fsync-per-commit
//! store pays one fsync per group (group commit at the transaction
//! layer, stacking with the WAL's own group commit underneath).
//!
//! # Conflict semantics are unchanged
//!
//! Batching never widens or narrows what commits:
//!
//! * A member whose write set overlaps a commit made since its snapshot
//!   fails with exactly the [`FdmError::TransactionConflict`] the
//!   one-at-a-time path raises — first committer wins, validated against
//!   the same commit log at flush time.
//! * A member whose write set overlaps an **earlier member of the same
//!   batch** also fails with `TransactionConflict`: submitted one at a
//!   time, the earlier transaction would have committed first and the
//!   later one would have lost validation against it. The earlier member
//!   wins, exactly as sequential submission orders them.
//! * Read-only members commit trivially (no version bump), as ever.
//!
//! What *does* change is version arithmetic: a flushed group installs
//! one version for all its members, where sequential submission would
//! install one per transaction. Every member's [`CommitOutcome`] carries
//! that shared version. The serving-equivalence suite pins the semantic
//! bar: the database a batched store reaches at each group boundary is
//! byte-identical to the one-at-a-time store at the matching operation
//! prefix.

use crate::store::{CommitOutcome, CommitPolicy, Store};
use crate::txn::Transaction;
use crate::writeset::{apply_ops, Op, WriteSet};
use fdm_core::{FdmError, Result};
use std::sync::Arc;
use std::time::Instant;

/// How aggressively [`Store::commit_batch`] coalesces.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Maximum transactions folded into one installed version; a full
    /// group flushes and the next transaction starts a new one.
    pub max_txns: usize,
    /// Maximum recorded operations per installed version — bounds the
    /// single WAL record a group becomes (the WAL enforces a hard
    /// payload ceiling; keep groups well under it).
    pub max_ops: usize,
    /// CAS retry policy for each group's install, same semantics as a
    /// single commit's [`CommitPolicy`].
    pub commit: CommitPolicy,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_txns: 64,
            max_ops: 4096,
            commit: CommitPolicy::default(),
        }
    }
}

impl BatchPolicy {
    /// A policy that flushes after at most `n` transactions.
    pub fn with_max_txns(mut self, n: usize) -> Self {
        self.max_txns = n.max(1);
        self
    }

    /// Overrides the group-install commit policy.
    pub fn with_commit(mut self, policy: CommitPolicy) -> Self {
        self.commit = policy;
        self
    }
}

/// One submitted transaction, decomposed and awaiting its group flush.
struct Member {
    index: usize,
    base_version: fdm_storage::Version,
    writes: WriteSet,
    ops: Vec<Op>,
}

impl Store {
    /// Commits `txns` in submission order, coalescing compatible runs
    /// into single installed versions (see the module docs). Returns one
    /// result per transaction, in submission order.
    pub fn commit_batch(
        self: &Arc<Self>,
        txns: Vec<Transaction>,
        policy: &BatchPolicy,
    ) -> Vec<Result<CommitOutcome>> {
        let n = txns.len();
        let mut outcomes: Vec<Option<Result<CommitOutcome>>> = (0..n).map(|_| None).collect();
        let mut group: Vec<Member> = Vec::new();
        let mut group_ops = 0usize;
        for (index, txn) in txns.into_iter().enumerate() {
            let (base_version, writes, ops) = txn.into_parts();
            if writes.is_empty() {
                // read-only: commits trivially at its own snapshot, no
                // version bump — identical to Transaction::commit_with
                outcomes[index] = Some(Ok(CommitOutcome {
                    version: base_version,
                    attempts: 0,
                    conflicts: Vec::new(),
                }));
                continue;
            }
            // first-committer-wins *inside* the batch: an overlap with an
            // earlier member is the conflict sequential submission would
            // have raised after that member committed
            if let Some(winner) = group.iter().find(|m| m.writes.conflicts_with(&writes)) {
                outcomes[index] = Some(Err(FdmError::TransactionConflict {
                    detail: format!(
                        "write-write conflict with batched transaction #{} on {}",
                        winner.index,
                        writes.describe_overlap(&winner.writes)
                    ),
                    keys: writes.conflict_keys(&winner.writes),
                }));
                continue;
            }
            if group.len() >= policy.max_txns.max(1)
                || (!group.is_empty() && group_ops + ops.len() > policy.max_ops.max(1))
            {
                self.flush_group(&mut group, policy, &mut outcomes);
                group_ops = 0;
            }
            group_ops += ops.len();
            group.push(Member {
                index,
                base_version,
                writes,
                ops,
            });
        }
        self.flush_group(&mut group, policy, &mut outcomes);
        outcomes
            .into_iter()
            .map(|o| o.expect("every transaction got a result"))
            .collect()
    }

    /// Validates, replays, and installs one group as a single version
    /// with a single WAL append. Members that fail validation are
    /// dropped from the group (their error recorded) without failing the
    /// rest.
    fn flush_group(
        self: &Arc<Self>,
        group: &mut Vec<Member>,
        policy: &BatchPolicy,
        outcomes: &mut [Option<Result<CommitOutcome>>],
    ) {
        let mut members = std::mem::take(group);
        if members.is_empty() {
            return;
        }
        let start = Instant::now();
        let mut backoff = policy.commit.backoff();
        let max_attempts = policy.commit.max_attempts.max(1);
        let mut attempts = 0usize;
        let mut conflicts: Vec<(String, String)> = Vec::new();
        loop {
            attempts += 1;
            let current = self.root.load();

            // Per-member validation against commits since that member's
            // snapshot — the same first-committer-wins check the single
            // commit path runs, genuine overlaps terminal per member.
            {
                let log = self.log.lock();
                members.retain(|m| {
                    if current.version == m.base_version {
                        return true;
                    }
                    let oldest = log.first().map(|(v, _)| *v).unwrap_or(current.version);
                    if m.base_version + 1 < oldest {
                        outcomes[m.index] = Some(Err(FdmError::TransactionConflict {
                            detail: format!(
                                "snapshot v{} is older than the retained commit log (oldest v{oldest})",
                                m.base_version
                            ),
                            keys: Vec::new(),
                        }));
                        return false;
                    }
                    for (v, ws) in log.iter() {
                        if *v > m.base_version && m.writes.conflicts_with(ws) {
                            outcomes[m.index] = Some(Err(FdmError::TransactionConflict {
                                detail: format!(
                                    "write-write conflict with commit v{v} on {}",
                                    m.writes.describe_overlap(ws)
                                ),
                                keys: m.writes.conflict_keys(ws),
                            }));
                            return false;
                        }
                    }
                    true
                });
            }
            if members.is_empty() {
                return;
            }

            // One candidate root: every surviving member's ops replayed
            // in submission order (disjoint write sets — order within
            // the group cannot change the result, but determinism is
            // free). One WAL payload for the whole group.
            let all_ops: Vec<Op> = members.iter().flat_map(|m| m.ops.iter().cloned()).collect();
            let wal_payload = match self.encode_for_wal(&all_ops) {
                Ok(p) => p,
                Err(e) => {
                    for m in &members {
                        outcomes[m.index] = Some(Err(e.clone()));
                    }
                    return;
                }
            };
            let candidate = match apply_ops(&current.value, &all_ops) {
                Ok(db) => db,
                Err(e) => {
                    for m in &members {
                        outcomes[m.index] = Some(Err(e.clone()));
                    }
                    return;
                }
            };

            let installed = candidate.clone();
            match self.root.try_install(current.version, candidate) {
                Ok(v) => {
                    let mut writes = WriteSet::default();
                    for m in &members {
                        writes.merge(&m.writes);
                    }
                    let recorded =
                        self.record_commit(v, writes, &all_ops, wal_payload.as_deref(), installed);
                    for m in &members {
                        outcomes[m.index] = Some(match &recorded {
                            Ok(()) => Ok(CommitOutcome {
                                version: v,
                                attempts,
                                conflicts: conflicts.clone(),
                            }),
                            Err(e) => Err(e.clone()),
                        });
                    }
                    return;
                }
                Err(race) => {
                    // a non-batched commit landed between load and
                    // install — transient; revalidate the group and retry
                    conflicts.push((
                        "<cas>".to_string(),
                        format!("v{}->v{}", race.expected, race.found),
                    ));
                    if let Err(e) =
                        self.pace_batch(policy, &mut backoff, attempts, max_attempts, start)
                    {
                        for m in &members {
                            outcomes[m.index] = Some(Err(e.clone()));
                        }
                        return;
                    }
                }
            }
        }
    }

    fn pace_batch(
        &self,
        policy: &BatchPolicy,
        backoff: &mut fdm_storage::Backoff,
        attempts: usize,
        max_attempts: usize,
        start: Instant,
    ) -> Result<()> {
        if attempts >= max_attempts {
            return Err(FdmError::TransactionRetriesExhausted {
                attempts,
                detail: format!(
                    "transient batch-commit conflicts persisted at v{}",
                    self.version()
                ),
            });
        }
        if let Some(t) = policy.commit.timeout {
            if start.elapsed() >= t {
                return Err(FdmError::TransactionTimeout {
                    attempts,
                    elapsed_ms: start.elapsed().as_millis() as u64,
                });
            }
        }
        backoff.sleep_next();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm_core::{DatabaseF, RelationF, TupleF, Value};

    fn bank(n: i64) -> Arc<Store> {
        let mut accounts = RelationF::new("accounts", &["id"]);
        for i in 1..=n {
            accounts = accounts
                .insert(
                    Value::Int(i),
                    TupleF::builder("a").attr("balance", 100 * i).build(),
                )
                .unwrap();
        }
        Store::new(DatabaseF::new("bank").with_relation(accounts))
    }

    fn balance(store: &Arc<Store>, id: i64) -> i64 {
        store
            .snapshot()
            .relation("accounts")
            .unwrap()
            .lookup(&Value::Int(id))
            .unwrap()
            .get("balance")
            .unwrap()
            .as_int("balance")
            .unwrap()
    }

    #[test]
    fn disjoint_batch_installs_one_version() {
        let store = bank(8);
        let mut txns = Vec::new();
        for i in 1..=8 {
            let mut t = store.begin();
            t.update_attr("accounts", &Value::Int(i), "balance", i)
                .unwrap();
            txns.push(t);
        }
        let before = store.version();
        let outcomes = store.commit_batch(txns, &BatchPolicy::default());
        assert_eq!(store.version(), before + 1, "one CAS install for the group");
        for (i, o) in outcomes.iter().enumerate() {
            let o = o.as_ref().unwrap();
            assert_eq!(o.version, before + 1, "member {i} shares the group version");
        }
        for i in 1..=8 {
            assert_eq!(balance(&store, i), i);
        }
    }

    #[test]
    fn in_batch_overlap_is_first_committer_wins() {
        let store = bank(2);
        let mut a = store.begin();
        a.update_attr("accounts", &Value::Int(1), "balance", 1)
            .unwrap();
        let mut b = store.begin();
        b.update_attr("accounts", &Value::Int(1), "balance", 2)
            .unwrap();
        let outcomes = store.commit_batch(vec![a, b], &BatchPolicy::default());
        assert!(outcomes[0].is_ok());
        assert!(
            matches!(outcomes[1], Err(FdmError::TransactionConflict { .. })),
            "later member loses, exactly like sequential submission"
        );
        assert_eq!(balance(&store, 1), 1, "first submitted write survives");
    }

    #[test]
    fn conflict_with_prior_commit_is_terminal() {
        let store = bank(2);
        let mut stale = store.begin();
        stale
            .update_attr("accounts", &Value::Int(1), "balance", 7)
            .unwrap();
        // someone else commits the same key first
        store
            .upsert_one(
                "accounts",
                Value::Int(1),
                TupleF::builder("a").attr("balance", 999).build(),
            )
            .unwrap();
        let outcomes = store.commit_batch(vec![stale], &BatchPolicy::default());
        assert!(matches!(
            outcomes[0],
            Err(FdmError::TransactionConflict { .. })
        ));
        assert_eq!(balance(&store, 1), 999, "first committer wins");
    }

    #[test]
    fn read_only_members_commit_trivially() {
        let store = bank(2);
        let ro = store.begin();
        let mut rw = store.begin();
        rw.update_attr("accounts", &Value::Int(2), "balance", 5)
            .unwrap();
        let outcomes = store.commit_batch(vec![ro, rw], &BatchPolicy::default());
        let ro = outcomes[0].as_ref().unwrap();
        assert_eq!((ro.version, ro.attempts), (0, 0));
        assert_eq!(outcomes[1].as_ref().unwrap().version, 1);
    }

    #[test]
    fn max_txns_splits_groups() {
        let store = bank(6);
        let mut txns = Vec::new();
        for i in 1..=6 {
            let mut t = store.begin();
            t.update_attr("accounts", &Value::Int(i), "balance", 0)
                .unwrap();
            txns.push(t);
        }
        let policy = BatchPolicy::default().with_max_txns(2);
        let outcomes = store.commit_batch(txns, &policy);
        assert_eq!(store.version(), 3, "six txns in groups of two");
        let versions: Vec<_> = outcomes
            .iter()
            .map(|o| o.as_ref().unwrap().version)
            .collect();
        assert_eq!(versions, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn batched_final_state_matches_sequential() {
        // the unit-level differential oracle; the integration suite
        // replays full Zipf streams through the same comparison
        let mk_txns = |store: &Arc<Store>| {
            (1..=5)
                .map(|i| {
                    let mut t = store.begin();
                    t.update_attr("accounts", &Value::Int(i), "balance", i * 7)
                        .unwrap();
                    t
                })
                .collect::<Vec<_>>()
        };
        let batched = bank(5);
        let outcomes = batched.commit_batch(mk_txns(&batched), &BatchPolicy::default());
        assert!(outcomes.iter().all(Result::is_ok));

        let sequential = bank(5);
        for t in mk_txns(&sequential) {
            t.commit().unwrap();
        }
        for i in 1..=5 {
            assert_eq!(balance(&batched, i), balance(&sequential, i));
        }
        assert_eq!(batched.version(), 1);
        assert_eq!(sequential.version(), 5);
    }
}
