//! Concurrency stress tests for snapshot isolation: many threads, real
//! interleavings, invariants checked at the end.

use fdm_core::{DatabaseF, FdmError, RelationF, TupleF, Value};
use fdm_txn::Store;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn bank(n_accounts: i64, initial: i64) -> Arc<Store> {
    let mut accounts = RelationF::new("accounts", &["id"]);
    for id in 0..n_accounts {
        accounts = accounts
            .insert(
                Value::Int(id),
                TupleF::builder("a").attr("balance", initial).build(),
            )
            .unwrap();
    }
    Store::new(DatabaseF::new("bank").with_relation(accounts))
}

fn total(store: &Store) -> i64 {
    store
        .snapshot()
        .relation("accounts")
        .unwrap()
        .tuples()
        .unwrap()
        .iter()
        .map(|(_, t)| t.get("balance").unwrap().as_int("b").unwrap())
        .sum()
}

#[test]
fn concurrent_transfers_conserve_money() {
    const ACCOUNTS: i64 = 16;
    const INITIAL: i64 = 1_000;
    const THREADS: usize = 8;
    const TRANSFERS_PER_THREAD: usize = 50;

    let store = bank(ACCOUNTS, INITIAL);
    let committed = Arc::new(AtomicUsize::new(0));
    let conflicted = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let store = Arc::clone(&store);
            let committed = Arc::clone(&committed);
            let conflicted = Arc::clone(&conflicted);
            s.spawn(move || {
                // deterministic pseudo-random account pairs per thread
                let mut x = (tid as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let mut next = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = (next() % ACCOUNTS as u64) as i64;
                    let mut to = (next() % ACCOUNTS as u64) as i64;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = 1 + (next() % 10) as i64;
                    let mut txn = store.begin();
                    let r = txn
                        .modify_attr("accounts", &Value::Int(from), "balance", |v| {
                            v.sub(&Value::Int(amount))
                        })
                        .and_then(|_| {
                            txn.modify_attr("accounts", &Value::Int(to), "balance", |v| {
                                v.add(&Value::Int(amount))
                            })
                        });
                    assert!(r.is_ok(), "statement errors should not happen: {r:?}");
                    match txn.commit() {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        // genuine first-committer-wins loss, or (rare) a
                        // bounded retry budget spent on CAS races — either
                        // way nothing was installed
                        Err(FdmError::TransactionConflict { .. })
                        | Err(FdmError::TransactionRetriesExhausted { .. }) => {
                            conflicted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected commit error: {e}"),
                    }
                }
            });
        }
    });

    let committed = committed.load(Ordering::Relaxed);
    let conflicted = conflicted.load(Ordering::Relaxed);
    assert_eq!(committed + conflicted, THREADS * TRANSFERS_PER_THREAD);
    assert!(committed > 0, "some transfers must succeed");
    // The invariant: no lost updates, no partial transfers.
    assert_eq!(total(&store), ACCOUNTS * INITIAL, "money conserved exactly");
    assert_eq!(
        store.version() as usize,
        committed,
        "one version per commit"
    );
}

#[test]
fn concurrent_disjoint_inserts_all_commit() {
    let store = bank(1, 0);
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // explicit disjoint keys per thread: no conflicts
                    let key = Value::Int(1000 + (tid * PER_THREAD + i) as i64);
                    let mut attempt = 0;
                    loop {
                        let mut txn = store.begin();
                        txn.upsert(
                            "accounts",
                            key.clone(),
                            TupleF::builder("a").attr("balance", 1).build(),
                        )
                        .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(FdmError::TransactionConflict { .. })
                            | Err(FdmError::TransactionRetriesExhausted { .. }) => {
                                attempt += 1;
                                assert!(attempt < 100, "disjoint keys must eventually merge");
                            }
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        store.snapshot().relation("accounts").unwrap().len(),
        1 + THREADS * PER_THREAD
    );
}

#[test]
fn readers_never_block_and_see_consistent_states() {
    let store = bank(2, 100);
    let stop = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        // writer: transfers between the two accounts
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for _ in 0..200 {
                    let _ = store.autocommit(10, |txn| {
                        txn.modify_attr("accounts", &Value::Int(0), "balance", |v| {
                            v.sub(&Value::Int(1))
                        })?;
                        txn.modify_attr("accounts", &Value::Int(1), "balance", |v| {
                            v.add(&Value::Int(1))
                        })?;
                        Ok(())
                    });
                }
                stop.store(1, Ordering::Release);
            });
        }
        // readers: every snapshot must show the invariant intact
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while stop.load(Ordering::Acquire) == 0 {
                    let db = store.snapshot();
                    let rel = db.relation("accounts").unwrap();
                    let a = rel
                        .lookup(&Value::Int(0))
                        .unwrap()
                        .get("balance")
                        .unwrap()
                        .as_int("b")
                        .unwrap();
                    let b = rel
                        .lookup(&Value::Int(1))
                        .unwrap()
                        .get("balance")
                        .unwrap()
                        .as_int("b")
                        .unwrap();
                    assert_eq!(a + b, 200, "no torn reads under snapshot isolation");
                }
            });
        }
    });
    assert_eq!(total(&store), 200);
}
