//! The scalar-function library and its **user-extensible registry**
//! (paper contribution 8: "Extending the FQL is as loading a library in
//! Python through an import-statement" — functions defined outside the
//! realm of the database are first-class in queries).
//!
//! Textual predicates may call any registered function:
//! `filter("len(name) > 4 and upper(state) == 'NY'", ...)`. The default
//! registry ships the built-ins below; applications register their own
//! with [`Registry::register`] — no engine changes needed.

use crate::error::ExprError;
use fdm_core::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A scalar function callable from expressions.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value, ExprError> + Send + Sync>;

/// A registry of named scalar functions.
///
/// # Examples
///
/// ```
/// use fdm_expr::funcs::Registry;
/// use fdm_core::Value;
///
/// let mut reg = Registry::with_builtins();
/// reg.register("double", 1, |args| {
///     args[0].mul(&Value::Int(2)).map_err(|e| fdm_expr::ExprError::Eval { message: e.to_string() })
/// });
/// assert!(reg.get("double").is_some());
/// assert!(reg.get("upper").is_some(), "builtins present");
/// ```
#[derive(Clone, Default)]
pub struct Registry {
    fns: BTreeMap<String, (usize, ScalarFn)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry pre-loaded with the built-in function library.
    pub fn with_builtins() -> Self {
        let mut r = Registry::new();
        r.register("upper", 1, |args| {
            Ok(Value::str(str_arg(args, 0, "upper")?.to_uppercase()))
        });
        r.register("lower", 1, |args| {
            Ok(Value::str(str_arg(args, 0, "lower")?.to_lowercase()))
        });
        r.register("len", 1, |args| {
            Ok(Value::Int(str_arg(args, 0, "len")?.chars().count() as i64))
        });
        r.register("trim", 1, |args| {
            Ok(Value::str(str_arg(args, 0, "trim")?.trim()))
        });
        r.register("contains", 2, |args| {
            Ok(Value::Bool(
                str_arg(args, 0, "contains")?.contains(str_arg(args, 1, "contains")?),
            ))
        });
        r.register("starts_with", 2, |args| {
            Ok(Value::Bool(
                str_arg(args, 0, "starts_with")?.starts_with(str_arg(args, 1, "starts_with")?),
            ))
        });
        r.register("ends_with", 2, |args| {
            Ok(Value::Bool(
                str_arg(args, 0, "ends_with")?.ends_with(str_arg(args, 1, "ends_with")?),
            ))
        });
        r.register("concat", 2, |args| {
            let mut s = String::new();
            s.push_str(str_arg(args, 0, "concat")?);
            s.push_str(str_arg(args, 1, "concat")?);
            Ok(Value::str(s))
        });
        r.register("abs", 1, |args| match &args[0] {
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Float(x) => Ok(Value::Float(x.abs())),
            other => Err(ExprError::eval(format!(
                "abs: expected a number, got {}",
                other.value_type()
            ))),
        });
        r.register("min2", 2, |args| {
            Ok(if args[0] <= args[1] {
                args[0].clone()
            } else {
                args[1].clone()
            })
        });
        r.register("max2", 2, |args| {
            Ok(if args[0] >= args[1] {
                args[0].clone()
            } else {
                args[1].clone()
            })
        });
        r.register("round", 1, |args| match &args[0] {
            Value::Float(x) => Ok(Value::Int(x.round() as i64)),
            Value::Int(i) => Ok(Value::Int(*i)),
            other => Err(ExprError::eval(format!(
                "round: expected a number, got {}",
                other.value_type()
            ))),
        });
        r
    }

    /// Registers (or replaces) a function with a fixed arity.
    pub fn register(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&[Value]) -> Result<Value, ExprError> + Send + Sync + 'static,
    ) {
        self.fns.insert(name.to_string(), (arity, Arc::new(f)));
    }

    /// Looks a function up.
    pub fn get(&self, name: &str) -> Option<&(usize, ScalarFn)> {
        self.fns.get(name)
    }

    /// Calls a registered function with arity checking.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, ExprError> {
        let (arity, f) = self
            .get(name)
            .ok_or_else(|| ExprError::eval(format!("unknown function '{name}'")))?;
        if args.len() != *arity {
            return Err(ExprError::eval(format!(
                "function '{name}' expects {arity} argument(s), got {}",
                args.len()
            )));
        }
        f(args)
    }

    /// Registered function names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.fns.keys().map(String::as_str).collect()
    }
}

fn str_arg<'a>(args: &'a [Value], i: usize, f: &str) -> Result<&'a str, ExprError> {
    args[i]
        .as_str(f)
        .map_err(|e| ExprError::eval(e.to_string()))
}

/// The process-wide default registry (builtins only). Evaluation uses
/// this unless an explicit registry is supplied.
pub fn default_registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(Registry::with_builtins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_work() {
        let r = Registry::with_builtins();
        assert_eq!(
            r.call("upper", &[Value::str("ab")]).unwrap(),
            Value::str("AB")
        );
        assert_eq!(
            r.call("lower", &[Value::str("AB")]).unwrap(),
            Value::str("ab")
        );
        assert_eq!(
            r.call("len", &[Value::str("héllo")]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            r.call("trim", &[Value::str("  x ")]).unwrap(),
            Value::str("x")
        );
        assert_eq!(
            r.call("contains", &[Value::str("hello"), Value::str("ell")])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            r.call("starts_with", &[Value::str("hello"), Value::str("he")])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            r.call("ends_with", &[Value::str("hello"), Value::str("lo")])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            r.call("concat", &[Value::str("a"), Value::str("b")])
                .unwrap(),
            Value::str("ab")
        );
        assert_eq!(r.call("abs", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            r.call("abs", &[Value::Float(-1.5)]).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            r.call("min2", &[Value::Int(2), Value::Int(1)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            r.call("max2", &[Value::Int(2), Value::Int(1)]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            r.call("round", &[Value::Float(2.6)]).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn arity_and_type_errors() {
        let r = Registry::with_builtins();
        let err = r.call("len", &[]).unwrap_err();
        assert!(err.to_string().contains("expects 1"), "{err}");
        let err = r.call("len", &[Value::Int(1)]).unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
        let err = r.call("nope", &[]).unwrap_err();
        assert!(err.to_string().contains("unknown function"), "{err}");
    }

    #[test]
    fn user_registration_contribution_8() {
        // "whether a function is defined by 'a user' or by 'a library',
        // FQL allows for using functions defined outside the database"
        let mut r = Registry::with_builtins();
        r.register("tax", 1, |args| {
            let x = args[0]
                .as_float("tax")
                .map_err(|e| ExprError::eval(e.to_string()))?;
            Ok(Value::Float(x * 1.19))
        });
        let v = r.call("tax", &[Value::Float(100.0)]).unwrap();
        assert_eq!(v, Value::Float(119.0));
        // replacing a builtin is allowed (shadowing)
        r.register("len", 1, |_| Ok(Value::Int(0)));
        assert_eq!(r.call("len", &[Value::str("xyz")]).unwrap(), Value::Int(0));
    }
}
