//! A Pratt parser for the predicate language.
//!
//! Grammar (precedence climbing, loosest to tightest):
//!
//! ```text
//! expr    := or
//! or      := and ( 'or' and )*
//! and     := cmp ( 'and' cmp )*
//! cmp     := add ( ('=='|'!='|'<'|'<='|'>'|'>=') add )?
//! add     := mul ( ('+'|'-') mul )*
//! mul     := unary ( ('*'|'/') unary )*
//! unary   := 'not' unary | '-' unary | primary
//! primary := int | float | string | 'true' | 'false' | ident | $param | '(' expr ')'
//! ```

use crate::ast::{BinOp, Expr};
use crate::error::ExprError;
use crate::token::{lex, Token, TokenKind};
use fdm_core::Value;
use std::sync::Arc;

/// Parses a predicate/expression source string into an [`Expr`].
///
/// # Examples
///
/// ```
/// use fdm_expr::parse;
/// let e = parse("age > $foo and state == 'NY'").unwrap();
/// assert_eq!(e.to_string(), "((age > $foo) and (state == 'NY'))");
/// ```
pub fn parse(src: &str) -> Result<Expr, ExprError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let e = p.parse_expr(0)?;
    if let Some(t) = p.peek() {
        return Err(ExprError::parse(
            t.offset,
            format!("unexpected trailing token '{}'", t.kind),
        ));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.peek().map_or(self.src_len, |t| t.offset)
    }

    /// The operator a token denotes in infix position, if any.
    fn infix_op(kind: &TokenKind) -> Option<BinOp> {
        Some(match kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::Plus => BinOp::Add,
            TokenKind::Minus => BinOp::Sub,
            TokenKind::Star => BinOp::Mul,
            TokenKind::Slash => BinOp::Div,
            TokenKind::Ident(s) if s == "and" => BinOp::And,
            TokenKind::Ident(s) if s == "or" => BinOp::Or,
            _ => return None,
        })
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_unary()?;
        while let Some(t) = self.peek() {
            let Some(op) = Self::infix_op(&t.kind) else {
                break;
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.next();
            // left-associative: require strictly higher precedence on the right
            let rhs = self.parse_expr(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ExprError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(s)) if s == "not" => {
                self.next();
                let inner = self.parse_unary()?;
                Ok(Expr::Not(Arc::new(inner)))
            }
            Some(TokenKind::Minus) => {
                self.next();
                let inner = self.parse_unary()?;
                Ok(Expr::Neg(Arc::new(inner)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ExprError> {
        let offset = self.offset();
        let Some(t) = self.next() else {
            return Err(ExprError::parse(offset, "unexpected end of input"));
        };
        match t.kind {
            TokenKind::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            TokenKind::Float(x) => Ok(Expr::Lit(Value::Float(x))),
            TokenKind::Str(s) => Ok(Expr::Lit(Value::str(s))),
            TokenKind::Param(p) => Ok(Expr::Param(Arc::from(p.as_str()))),
            TokenKind::Ident(s) if s == "true" => Ok(Expr::Lit(Value::Bool(true))),
            TokenKind::Ident(s) if s == "false" => Ok(Expr::Lit(Value::Bool(false))),
            TokenKind::Ident(s) if s == "and" || s == "or" || s == "not" => Err(ExprError::parse(
                t.offset,
                format!("keyword '{s}' cannot start an expression"),
            )),
            TokenKind::Ident(s) => {
                // function call if immediately followed by '('
                if matches!(
                    self.peek(),
                    Some(Token {
                        kind: TokenKind::LParen,
                        ..
                    })
                ) {
                    self.next(); // consume '('
                    let mut args = Vec::new();
                    if !matches!(
                        self.peek(),
                        Some(Token {
                            kind: TokenKind::RParen,
                            ..
                        })
                    ) {
                        loop {
                            args.push(Arc::new(self.parse_expr(0)?));
                            match self.next() {
                                Some(Token {
                                    kind: TokenKind::Comma,
                                    ..
                                }) => continue,
                                Some(Token {
                                    kind: TokenKind::RParen,
                                    ..
                                }) => break,
                                Some(t) => {
                                    return Err(ExprError::parse(
                                        t.offset,
                                        format!("expected ',' or ')' in call, found '{}'", t.kind),
                                    ))
                                }
                                None => {
                                    return Err(ExprError::parse(
                                        self.src_len,
                                        "unterminated function call",
                                    ))
                                }
                            }
                        }
                    } else {
                        self.next(); // consume ')'
                    }
                    return Ok(Expr::Call {
                        name: Arc::from(s.as_str()),
                        args,
                    });
                }
                Ok(Expr::attr(&s))
            }
            TokenKind::LParen => {
                let inner = self.parse_expr(0)?;
                match self.next() {
                    Some(Token {
                        kind: TokenKind::RParen,
                        ..
                    }) => Ok(inner),
                    Some(t) => Err(ExprError::parse(
                        t.offset,
                        format!("expected ')', found '{}'", t.kind),
                    )),
                    None => Err(ExprError::parse(
                        self.src_len,
                        "expected ')', found end of input",
                    )),
                }
            }
            other => Err(ExprError::parse(
                t.offset,
                format!("unexpected token '{other}'"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_textual_predicate() {
        // filter("age>$foo", {foo: 42}, customers)  — Fig. 4a
        let e = parse("age>$foo").unwrap();
        assert_eq!(e.to_string(), "(age > $foo)");
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let e = parse("a + b * 2 > 10").unwrap();
        assert_eq!(e.to_string(), "((a + (b * 2)) > 10)");
    }

    #[test]
    fn and_or_precedence_and_associativity() {
        let e = parse("a > 1 or b > 2 and c > 3").unwrap();
        assert_eq!(e.to_string(), "((a > 1) or ((b > 2) and (c > 3)))");
        let e = parse("a - b - c").unwrap();
        assert_eq!(e.to_string(), "((a - b) - c)", "left associative");
    }

    #[test]
    fn parentheses_override() {
        let e = parse("(a or b) and c").unwrap();
        assert_eq!(e.to_string(), "((a or b) and c)");
    }

    #[test]
    fn unary_not_and_neg() {
        let e = parse("not a > 1").unwrap();
        // `not` binds tighter than comparison operands? No: unary applies
        // to the primary, so this parses as (not a) > 1 — document it:
        assert_eq!(e.to_string(), "((not a) > 1)");
        let e = parse("not (a > 1)").unwrap();
        assert_eq!(e.to_string(), "(not (a > 1))");
        let e = parse("-a + 3").unwrap();
        assert_eq!(e.to_string(), "((-a) + 3)");
    }

    #[test]
    fn literals() {
        assert_eq!(parse("true").unwrap().to_string(), "true");
        assert_eq!(parse("'x'").unwrap().to_string(), "'x'");
        assert_eq!(parse("1.5").unwrap().to_string(), "1.5");
    }

    #[test]
    fn function_call_syntax() {
        assert_eq!(parse("len(name)").unwrap().to_string(), "len(name)");
        assert_eq!(
            parse("contains(name, 'x')").unwrap().to_string(),
            "contains(name, 'x')"
        );
        assert_eq!(parse("now()").unwrap().to_string(), "now()");
        assert_eq!(
            parse("f(a + 1, g(b))").unwrap().to_string(),
            "f((a + 1), g(b))"
        );
        // calls participate in expressions with normal precedence
        assert_eq!(
            parse("len(name) + 1 > 4").unwrap().to_string(),
            "((len(name) + 1) > 4)"
        );
        assert!(parse("f(a").is_err());
        assert!(parse("f(a,)").is_err());
        assert!(parse("f(,a)").is_err());
    }

    #[test]
    fn errors_have_positions() {
        let err = parse("a > ").unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
        let err = parse("a > 1 )").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        let err = parse("(a > 1").unwrap_err();
        assert!(err.to_string().contains("')'"), "{err}");
        assert!(parse("and b").is_err());
        assert!(parse("").is_err());
    }
}
