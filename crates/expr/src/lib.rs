//! # fdm-expr — the textual predicate costume
//!
//! FQL imposes no new syntax (paper §4.2) — but one of its costumes is a
//! small textual predicate language with **named parameters**:
//!
//! ```text
//! filter("age>$foo", {foo: 42}, customers)        # Fig. 4a, last variant
//! ```
//!
//! This crate provides that language: lexer → Pratt parser → AST →
//! parameter binding → evaluation against tuple functions.
//!
//! **Injection immunity is structural** (paper contribution 10): the
//! source text is parsed before any runtime data exists; parameters are
//! bound as [`fdm_core::Value`]s into the finished AST and are never
//! lexed. There is no API that concatenates data into query text.
//!
//! ```
//! use fdm_core::TupleF;
//! use fdm_expr::{eval_predicate, parse, Params};
//!
//! let t = TupleF::builder("c").attr("name", "Alice").attr("age", 43).build();
//! let expr = parse("age > $min").unwrap();
//! let bound = Params::new().set("min", 42).bind(&expr).unwrap();
//! assert!(eval_predicate(&bound, &t).unwrap());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bind;
pub mod error;
pub mod eval;
pub mod funcs;
pub mod ops;
pub mod parser;
pub mod token;

pub use ast::{BinOp, Expr};
pub use bind::Params;
pub use error::ExprError;
pub use eval::{compare, eval, eval_predicate, eval_with};
pub use funcs::{default_registry, Registry};
pub use ops::{by_suffix, CmpOp, EQ, GE, GT, LE, LT, NE};
pub use parser::parse;
