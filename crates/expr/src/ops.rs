//! The "broken-up predicate" costume (paper Fig. 4a):
//! `filter(att='age', op=gt, c=42, customers)` — comparison operators as
//! named, importable values, mirroring `from operators import *`.

use crate::ast::BinOp;
use crate::error::ExprError;
use crate::eval::compare;
use fdm_core::Value;
use std::fmt;

/// A named comparison operator usable as a plain value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpOp {
    op: BinOp,
    name: &'static str,
}

impl CmpOp {
    /// Applies the operator to two values.
    pub fn apply(&self, l: &Value, r: &Value) -> Result<bool, ExprError> {
        compare(self.op, l, r)
    }

    /// The operator's name (`"gt"`, ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying AST operator.
    pub fn bin_op(&self) -> BinOp {
        self.op
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// Greater-than.
pub const GT: CmpOp = CmpOp {
    op: BinOp::Gt,
    name: "gt",
};
/// Greater-or-equal.
pub const GE: CmpOp = CmpOp {
    op: BinOp::Ge,
    name: "ge",
};
/// Less-than.
pub const LT: CmpOp = CmpOp {
    op: BinOp::Lt,
    name: "lt",
};
/// Less-or-equal.
pub const LE: CmpOp = CmpOp {
    op: BinOp::Le,
    name: "le",
};
/// Equality.
pub const EQ: CmpOp = CmpOp {
    op: BinOp::Eq,
    name: "eq",
};
/// Inequality.
pub const NE: CmpOp = CmpOp {
    op: BinOp::Ne,
    name: "ne",
};

/// Looks an operator up by its Django-style suffix (`"gt"` in `age__gt`).
pub fn by_suffix(suffix: &str) -> Option<CmpOp> {
    Some(match suffix {
        "gt" => GT,
        "gte" | "ge" => GE,
        "lt" => LT,
        "lte" | "le" => LE,
        "eq" | "exact" => EQ,
        "ne" => NE,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_apply() {
        assert!(GT.apply(&Value::Int(43), &Value::Int(42)).unwrap());
        assert!(!LT.apply(&Value::Int(43), &Value::Int(42)).unwrap());
        assert!(EQ.apply(&Value::str("a"), &Value::str("a")).unwrap());
        assert!(NE.apply(&Value::str("a"), &Value::str("b")).unwrap());
        assert!(GE.apply(&Value::Int(1), &Value::Int(1)).unwrap());
        assert!(LE.apply(&Value::Int(1), &Value::Int(1)).unwrap());
    }

    #[test]
    fn django_suffix_lookup() {
        assert_eq!(by_suffix("gt"), Some(GT));
        assert_eq!(by_suffix("gte"), Some(GE));
        assert_eq!(by_suffix("exact"), Some(EQ));
        assert_eq!(by_suffix("contains"), None);
    }

    #[test]
    fn type_errors_propagate() {
        assert!(GT.apply(&Value::str("a"), &Value::Int(1)).is_err());
    }
}
