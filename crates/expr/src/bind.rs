//! Parameter binding — the structural reason SQL injection is impossible
//! (paper contribution 10).
//!
//! A textual predicate like `"age>$foo"` is parsed **once**, producing an
//! AST with a [`crate::ast::Expr::Param`] hole. Binding replaces the hole
//! with a [`Value`] — a runtime datum that is *never lexed or parsed*. An
//! attacker-controlled string bound to `$name` can only ever become a
//! string value compared against attributes; there is no code path by
//! which it could extend the expression. Contrast `fdm-relational`'s
//! deliberately string-spliced mini-SQL, which the integration tests
//! demonstrate to be injectable.

use crate::ast::Expr;
use crate::error::ExprError;
use fdm_core::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A set of named parameter bindings.
///
/// # Examples
///
/// ```
/// use fdm_expr::{parse, Params};
///
/// let expr = parse("age > $min").unwrap();
/// let bound = Params::new().set("min", 42).bind(&expr).unwrap();
/// assert_eq!(bound.to_string(), "(age > 42)");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: BTreeMap<Arc<str>, Value>,
}

impl Params {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Params::default()
    }

    /// Adds a binding (builder style).
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.values.insert(Arc::from(name), value.into());
        self
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Substitutes every `$param` in `expr` with its bound value.
    ///
    /// Strict on both sides: an unbound parameter **and** an unused binding
    /// are errors — silent partial binding is how injection-adjacent bugs
    /// hide.
    pub fn bind(&self, expr: &Expr) -> Result<Expr, ExprError> {
        let mut used: Vec<Arc<str>> = Vec::new();
        let bound = self.bind_inner(expr, &mut used)?;
        for name in self.values.keys() {
            if !used.iter().any(|u| u == name) {
                return Err(ExprError::bind(format!(
                    "parameter '${name}' was bound but never used"
                )));
            }
        }
        Ok(bound)
    }

    fn bind_inner(&self, expr: &Expr, used: &mut Vec<Arc<str>>) -> Result<Expr, ExprError> {
        Ok(match expr {
            Expr::Param(name) => match self.values.get(name) {
                Some(v) => {
                    used.push(name.clone());
                    Expr::Lit(v.clone())
                }
                None => {
                    return Err(ExprError::bind(format!(
                        "no binding for parameter '${name}'"
                    )))
                }
            },
            Expr::Attr(_) | Expr::Lit(_) => expr.clone(),
            Expr::Bin { op, lhs, rhs } => Expr::Bin {
                op: *op,
                lhs: Arc::new(self.bind_inner(lhs, used)?),
                rhs: Arc::new(self.bind_inner(rhs, used)?),
            },
            Expr::Not(e) => Expr::Not(Arc::new(self.bind_inner(e, used)?)),
            Expr::Neg(e) => Expr::Neg(Arc::new(self.bind_inner(e, used)?)),
            Expr::Call { name, args } => Expr::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.bind_inner(a, used).map(Arc::new))
                    .collect::<Result<_, _>>()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn binds_the_paper_example() {
        let e = parse("age>$foo").unwrap();
        let bound = Params::new().set("foo", 42).bind(&e).unwrap();
        assert_eq!(bound.to_string(), "(age > 42)");
        assert!(bound.unbound_params().is_empty());
    }

    #[test]
    fn missing_binding_is_an_error() {
        let e = parse("age > $foo").unwrap();
        let err = Params::new().bind(&e).unwrap_err();
        assert!(err.to_string().contains("$foo"), "{err}");
    }

    #[test]
    fn unused_binding_is_an_error() {
        let e = parse("age > 1").unwrap();
        let err = Params::new().set("foo", 1).bind(&e).unwrap_err();
        assert!(err.to_string().contains("never used"), "{err}");
    }

    #[test]
    fn repeated_parameter_binds_everywhere() {
        let e = parse("$x < age and age < $x + 10").unwrap();
        let bound = Params::new().set("x", 30).bind(&e).unwrap();
        assert_eq!(bound.to_string(), "((30 < age) and (age < (30 + 10)))");
    }

    #[test]
    fn hostile_string_stays_a_string() {
        // The classic payload. After binding it is a string *literal value*;
        // it is never re-parsed, so it cannot alter the expression shape.
        let payload = "' OR '1'='1";
        let e = parse("name == $n").unwrap();
        let bound = Params::new().set("n", payload).bind(&e).unwrap();
        match &bound {
            Expr::Bin { rhs, .. } => match rhs.as_ref() {
                Expr::Lit(Value::Str(s)) => assert_eq!(s.as_ref(), payload),
                other => panic!("expected string literal, got {other}"),
            },
            other => panic!("expected comparison, got {other}"),
        }
        // Structure is still a single comparison — no OR appeared.
        let attrs = bound.referenced_attrs();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].as_ref(), "name");
    }
}
