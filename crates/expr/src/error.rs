//! Errors of the expression sub-language.

use std::fmt;

/// An error from lexing, parsing, binding, or evaluating a predicate
/// expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the source.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error at a byte offset.
    Parse {
        /// Byte offset in the source (or end of input).
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A `$param` had no binding, or a binding was never used.
    Bind {
        /// What went wrong.
        message: String,
    },
    /// Runtime evaluation error (type mismatch, missing attribute, ...).
    Eval {
        /// What went wrong.
        message: String,
    },
}

impl ExprError {
    pub(crate) fn lex(offset: usize, message: impl Into<String>) -> Self {
        ExprError::Lex {
            offset,
            message: message.into(),
        }
    }

    pub(crate) fn parse(offset: usize, message: impl Into<String>) -> Self {
        ExprError::Parse {
            offset,
            message: message.into(),
        }
    }

    pub(crate) fn bind(message: impl Into<String>) -> Self {
        ExprError::Bind {
            message: message.into(),
        }
    }

    pub(crate) fn eval(message: impl Into<String>) -> Self {
        ExprError::Eval {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Lex { offset, message } => {
                write!(f, "lex error at offset {offset}: {message}")
            }
            ExprError::Parse { offset, message } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            ExprError::Bind { message } => write!(f, "bind error: {message}"),
            ExprError::Eval { message } => write!(f, "eval error: {message}"),
        }
    }
}

impl std::error::Error for ExprError {}

impl From<ExprError> for fdm_core::FdmError {
    fn from(e: ExprError) -> Self {
        fdm_core::FdmError::Expr(e.to_string())
    }
}
