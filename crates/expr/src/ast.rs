//! The expression AST.

use fdm_core::Value;
use std::fmt;
use std::sync::Arc;

/// Binary operators, by increasing precedence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical disjunction (short-circuiting).
    Or,
    /// Logical conjunction (short-circuiting).
    And,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

impl BinOp {
    /// Binding power for the Pratt parser (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }

    /// The surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// `true` for comparison operators (result type bool).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// A parsed (but possibly unbound) expression.
///
/// `Expr` trees are immutable and cheaply shareable; `Arc` keeps subtree
/// sharing free when expressions are rewritten (e.g. by the FQL optimizer's
/// predicate pushdown).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An attribute reference, evaluated against the current tuple
    /// function — `age` means `t('age')`.
    Attr(Arc<str>),
    /// A literal value.
    Lit(Value),
    /// An unbound named parameter `$name`. Evaluating an expression that
    /// still contains parameters is an error: parameters are *data*,
    /// bound by [`crate::Params`], never spliced into the source text.
    Param(Arc<str>),
    /// A binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Arc<Expr>,
        /// Right operand.
        rhs: Arc<Expr>,
    },
    /// Logical negation `not e`.
    Not(Arc<Expr>),
    /// Arithmetic negation `-e`.
    Neg(Arc<Expr>),
    /// A scalar-function call `f(a, b, ...)` resolved against a
    /// [`crate::funcs::Registry`] at evaluation time (paper contribution
    /// 8: user/library functions are first-class in queries).
    Call {
        /// Function name.
        name: Arc<str>,
        /// Argument expressions.
        args: Vec<Arc<Expr>>,
    },
}

impl Expr {
    /// Convenience: attribute reference.
    pub fn attr(name: &str) -> Expr {
        Expr::Attr(Arc::from(name))
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Convenience: binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Arc::new(lhs),
            rhs: Arc::new(rhs),
        }
    }

    /// All attribute names referenced by the expression (used by the FQL
    /// optimizer to decide pushdown eligibility).
    pub fn referenced_attrs(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.walk_attrs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn walk_attrs(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Expr::Attr(a) => out.push(a.clone()),
            Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Bin { lhs, rhs, .. } => {
                lhs.walk_attrs(out);
                rhs.walk_attrs(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.walk_attrs(out),
            Expr::Call { args, .. } => {
                for arg in args {
                    arg.walk_attrs(out);
                }
            }
        }
    }

    /// All unbound parameter names.
    pub fn unbound_params(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.walk_params(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn walk_params(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Expr::Param(p) => out.push(p.clone()),
            Expr::Attr(_) | Expr::Lit(_) => {}
            Expr::Bin { lhs, rhs, .. } => {
                lhs.walk_params(out);
                rhs.walk_params(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.walk_params(out),
            Expr::Call { args, .. } => {
                for arg in args {
                    arg.walk_params(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Param(p) => write!(f, "${p}"),
            Expr::Bin { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Not(e) => write!(f, "(not {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_classes() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Gt.precedence());
        assert!(BinOp::Gt.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn referenced_attrs_and_params() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Gt, Expr::attr("age"), Expr::Param(Arc::from("min"))),
            Expr::bin(BinOp::Eq, Expr::attr("state"), Expr::attr("age")),
        );
        let attrs: Vec<_> = e.referenced_attrs().iter().map(|a| a.to_string()).collect();
        assert_eq!(attrs, vec!["age", "state"]);
        let params: Vec<_> = e.unbound_params().iter().map(|p| p.to_string()).collect();
        assert_eq!(params, vec!["min"]);
    }

    #[test]
    fn display_is_fully_parenthesized() {
        let e = Expr::bin(
            BinOp::Gt,
            Expr::attr("age"),
            Expr::bin(BinOp::Mul, Expr::lit(2), Expr::lit(21)),
        );
        assert_eq!(e.to_string(), "(age > (2 * 21))");
    }
}
