//! Tokens and the hand-rolled lexer for the textual predicate costume
//! (`filter("age>$foo", {foo: 42}, customers)` — paper Fig. 4a).

use crate::error::ExprError;
use std::fmt;

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source where the token starts.
    pub offset: usize,
}

/// The kinds of token in the predicate language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An attribute name or keyword (`age`, `and`, `true`, ...).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (escapes: `\'`, `\\`).
    Str(String),
    /// A named parameter `$name`. Parameters are the **only** way to get
    /// runtime data into a predicate; they are bound to values after
    /// parsing and never re-lexed — SQL injection is impossible by
    /// construction (paper contribution 10).
    Param(String),
    /// `==` or `=`.
    Eq,
    /// `!=` or `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `,` (argument separator in function calls).
    Comma,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Param(p) => write!(f, "${p}"),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
        }
    }
}

/// Lexes `src` into tokens.
pub fn lex(src: &str) -> Result<Vec<Token>, ExprError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
            }
            '!' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                } else {
                    return Err(ExprError::lex(start, "expected '=' after '!'"));
                }
            }
            '<' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                } else if i < bytes.len() && bytes[i] == b'>' {
                    i += 1;
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                }
            }
            '>' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                }
            }
            '$' => {
                i += 1;
                let name_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == name_start {
                    return Err(ExprError::lex(start, "expected parameter name after '$'"));
                }
                out.push(Token {
                    kind: TokenKind::Param(src[name_start..i].to_string()),
                    offset: start,
                });
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ExprError::lex(start, "unterminated string literal"));
                    }
                    match bytes[i] {
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= bytes.len() {
                                return Err(ExprError::lex(start, "unterminated escape"));
                            }
                            match bytes[i] {
                                b'\'' => s.push('\''),
                                b'\\' => s.push('\\'),
                                b'n' => s.push('\n'),
                                b't' => s.push('\t'),
                                other => {
                                    return Err(ExprError::lex(
                                        i,
                                        format!("unknown escape '\\{}'", other as char),
                                    ))
                                }
                            }
                            i += 1;
                        }
                        _ => {
                            // consume one UTF-8 scalar
                            let rest = &src[i..];
                            let ch = rest.chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| ExprError::lex(start, "invalid float literal"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| ExprError::lex(start, "integer literal out of range"))?,
                    )
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(ExprError::lex(
                    start,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_example() {
        // "age>$foo"  (Fig. 4a)
        assert_eq!(
            kinds("age>$foo"),
            vec![
                TokenKind::Ident("age".into()),
                TokenKind::Gt,
                TokenKind::Param("foo".into()),
            ]
        );
    }

    #[test]
    fn comparison_operator_spellings() {
        assert_eq!(kinds("a = 1")[1], TokenKind::Eq);
        assert_eq!(kinds("a == 1")[1], TokenKind::Eq);
        assert_eq!(kinds("a != 1")[1], TokenKind::Ne);
        assert_eq!(kinds("a <> 1")[1], TokenKind::Ne);
        assert_eq!(kinds("a <= 1")[1], TokenKind::Le);
        assert_eq!(kinds("a >= 1")[1], TokenKind::Ge);
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("3.25"), vec![TokenKind::Float(3.25)]);
        assert_eq!(kinds("'hi'"), vec![TokenKind::Str("hi".into())]);
        assert_eq!(kinds(r"'it\'s'"), vec![TokenKind::Str("it's".into())]);
        assert_eq!(kinds(r"'a\nb'"), vec![TokenKind::Str("a\nb".into())]);
    }

    #[test]
    fn lex_errors_carry_position() {
        let err = lex("age > #").unwrap_err();
        assert!(err.to_string().contains("offset 6"), "{err}");
        assert!(lex("'open").is_err());
        assert!(lex("$").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'héllo'"), vec![TokenKind::Str("héllo".into())]);
    }

    #[test]
    fn dangling_dot_is_an_error() {
        // "1." followed by a non-digit is not a float; the stray '.' is
        // rejected rather than silently skipped.
        assert!(lex("1.x").is_err());
        assert!(lex("1.").is_err());
    }
}
