//! Evaluation of expressions against tuple functions.

use crate::ast::{BinOp, Expr};
use crate::error::ExprError;
use crate::funcs::{default_registry, Registry};
use fdm_core::{TupleF, Value, ValueType};
use std::cmp::Ordering;

/// Evaluates `expr` against the tuple function `t` (attribute references
/// become `t('attr')` calls — stored or computed, indistinguishably).
/// Scalar-function calls resolve against the default built-in registry;
/// use [`eval_with`] to supply user-registered functions.
pub fn eval(expr: &Expr, t: &TupleF) -> Result<Value, ExprError> {
    eval_with(expr, t, default_registry())
}

/// Evaluates `expr` against `t`, resolving function calls in `registry`
/// (paper contribution 8: user/library functions in queries).
pub fn eval_with(expr: &Expr, t: &TupleF, registry: &Registry) -> Result<Value, ExprError> {
    match expr {
        Expr::Attr(a) => t.get(a).map_err(|e| ExprError::eval(e.to_string())),
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Param(p) => Err(ExprError::eval(format!(
            "unbound parameter '${p}' at evaluation time (bind it with Params first)"
        ))),
        Expr::Not(e) => {
            let v = eval_with(e, t, registry)?;
            let b = v
                .as_bool("operand of 'not'")
                .map_err(|e| ExprError::eval(e.to_string()))?;
            Ok(Value::Bool(!b))
        }
        Expr::Neg(e) => {
            let v = eval_with(e, t, registry)?;
            match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(x) => Ok(Value::Float(-x)),
                other => Err(ExprError::eval(format!(
                    "cannot negate a {} value",
                    other.value_type()
                ))),
            }
        }
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::And => {
                let l = eval_with(lhs, t, registry)?
                    .as_bool("left operand of 'and'")
                    .map_err(|e| ExprError::eval(e.to_string()))?;
                if !l {
                    return Ok(Value::Bool(false));
                }
                let r = eval_with(rhs, t, registry)?
                    .as_bool("right operand of 'and'")
                    .map_err(|e| ExprError::eval(e.to_string()))?;
                Ok(Value::Bool(r))
            }
            BinOp::Or => {
                let l = eval_with(lhs, t, registry)?
                    .as_bool("left operand of 'or'")
                    .map_err(|e| ExprError::eval(e.to_string()))?;
                if l {
                    return Ok(Value::Bool(true));
                }
                let r = eval_with(rhs, t, registry)?
                    .as_bool("right operand of 'or'")
                    .map_err(|e| ExprError::eval(e.to_string()))?;
                Ok(Value::Bool(r))
            }
            BinOp::Add => arith(
                eval_with(lhs, t, registry)?,
                eval_with(rhs, t, registry)?,
                Value::add,
            ),
            BinOp::Sub => arith(
                eval_with(lhs, t, registry)?,
                eval_with(rhs, t, registry)?,
                Value::sub,
            ),
            BinOp::Mul => arith(
                eval_with(lhs, t, registry)?,
                eval_with(rhs, t, registry)?,
                Value::mul,
            ),
            BinOp::Div => arith(
                eval_with(lhs, t, registry)?,
                eval_with(rhs, t, registry)?,
                Value::div,
            ),
            cmp => {
                let l = eval_with(lhs, t, registry)?;
                let r = eval_with(rhs, t, registry)?;
                Ok(Value::Bool(compare(*cmp, &l, &r)?))
            }
        },
        Expr::Call { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_with(a, t, registry))
                .collect::<Result<_, _>>()?;
            registry.call(name, &vals)
        }
    }
}

fn arith(
    l: Value,
    r: Value,
    f: impl Fn(&Value, &Value) -> fdm_core::Result<Value>,
) -> Result<Value, ExprError> {
    f(&l, &r).map_err(|e| ExprError::eval(e.to_string()))
}

/// Applies a comparison operator with type checking: equality works on any
/// equal-typed pair (and int/float cross-numerically); ordering requires
/// comparable types.
pub fn compare(op: BinOp, l: &Value, r: &Value) -> Result<bool, ExprError> {
    debug_assert!(op.is_comparison());
    let lt = l.value_type();
    let rt = r.value_type();
    match op {
        BinOp::Eq | BinOp::Ne => {
            // equality across incomparable types is simply false/true, not
            // an error — but comparing a function to a scalar is almost
            // certainly a bug, so reject it.
            if (lt == ValueType::Function) != (rt == ValueType::Function) {
                return Err(ExprError::eval(format!("cannot compare {lt} with {rt}")));
            }
            let eq = l == r;
            Ok(if op == BinOp::Eq { eq } else { !eq })
        }
        _ => {
            if !lt.comparable_with(rt) {
                return Err(ExprError::eval(format!("cannot order {lt} against {rt}")));
            }
            let ord = l.cmp(r);
            Ok(match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!("comparison op"),
            })
        }
    }
}

/// Evaluates `expr` as a predicate: must produce a boolean.
pub fn eval_predicate(expr: &Expr, t: &TupleF) -> Result<bool, ExprError> {
    match eval(expr, t)? {
        Value::Bool(b) => Ok(b),
        other => Err(ExprError::eval(format!(
            "predicate evaluated to a {} value, expected bool",
            other.value_type()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::Params;
    use crate::parser::parse;

    fn alice() -> TupleF {
        TupleF::builder("t")
            .attr("name", "Alice")
            .attr("age", 43)
            .attr("score", 1.5)
            .attr("active", true)
            .build()
    }

    fn check(src: &str, expect: bool) {
        let e = parse(src).unwrap();
        assert_eq!(eval_predicate(&e, &alice()).unwrap(), expect, "{src}");
    }

    #[test]
    fn paper_filter_predicate() {
        // customers older than 42 (Fig. 4a)
        check("age > 42", true);
        check("age > 43", false);
    }

    #[test]
    fn comparisons_and_logic() {
        check("age >= 43 and name == 'Alice'", true);
        check("age < 43 or name != 'Alice'", false);
        check("not (age < 43)", true);
        check("age <= 43", true);
        check("name <> 'Bob'", true);
    }

    #[test]
    fn arithmetic_in_predicates() {
        check("age * 2 > 85", true);
        check("age + 1 == 44", true);
        check("age - 3 == 40", true);
        check("age / 2 == 21", true);
        check("-age < 0", true);
        check("score * 2.0 == 3.0", true);
    }

    #[test]
    fn cross_numeric_comparison() {
        check("age > 42.5", true);
        check("score < 2", true);
    }

    #[test]
    fn computed_attrs_transparent_to_expressions() {
        let t = TupleF::builder("t")
            .attr("foo", 12)
            .computed("bar", |t| t.get("foo")?.mul(&Value::Int(42)))
            .build();
        let e = parse("bar == 504").unwrap();
        assert!(eval_predicate(&e, &t).unwrap());
    }

    #[test]
    fn bound_parameters_evaluate() {
        let e = parse("age > $min and age < $max").unwrap();
        let bound = Params::new()
            .set("min", 40)
            .set("max", 50)
            .bind(&e)
            .unwrap();
        assert!(eval_predicate(&bound, &alice()).unwrap());
    }

    #[test]
    fn unbound_parameter_fails_at_eval() {
        let e = parse("age > $min").unwrap();
        let err = eval_predicate(&e, &alice()).unwrap_err();
        assert!(err.to_string().contains("$min"));
    }

    #[test]
    fn type_errors_are_reported() {
        let err = eval_predicate(&parse("name > 5").unwrap(), &alice()).unwrap_err();
        assert!(err.to_string().contains("cannot order"), "{err}");
        let err = eval_predicate(&parse("age + 'x'").unwrap(), &alice()).unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
        let err = eval_predicate(&parse("age").unwrap(), &alice()).unwrap_err();
        assert!(err.to_string().contains("expected bool"), "{err}");
        let err = eval_predicate(&parse("missing == 1").unwrap(), &alice()).unwrap_err();
        assert!(err.to_string().contains("no attribute"), "{err}");
    }

    #[test]
    fn equality_across_types_is_false_not_error() {
        check("name == 5", false);
        check("name != 5", true);
        check("active == true", true);
    }

    #[test]
    fn function_calls_in_predicates() {
        check("len(name) == 5", true);
        check("upper(name) == 'ALICE'", true);
        check("contains(name, 'lic')", true);
        check("starts_with(lower(name), 'al')", true);
        check("abs(-age) == 43", true);
        check("max2(age, 100) == 100", true);
        check("len(concat(name, 'x')) == 6", true);
    }

    #[test]
    fn user_registry_functions_via_eval_with() {
        let mut reg = Registry::with_builtins();
        reg.register("is_adult", 1, |args| {
            let age = args[0]
                .as_int("is_adult")
                .map_err(|e| ExprError::eval(e.to_string()))?;
            Ok(Value::Bool(age >= 18))
        });
        let e = parse("is_adult(age)").unwrap();
        assert_eq!(eval_with(&e, &alice(), &reg).unwrap(), Value::Bool(true));
        // unknown through the default registry
        let err = eval(&e, &alice()).unwrap_err();
        assert!(err.to_string().contains("unknown function"), "{err}");
    }

    #[test]
    fn call_errors() {
        let err = eval_predicate(&parse("len()").unwrap(), &alice()).unwrap_err();
        assert!(err.to_string().contains("expects 1"), "{err}");
        let err = eval_predicate(&parse("nope(1)").unwrap(), &alice()).unwrap_err();
        assert!(err.to_string().contains("unknown function"), "{err}");
        let err = eval_predicate(&parse("len(age)").unwrap(), &alice()).unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
    }

    #[test]
    fn params_inside_calls_bind() {
        let e = parse("contains(name, $needle)").unwrap();
        let bound = Params::new().set("needle", "lic").bind(&e).unwrap();
        assert!(eval_predicate(&bound, &alice()).unwrap());
    }

    #[test]
    fn short_circuit_prevents_spurious_errors() {
        // `missing` would error, but the left side decides.
        check("age > 100 and missing == 1", false);
        check("age > 0 or missing == 1", true);
    }
}
