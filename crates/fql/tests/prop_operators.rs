//! Property-based tests of FQL operator algebraic invariants on random
//! relations: filters are idempotent and commute, grouping partitions,
//! sorting permutes, set operations satisfy lattice laws.

use fdm_core::{
    DatabaseF, Domain, Participant, RelationF, RelationshipBuilder, RelationshipF, SharedDomain,
    TupleF, Value, ValueType,
};
use fdm_fql::prelude::*;
use fdm_fql::{aggregate, group, semijoin, Order};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A random small relation of (id, score, tag) tuples.
fn relation_strategy() -> impl Strategy<Value = RelationF> {
    prop::collection::btree_map(0i64..200, (0i64..100, 0u8..4), 0..60).prop_map(|rows| {
        let mut rel = RelationF::new("t", &["id"]);
        for (id, (score, tag)) in rows {
            rel = rel
                .insert(
                    Value::Int(id),
                    TupleF::builder("r")
                        .attr("score", score)
                        .attr("tag", format!("tag{tag}"))
                        .build(),
                )
                .expect("unique ids from btree_map");
        }
        rel
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// σ_p ∘ σ_p = σ_p (idempotence) and σ_p ∘ σ_q = σ_q ∘ σ_p.
    #[test]
    fn filter_idempotent_and_commutative(rel in relation_strategy(), a in 0i64..100, b in 0i64..100) {
        let p = |r: &RelationF| filter_expr(r, "score > $a", Params::new().set("a", a)).unwrap();
        let q = |r: &RelationF| filter_expr(r, "score < $b", Params::new().set("b", b)).unwrap();
        let once = p(&rel);
        let twice = p(&once);
        prop_assert_eq!(once.len(), twice.len());
        prop_assert_eq!(once.stored_keys(), twice.stored_keys());
        let pq = q(&p(&rel));
        let qp = p(&q(&rel));
        prop_assert_eq!(pq.stored_keys(), qp.stored_keys());
    }

    /// Grouping partitions: group sizes sum to the relation size, and
    /// every member carries its group's key value.
    #[test]
    fn group_partitions(rel in relation_strategy()) {
        prop_assume!(!rel.is_empty());
        let g = group(&rel, &["tag"]).unwrap();
        let total: usize = g.iter().map(|(_, members)| members.len()).sum();
        prop_assert_eq!(total, rel.len());
        for (key, members) in g.iter() {
            for m in members {
                prop_assert_eq!(m.get("tag").unwrap(), key.clone());
            }
        }
        // count aggregate equals member count
        let counts = aggregate(&g, &[("n", AggSpec::Count)]).unwrap();
        for (key, members) in g.iter() {
            let t = counts.lookup(&key).unwrap();
            prop_assert_eq!(t.get("n").unwrap(), Value::Int(members.len() as i64));
        }
    }

    /// order_by is a permutation: same multiset of tuples, ranks 0..n,
    /// values monotone.
    #[test]
    fn order_by_permutes(rel in relation_strategy()) {
        let sorted = order_by(&rel, "score", Order::Asc).unwrap();
        prop_assert_eq!(sorted.len(), rel.len());
        let ranks: Vec<Value> = sorted.stored_keys();
        let expect: Vec<Value> = (0..rel.len() as i64).map(Value::Int).collect();
        prop_assert_eq!(ranks, expect);
        let scores: Vec<i64> = sorted
            .tuples()
            .unwrap()
            .iter()
            .map(|(_, t)| t.get("score").unwrap().as_int("s").unwrap())
            .collect();
        prop_assert!(scores.windows(2).all(|w| w[0] <= w[1]));
        // multiset equality
        let mut a: Vec<i64> = rel
            .tuples().unwrap().iter()
            .map(|(_, t)| t.get("score").unwrap().as_int("s").unwrap())
            .collect();
        a.sort_unstable();
        prop_assert_eq!(scores, a);
    }

    /// limit(k) returns min(k, n) tuples, a prefix of the input keys.
    #[test]
    fn limit_is_a_prefix(rel in relation_strategy(), k in 0usize..80) {
        let out = limit(&rel, k).unwrap();
        prop_assert_eq!(out.len(), k.min(rel.len()));
        let keys = rel.stored_keys();
        let out_keys = out.stored_keys();
        prop_assert_eq!(&keys[..out_keys.len()], &out_keys[..]);
    }

    /// semijoin + antijoin partition the relation for any key set.
    #[test]
    fn semi_anti_partition(rel in relation_strategy(), picks in prop::collection::btree_set(0i64..100, 0..20)) {
        let keys: BTreeSet<Value> = picks.into_iter().map(Value::Int).collect();
        let semi = semijoin(&rel, "score", &keys).unwrap();
        let anti = antijoin(&rel, "score", &keys).unwrap();
        prop_assert_eq!(semi.len() + anti.len(), rel.len());
        for (k, _) in semi.tuples().unwrap() {
            prop_assert!(!anti.contains_key(&k));
        }
    }

    /// DB-level set ops satisfy lattice laws on random databases:
    /// A∪A = A, A∩A = A, A−A = ∅, |A∪B| = |A| + |B−A|.
    #[test]
    fn db_setop_laws(a in relation_strategy(), b in relation_strategy()) {
        let da = DatabaseF::new("a").with_relation(a);
        let db_ = DatabaseF::new("b").with_relation(b.renamed("t"));
        let aa = union(&da, &da).unwrap();
        prop_assert_eq!(
            aa.relation("t").unwrap().len(),
            da.relation("t").unwrap().len()
        );
        let ii = intersect(&da, &da).unwrap();
        prop_assert_eq!(
            ii.relation("t").unwrap().len(),
            da.relation("t").unwrap().len()
        );
        let mm = minus(&da, &da).unwrap();
        prop_assert_eq!(mm.relation("t").unwrap().len(), 0);
        // union is left-biased on key conflicts (the result must remain a
        // function), so the size law counts B's keys absent from A:
        let u = union(&da, &db_).unwrap();
        let a_keys: BTreeSet<Value> = da.relation("t").unwrap().stored_keys().into_iter().collect();
        let b_new = db_
            .relation("t")
            .unwrap()
            .stored_keys()
            .into_iter()
            .filter(|k| !a_keys.contains(k))
            .count();
        prop_assert_eq!(
            u.relation("t").unwrap().len(),
            da.relation("t").unwrap().len() + b_new
        );
        // intersection is contained in both and disjoint from either minus
        let i = intersect(&da, &db_).unwrap();
        for (k, t) in i.relation("t").unwrap().tuples().unwrap() {
            let in_a = da.relation("t").unwrap().lookup(&k).unwrap();
            let in_b = db_.relation("t").unwrap().lookup(&k).unwrap();
            prop_assert!(t.eq_data(&in_a) && t.eq_data(&in_b));
        }
        let m = minus(&da, &db_).unwrap();
        for (k, t) in m.relation("t").unwrap().tuples().unwrap() {
            let shared = i.relation("t").unwrap().lookup(&k);
            prop_assert!(shared.is_none() || !shared.unwrap().eq_data(&t));
        }
    }

    /// extend never changes cardinality or existing attributes, and the
    /// derived attribute evaluates consistently.
    #[test]
    fn extend_preserves(rel in relation_strategy()) {
        let out = extend(&rel, "double", |t| t.get("score")?.mul(&Value::Int(2))).unwrap();
        prop_assert_eq!(out.len(), rel.len());
        for (k, t) in out.tuples().unwrap() {
            let orig = rel.lookup(&k).unwrap();
            prop_assert_eq!(t.get("score").unwrap(), orig.get("score").unwrap());
            prop_assert_eq!(
                t.get("double").unwrap(),
                orig.get("score").unwrap().mul(&Value::Int(2)).unwrap()
            );
        }
    }

    /// deep_copy round-trips: difference(db, copy) is empty.
    #[test]
    fn deep_copy_faithful(rel in relation_strategy()) {
        let db = DatabaseF::new("d").with_relation(rel);
        let copy = deep_copy(&db).unwrap();
        prop_assert!(difference(&db, &copy).unwrap().is_empty());
    }

    /// Relationship bulk construction ≡ the insert loop, mirroring the
    /// relation-side `from_sorted_equals_insert_loop`: same entries, same
    /// iteration order, same statistics — from sorted input
    /// (`RelationshipF::from_sorted`), from shuffled input (the
    /// sort-detecting `RelationshipBuilder`), and from one persistent
    /// insert at a time.
    #[test]
    fn relationship_from_sorted_equals_insert(
        pairs in prop::collection::btree_map((0i64..20, 0i64..20), 1i64..100, 0..40)
    ) {
        let participants = || {
            vec![
                Participant::new("customers", "cid", SharedDomain::new("cid", Domain::Typed(ValueType::Int))),
                Participant::new("products", "pid", SharedDomain::new("pid", Domain::Typed(ValueType::Int))),
            ]
        };
        let entries: Vec<(Vec<Value>, Arc<TupleF>)> = pairs
            .iter()
            .map(|(&(c, p), &q)| {
                (
                    vec![Value::Int(c), Value::Int(p)],
                    Arc::new(TupleF::builder("o").attr("quantity", q).build()),
                )
            })
            .collect();

        let mut reference = RelationshipF::new("order", participants());
        for (args, attrs) in &entries {
            reference = reference.insert(args, (**attrs).clone()).unwrap();
        }
        // btree_map iterates keys ascending → entries satisfy from_sorted's
        // strict ordering contract
        let bulk = RelationshipF::from_sorted("order", participants(), entries.clone()).unwrap();
        // the builder sees the entries in reversed (worst-case) order
        let mut b = RelationshipBuilder::new("order", participants());
        for (args, attrs) in entries.iter().rev() {
            b.push_arc(args, attrs.clone()).unwrap();
        }
        let built = b.build().unwrap();

        for other in [&bulk, &built] {
            prop_assert_eq!(other.len(), reference.len());
            for ((a_args, a_t), (b_args, b_t)) in other.iter().zip(reference.iter()) {
                prop_assert_eq!(&a_args, &b_args);
                prop_assert!(a_t.eq_data(&b_t));
            }
            prop_assert_eq!(other.stats().entries(), reference.stats().entries());
            for pos in 0..2 {
                prop_assert_eq!(other.stats().distinct(pos), reference.stats().distinct(pos));
            }
        }
    }

    /// The cached data-key fingerprint is indistinguishable from a
    /// from-scratch recomputation — on fresh tuples, on warmed caches,
    /// and after every random chain of attribute mutations.
    #[test]
    fn fingerprint_cache_invisible(
        rel in relation_strategy(),
        edits in prop::collection::vec((0i64..100, 0i64..100), 0..8)
    ) {
        for (key, t) in rel.tuples().unwrap() {
            // cold cache, then warm cache: both equal the uncached path
            prop_assert_eq!(t.data_key().unwrap(), t.compute_data_key().unwrap());
            prop_assert_eq!(t.data_key().unwrap(), t.compute_data_key().unwrap());
            prop_assert!(t.eq_data(&t), "reflexive at {}", key);
            // a random mutation chain never leaves a stale cache behind
            let mut cur = (*t).clone();
            for (score, extra) in &edits {
                let _ = cur.data_key(); // warm before mutating
                cur = cur.with_attr("score", *score).with_attr("extra", *extra);
                prop_assert_eq!(cur.data_key().unwrap(), cur.compute_data_key().unwrap());
            }
        }
    }
}
