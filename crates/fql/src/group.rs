//! The `group` operator (paper Fig. 4b).
//!
//! `group(by=["age"], customers)` returns — in the paper's words — "a DB
//! of relation functions representing age_groups": one relation function
//! per distinct key, all wrapped in a database function. No relational
//! grouping-into-one-table happens; each group stays a first-class
//! function.
//!
//! # Hash bucketing
//!
//! Bucketing runs on the same fingerprint-hash machinery as the tuple
//! [`DataKey`](fdm_core::DataKey) cache: group keys land in an
//! [`FxHashMap`] keyed by their 64-bit `FxHash`, so placing a tuple costs
//! one hash + one integer probe instead of the O(log g) full-`Value`
//! comparisons the previous `BTreeMap` paid per tuple. Full `Value`
//! equality is consulted **only within a hash bucket** (i.e. on hash
//! collision), so colliding-but-unequal keys still get separate groups —
//! forced and pinned by the collision tests, which stub the hash
//! constant. Output stays deterministic: groups are sorted by key once at
//! the end, reproducing the `BTreeMap` iteration order byte for byte, and
//! members keep the relation's key order.

use fdm_core::{
    par_map_chunks, DatabaseF, FdmError, FnValue, FxHashMap, Name, ParConfig, RelationBuilder,
    RelationF, Result, TupleF, Value,
};
use std::sync::Arc;

/// The result of `group`: the groups, keyed by their grouping value.
///
/// Internally a multi-body relation function (key → set of tuples), which
/// *is* the FDM representation of grouping (the same shape as a non-unique
/// index, §2.4). [`Groups::to_database`] provides the paper's DB-of-
/// relation-functions costume.
#[derive(Clone, Debug)]
pub struct Groups {
    by: Arc<[Name]>,
    /// multi relation: group key → member tuples
    groups: RelationF,
    source_name: Name,
}

impl Groups {
    /// The grouping attributes.
    pub fn by(&self) -> &[Name] {
        &self.by
    }

    /// Number of distinct groups.
    pub fn group_count(&self) -> usize {
        self.groups.stored_keys().len()
    }

    /// The distinct group keys in sorted order.
    pub fn keys(&self) -> Vec<Value> {
        self.groups.stored_keys()
    }

    /// The members of one group.
    pub fn members(&self, key: &Value) -> Vec<Arc<TupleF>> {
        self.groups.lookup_all(key)
    }

    /// Iterates `(key, members)` pairs in key order (one O(n) walk over
    /// the stored groups; no per-key lookup).
    pub fn iter(&self) -> impl Iterator<Item = (Value, Vec<Arc<TupleF>>)> + '_ {
        self.groups.iter_groups().map(|(k, g)| (k, g.to_vec()))
    }

    /// The underlying multi-body relation function.
    pub fn as_relation(&self) -> &RelationF {
        &self.groups
    }

    /// The paper's costume: a database function with one relation function
    /// per group, named `"<source>[<by>=<key>]"`.
    pub fn to_database(&self) -> DatabaseF {
        let mut db = DatabaseF::new(format!("{}_groups", self.source_name));
        for (key, members) in self.iter() {
            let name = format!("{}[{}={}]", self.source_name, self.by_label(), key);
            let mut rel = RelationBuilder::new(&name, &["i"]);
            for (i, t) in members.into_iter().enumerate() {
                rel.push_arc(Value::Int(i as i64), t);
            }
            let rel = rel.build().expect("fresh sequential keys");
            db = db.with_entry(&name, FnValue::from(rel));
        }
        db
    }

    fn by_label(&self) -> String {
        self.by
            .iter()
            .map(|n| n.as_ref())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Groups a relation function by the named attributes
/// (`group(by=["age"], customers)` — Fig. 4b).
///
/// Multi-attribute keys become `Value::List`s.
pub fn group(rel: &RelationF, by: &[&str]) -> Result<Groups> {
    if by.is_empty() {
        return Err(FdmError::Other(
            "group: 'by' must name at least one attribute (use aggregate for a global fold)"
                .to_string(),
        ));
    }
    group_fn_named(rel, by, |t| {
        let mut vals = Vec::with_capacity(by.len());
        for attr in by {
            vals.push(t.get(attr)?);
        }
        Ok(if vals.len() == 1 {
            vals.pop().expect("one")
        } else {
            Value::list(vals)
        })
    })
}

/// Groups by an arbitrary key function over tuple functions
/// (`group(lambda prof: prof.age, customers)` — Fig. 4b, first variant).
/// `key` must be `Sync`: large inputs evaluate it in parallel chunks.
pub fn group_fn(rel: &RelationF, key: impl Fn(&TupleF) -> Result<Value> + Sync) -> Result<Groups> {
    group_fn_named(rel, &["key"], key)
}

/// The default bucket hash: [`Value::fx_hash`] — the one shared hash the
/// tuple fingerprint cache and the distinct-count sketches also use.
fn fx_hash_value(v: &Value) -> u64 {
    v.fx_hash()
}

/// [`group_fn`] with an explicit bucket-hash function.
///
/// Exists so tests can **force hash collisions** (e.g. `|_| 0`) and prove
/// the bucketing still separates unequal keys purely by `Value` equality;
/// production callers always go through [`group_fn`], which uses `FxHash`.
#[doc(hidden)]
pub fn group_fn_with_hasher(
    rel: &RelationF,
    key: impl Fn(&TupleF) -> Result<Value> + Sync,
    hash: impl Fn(&Value) -> u64,
) -> Result<Groups> {
    group_fn_hashed(rel, &["key"], key, hash)
}

fn group_fn_named(
    rel: &RelationF,
    by: &[&str],
    key: impl Fn(&TupleF) -> Result<Value> + Sync,
) -> Result<Groups> {
    group_fn_hashed(rel, by, key, fx_hash_value)
}

/// One grouping bucket: a distinct key with its members in input order.
type KeyedGroup = (Value, Vec<Arc<TupleF>>);

fn group_fn_hashed(
    rel: &RelationF,
    by: &[&str],
    key: impl Fn(&TupleF) -> Result<Value> + Sync,
    hash: impl Fn(&Value) -> u64,
) -> Result<Groups> {
    let entries = rel.tuples()?;
    let cfg = ParConfig::from_env();
    // hash → the distinct keys sharing it (almost always exactly one),
    // each with its members in input order. Placement costs one hash and
    // one integer probe; the full `Value` compare runs only against keys
    // in the same (usually singleton) bucket.
    let mut buckets: FxHashMap<u64, Vec<KeyedGroup>> =
        FxHashMap::with_capacity_and_hasher(entries.len().min(1024), Default::default());
    let mut place = |k: Value, tuple: Arc<TupleF>| {
        let bucket = buckets.entry(hash(&k)).or_default();
        match bucket.iter_mut().find(|(bk, _)| *bk == k) {
            Some((_, members)) => members.push(tuple),
            None => bucket.push((k, vec![tuple])),
        }
    };
    if cfg.should_parallelize(entries.len()) {
        // Key evaluation is the per-entry work; bucket membership order
        // must stay the relation's key order, so chunks (contiguous, in
        // order) compute (group_key, tuple) pairs and the buckets fill in
        // chunk order — byte-identical to the sequential pass, including
        // which error surfaces first.
        let runs = par_map_chunks(
            &entries,
            cfg.threads,
            |chunk| -> Result<Vec<(Value, Arc<TupleF>)>> {
                chunk
                    .iter()
                    .map(|(_, tuple)| Ok((key(tuple)?, tuple.clone())))
                    .collect()
            },
        );
        for run in runs {
            for (k, tuple) in run? {
                place(k, tuple);
            }
        }
    } else {
        for (_, tuple) in entries {
            let k = key(&tuple)?;
            place(k, tuple);
        }
    }
    // one final sort over the (few) distinct keys restores the
    // deterministic key order the BTreeMap used to provide
    let mut groups: Vec<(Value, Vec<Arc<TupleF>>)> = buckets.into_values().flatten().collect();
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    let groups = RelationF::from_groups(format!("{}_groups", rel.name()), by, groups);
    Ok(Groups {
        by: by.iter().map(|b| Name::from(*b)).collect(),
        groups,
        source_name: Name::from(rel.name()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> RelationF {
        let mut rel = RelationF::new("customers", &["cid"]);
        for (cid, name, age, state) in [
            (1, "Alice", 43, "NY"),
            (2, "Bob", 30, "NY"),
            (3, "Carol", 43, "CA"),
            (4, "Dave", 30, "CA"),
            (5, "Eve", 43, "NY"),
        ] {
            rel = rel
                .insert(
                    Value::Int(cid),
                    TupleF::builder(format!("c{cid}"))
                        .attr("name", name)
                        .attr("age", age)
                        .attr("state", state)
                        .build(),
                )
                .unwrap();
        }
        rel
    }

    #[test]
    fn group_by_single_attribute() {
        let g = group(&customers(), &["age"]).unwrap();
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.keys(), vec![Value::Int(30), Value::Int(43)]);
        assert_eq!(g.members(&Value::Int(43)).len(), 3);
        assert_eq!(g.members(&Value::Int(30)).len(), 2);
        assert!(g.members(&Value::Int(99)).is_empty());
    }

    #[test]
    fn group_by_multiple_attributes() {
        let g = group(&customers(), &["age", "state"]).unwrap();
        assert_eq!(g.group_count(), 4);
        let k = Value::list([Value::Int(43), Value::str("NY")]);
        assert_eq!(g.members(&k).len(), 2, "Alice and Eve");
    }

    #[test]
    fn group_fn_arbitrary_key() {
        // group by age decade
        let g = group_fn(&customers(), |t| {
            let age = t.get("age")?.as_int("age")?;
            Ok(Value::Int(age / 10))
        })
        .unwrap();
        assert_eq!(g.keys(), vec![Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn to_database_yields_one_relation_per_group() {
        // the paper's "DB of relation functions representing age_groups"
        let g = group(&customers(), &["age"]).unwrap();
        let db = g.to_database();
        assert_eq!(db.len(), 2);
        let r43 = db.relation("customers[age=43]").unwrap();
        assert_eq!(r43.len(), 3);
        // each group is a full relation function, queryable like any other
        let first = r43.lookup(&Value::Int(0)).unwrap();
        assert_eq!(first.get("age").unwrap(), Value::Int(43));
    }

    #[test]
    fn empty_by_is_an_error() {
        assert!(group(&customers(), &[]).is_err());
    }

    #[test]
    fn missing_attribute_errors() {
        let err = group(&customers(), &["nope"]).unwrap_err();
        assert!(err.to_string().contains("no attribute"), "{err}");
    }

    #[test]
    fn groups_on_empty_relation() {
        let empty = RelationF::new("none", &["id"]);
        let g = group(&empty, &["x"]).unwrap();
        assert_eq!(g.group_count(), 0);
        assert!(g.to_database().is_empty());
    }

    /// The `BTreeMap` idiom hash bucketing replaced, kept as the oracle.
    fn btreemap_baseline(
        rel: &RelationF,
        key: impl Fn(&TupleF) -> Result<Value>,
    ) -> Vec<(Value, Vec<Arc<TupleF>>)> {
        let mut buckets: std::collections::BTreeMap<Value, Vec<Arc<TupleF>>> = Default::default();
        for (_, t) in rel.tuples().unwrap() {
            buckets.entry(key(&t).unwrap()).or_default().push(t);
        }
        buckets.into_iter().collect()
    }

    fn assert_matches_baseline(g: &Groups, baseline: &[(Value, Vec<Arc<TupleF>>)]) {
        let got: Vec<(Value, Vec<Arc<TupleF>>)> = g.iter().collect();
        assert_eq!(got.len(), baseline.len(), "group count");
        for ((gk, gm), (bk, bm)) in got.iter().zip(baseline) {
            assert_eq!(gk, bk, "key order");
            assert_eq!(gm.len(), bm.len(), "member count under {gk}");
            for (a, b) in gm.iter().zip(bm) {
                assert!(Arc::ptr_eq(a, b), "member identity and order under {gk}");
            }
        }
    }

    #[test]
    fn hash_bucketing_matches_btreemap_baseline() {
        let rel = customers();
        let key = |t: &TupleF| t.get("age");
        let g = group_fn(&rel, key).unwrap();
        assert_matches_baseline(&g, &btreemap_baseline(&rel, key));
    }

    #[test]
    fn cross_type_numeric_keys_group_together() {
        // Int(2^53 + 1) and Float(2^53) compare equal as `Value`s (the
        // int rounds to the float in the cross-numeric arm); the hash
        // buckets must agree with that equality and produce ONE group
        // with both members, exactly like the BTreeMap baseline.
        let rel = RelationF::new("r", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("a")
                    .attr("k", Value::Int((1i64 << 53) + 1))
                    .build(),
            )
            .unwrap()
            .insert(
                Value::Int(2),
                TupleF::builder("b")
                    .attr("k", Value::Float((1i64 << 53) as f64))
                    .build(),
            )
            .unwrap();
        let key = |t: &TupleF| t.get("k");
        let g = group_fn(&rel, key).unwrap();
        assert_eq!(g.group_count(), 1, "Eq-equal keys share a group");
        assert_eq!(g.iter().next().unwrap().1.len(), 2, "no member dropped");
        assert_matches_baseline(&g, &btreemap_baseline(&rel, key));
    }

    #[test]
    fn forced_hash_collisions_still_separate_unequal_keys() {
        // A constant hash lands every key in one bucket: separation now
        // rests entirely on the full-`Value` compare inside the bucket.
        let rel = customers();
        let key = |t: &TupleF| t.get("age");
        let collided = group_fn_with_hasher(&rel, key, |_| 0).unwrap();
        assert_eq!(collided.group_count(), 2, "30 and 43 stay separate");
        assert_matches_baseline(&collided, &btreemap_baseline(&rel, key));
        // and the collided output is identical to the production FxHash one
        let normal = group_fn(&rel, key).unwrap();
        assert_eq!(collided.keys(), normal.keys());
        for k in collided.keys() {
            assert_eq!(collided.members(&k).len(), normal.members(&k).len());
        }
    }
}
