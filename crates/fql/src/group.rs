//! The `group` operator (paper Fig. 4b).
//!
//! `group(by=["age"], customers)` returns — in the paper's words — "a DB
//! of relation functions representing age_groups": one relation function
//! per distinct key, all wrapped in a database function. No relational
//! grouping-into-one-table happens; each group stays a first-class
//! function.

use fdm_core::{
    par_map_chunks, DatabaseF, FdmError, FnValue, Name, ParConfig, RelationBuilder, RelationF,
    Result, TupleF, Value,
};
use std::sync::Arc;

/// The result of `group`: the groups, keyed by their grouping value.
///
/// Internally a multi-body relation function (key → set of tuples), which
/// *is* the FDM representation of grouping (the same shape as a non-unique
/// index, §2.4). [`Groups::to_database`] provides the paper's DB-of-
/// relation-functions costume.
#[derive(Clone, Debug)]
pub struct Groups {
    by: Arc<[Name]>,
    /// multi relation: group key → member tuples
    groups: RelationF,
    source_name: Name,
}

impl Groups {
    /// The grouping attributes.
    pub fn by(&self) -> &[Name] {
        &self.by
    }

    /// Number of distinct groups.
    pub fn group_count(&self) -> usize {
        self.groups.stored_keys().len()
    }

    /// The distinct group keys in sorted order.
    pub fn keys(&self) -> Vec<Value> {
        self.groups.stored_keys()
    }

    /// The members of one group.
    pub fn members(&self, key: &Value) -> Vec<Arc<TupleF>> {
        self.groups.lookup_all(key)
    }

    /// Iterates `(key, members)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Value, Vec<Arc<TupleF>>)> + '_ {
        self.keys().into_iter().map(|k| {
            let m = self.members(&k);
            (k, m)
        })
    }

    /// The underlying multi-body relation function.
    pub fn as_relation(&self) -> &RelationF {
        &self.groups
    }

    /// The paper's costume: a database function with one relation function
    /// per group, named `"<source>[<by>=<key>]"`.
    pub fn to_database(&self) -> DatabaseF {
        let mut db = DatabaseF::new(format!("{}_groups", self.source_name));
        for (key, members) in self.iter() {
            let name = format!("{}[{}={}]", self.source_name, self.by_label(), key);
            let mut rel = RelationBuilder::new(&name, &["i"]);
            for (i, t) in members.into_iter().enumerate() {
                rel.push_arc(Value::Int(i as i64), t);
            }
            let rel = rel.build().expect("fresh sequential keys");
            db = db.with_entry(&name, FnValue::from(rel));
        }
        db
    }

    fn by_label(&self) -> String {
        self.by
            .iter()
            .map(|n| n.as_ref())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Groups a relation function by the named attributes
/// (`group(by=["age"], customers)` — Fig. 4b).
///
/// Multi-attribute keys become `Value::List`s.
pub fn group(rel: &RelationF, by: &[&str]) -> Result<Groups> {
    if by.is_empty() {
        return Err(FdmError::Other(
            "group: 'by' must name at least one attribute (use aggregate for a global fold)"
                .to_string(),
        ));
    }
    group_fn_named(rel, by, |t| {
        let mut vals = Vec::with_capacity(by.len());
        for attr in by {
            vals.push(t.get(attr)?);
        }
        Ok(if vals.len() == 1 {
            vals.pop().expect("one")
        } else {
            Value::list(vals)
        })
    })
}

/// Groups by an arbitrary key function over tuple functions
/// (`group(lambda prof: prof.age, customers)` — Fig. 4b, first variant).
/// `key` must be `Sync`: large inputs evaluate it in parallel chunks.
pub fn group_fn(rel: &RelationF, key: impl Fn(&TupleF) -> Result<Value> + Sync) -> Result<Groups> {
    group_fn_named(rel, &["key"], key)
}

fn group_fn_named(
    rel: &RelationF,
    by: &[&str],
    key: impl Fn(&TupleF) -> Result<Value> + Sync,
) -> Result<Groups> {
    let entries = rel.tuples()?;
    let cfg = ParConfig::from_env();
    let mut buckets: std::collections::BTreeMap<Value, Vec<Arc<TupleF>>> =
        std::collections::BTreeMap::new();
    if cfg.should_parallelize(entries.len()) {
        // Key evaluation is the per-entry work; bucket membership order
        // must stay the relation's key order, so chunks (contiguous, in
        // order) compute (group_key, tuple) pairs and the buckets fill in
        // chunk order — byte-identical to the sequential pass, including
        // which error surfaces first.
        let runs = par_map_chunks(
            &entries,
            cfg.threads,
            |chunk| -> Result<Vec<(Value, Arc<TupleF>)>> {
                chunk
                    .iter()
                    .map(|(_, tuple)| Ok((key(tuple)?, tuple.clone())))
                    .collect()
            },
        );
        for run in runs {
            for (k, tuple) in run? {
                buckets.entry(k).or_default().push(tuple);
            }
        }
    } else {
        for (_, tuple) in entries {
            let k = key(&tuple)?;
            buckets.entry(k).or_default().push(tuple);
        }
    }
    let groups = RelationF::from_groups(format!("{}_groups", rel.name()), by, buckets);
    Ok(Groups {
        by: by.iter().map(|b| Name::from(*b)).collect(),
        groups,
        source_name: Name::from(rel.name()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> RelationF {
        let mut rel = RelationF::new("customers", &["cid"]);
        for (cid, name, age, state) in [
            (1, "Alice", 43, "NY"),
            (2, "Bob", 30, "NY"),
            (3, "Carol", 43, "CA"),
            (4, "Dave", 30, "CA"),
            (5, "Eve", 43, "NY"),
        ] {
            rel = rel
                .insert(
                    Value::Int(cid),
                    TupleF::builder(format!("c{cid}"))
                        .attr("name", name)
                        .attr("age", age)
                        .attr("state", state)
                        .build(),
                )
                .unwrap();
        }
        rel
    }

    #[test]
    fn group_by_single_attribute() {
        let g = group(&customers(), &["age"]).unwrap();
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.keys(), vec![Value::Int(30), Value::Int(43)]);
        assert_eq!(g.members(&Value::Int(43)).len(), 3);
        assert_eq!(g.members(&Value::Int(30)).len(), 2);
        assert!(g.members(&Value::Int(99)).is_empty());
    }

    #[test]
    fn group_by_multiple_attributes() {
        let g = group(&customers(), &["age", "state"]).unwrap();
        assert_eq!(g.group_count(), 4);
        let k = Value::list([Value::Int(43), Value::str("NY")]);
        assert_eq!(g.members(&k).len(), 2, "Alice and Eve");
    }

    #[test]
    fn group_fn_arbitrary_key() {
        // group by age decade
        let g = group_fn(&customers(), |t| {
            let age = t.get("age")?.as_int("age")?;
            Ok(Value::Int(age / 10))
        })
        .unwrap();
        assert_eq!(g.keys(), vec![Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn to_database_yields_one_relation_per_group() {
        // the paper's "DB of relation functions representing age_groups"
        let g = group(&customers(), &["age"]).unwrap();
        let db = g.to_database();
        assert_eq!(db.len(), 2);
        let r43 = db.relation("customers[age=43]").unwrap();
        assert_eq!(r43.len(), 3);
        // each group is a full relation function, queryable like any other
        let first = r43.lookup(&Value::Int(0)).unwrap();
        assert_eq!(first.get("age").unwrap(), Value::Int(43));
    }

    #[test]
    fn empty_by_is_an_error() {
        assert!(group(&customers(), &[]).is_err());
    }

    #[test]
    fn missing_attribute_errors() {
        let err = group(&customers(), &["nope"]).unwrap_err();
        assert!(err.to_string().contains("no attribute"), "{err}");
    }

    #[test]
    fn groups_on_empty_relation() {
        let empty = RelationF::new("none", &["id"]);
        let g = group(&empty, &["x"]).unwrap();
        assert_eq!(g.group_count(), 0);
        assert!(g.to_database().is_empty());
    }
}
