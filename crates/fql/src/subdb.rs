//! Subdatabases: the ResultDB semantics (paper Fig. 5) and the
//! generalized outer join (paper Fig. 7).
//!
//! Instead of shoehorning a multi-relation query result into one
//! denormalized stream, FQL returns a **subdatabase**: the input relations
//! restricted to the tuples that participate in the join result, each as
//! its own relation function. [`reduce_db`] performs that restriction
//! (a semi-join reduction to fixpoint, the paper's \[35\] RESULTDB
//! semantics).
//!
//! [`outer`] generalizes outer joins: relations marked "outer" come back
//! as **two** relation functions — `rel.inner` (participating tuples) and
//! `rel.outer` (non-participating) — instead of NULL-padded rows. The
//! paper notes that "left"/"right" stop making sense: any subset of the n
//! participants can be marked.

use crate::filter::filter_db;
use fdm_core::{DatabaseF, FnValue, Name, RelationF, Result, Value};
use fdm_storage::PSet;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Picks a subset of entries by name (Fig. 5's
/// `filter(lambda kv: kv[0] in relations, DB)`), keeping every
/// relationship function whose participants all remain.
pub fn subdatabase(db: &DatabaseF, names: &[&str]) -> DatabaseF {
    let keep: BTreeSet<&str> = names.iter().copied().collect();
    let with_rels = filter_db(db, |name, entry| {
        keep.contains(name)
            || matches!(entry, FnValue::Relationship(r)
                if r.participants().iter().all(|p| keep.contains(p.function.as_ref())))
    });
    with_rels
}

/// The per-relation key sets that survive the semi-join fixpoint.
#[derive(Debug)]
struct ActiveKeys {
    /// relation name → surviving keys (None = relation not constrained by
    /// any relationship, keep everything). Persistent sets so each
    /// fixpoint round shrinks them with an O(n) merge intersection
    /// instead of a per-element retain.
    keys: BTreeMap<Name, PSet<Value>>,
}

/// Computes the semi-join fixpoint over all relationship functions in
/// `db`: a relationship entry survives iff every participant key exists in
/// the participant relation *and still survives*; a participant tuple
/// survives iff its key appears in some surviving entry of every
/// relationship that touches its relation.
fn semi_join_fixpoint(db: &DatabaseF) -> Result<ActiveKeys> {
    // start: every stored key of every participating relation is active
    let mut active: BTreeMap<Name, PSet<Value>> = BTreeMap::new();
    let relationships: Vec<(Name, Arc<fdm_core::RelationshipF>)> = db
        .relationships()
        .map(|(n, r)| (n.clone(), r.clone()))
        .collect();
    for (_, rsf) in &relationships {
        for p in rsf.participants() {
            if let Ok(rel) = db.relation(&p.function) {
                // stored_keys is key-ordered: the O(n) bulk set build
                active
                    .entry(p.function.clone())
                    .or_insert_with(|| PSet::from_sorted_vec(rel.stored_keys()));
            }
        }
    }
    loop {
        let mut changed = false;
        for (_, rsf) in &relationships {
            // surviving entries of this relationship
            let mut per_participant: Vec<BTreeSet<Value>> =
                vec![BTreeSet::new(); rsf.participants().len()];
            for (args, _) in rsf.iter() {
                let ok = rsf.participants().iter().zip(&args).all(|(p, arg)| {
                    active
                        .get(&p.function)
                        .map(|keys| keys.contains(arg))
                        .unwrap_or(true)
                });
                if ok {
                    for (i, arg) in args.iter().enumerate() {
                        per_participant[i].insert(arg.clone());
                    }
                }
            }
            // restrict each participant to keys seen in surviving entries:
            // an O(n) two-pointer merge intersection per participant
            for (i, p) in rsf.participants().iter().enumerate() {
                if let Some(keys) = active.get_mut(&p.function) {
                    let before = keys.len();
                    let seen = PSet::from_sorted_iter(per_participant[i].iter().cloned());
                    *keys = keys.merge_intersection(&seen);
                    if keys.len() != before {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(ActiveKeys { keys: active })
}

fn restrict_relation(rel: &RelationF, keep: &PSet<Value>) -> Result<RelationF> {
    // iter_stored is key-ordered → the builder's no-sort bulk path
    let mut out = rel.builder_like();
    for (key, tuple) in rel.iter_stored() {
        if keep.contains(&key) {
            out.push_arc(key, tuple);
        }
    }
    out.build()
}

/// `reduce_DB` (Fig. 5): returns the subdatabase in which every relation
/// holds exactly the tuples that participate in the (n-ary) join implied
/// by the relationship functions, and every relationship holds exactly
/// the surviving entries. The output schema *is* the input schema — the
/// result is a database, not a flattened table.
pub fn reduce_db(db: &DatabaseF) -> Result<DatabaseF> {
    let active = semi_join_fixpoint(db)?;
    let mut out = DatabaseF::new(format!("{}_reduced", db.name()));
    for (name, entry) in db.iter() {
        match entry {
            FnValue::Relation(rel) => match active.keys.get(name) {
                Some(keep) => {
                    out =
                        out.with_entry(name.as_ref(), FnValue::from(restrict_relation(rel, keep)?));
                }
                None => {
                    out = out.with_entry(name.as_ref(), entry.clone());
                }
            },
            FnValue::Relationship(rsf) => {
                let mut reduced =
                    fdm_core::RelationshipF::new(rsf.name(), rsf.participants().to_vec());
                for (args, attrs) in rsf.iter() {
                    let ok = rsf.participants().iter().zip(&args).all(|(p, arg)| {
                        active
                            .keys
                            .get(&p.function)
                            .map(|keys| keys.contains(arg))
                            .unwrap_or(true)
                    });
                    if ok {
                        reduced = reduced.insert(&args, (*attrs).clone())?;
                    }
                }
                out = out.with_entry(name.as_ref(), FnValue::from(reduced));
            }
            other => {
                out = out.with_entry(name.as_ref(), other.clone());
            }
        }
    }
    for (_, d) in db.shared_domains() {
        out = out.with_domain(d.clone());
    }
    Ok(out)
}

/// The generalized outer join (Fig. 7): like [`reduce_db`], but every
/// relation named in `outer_marked` is returned as **two** entries:
/// `"<rel>.inner"` (tuples that participate in the join) and
/// `"<rel>.outer"` (tuples that do not). No NULL padding anywhere.
pub fn outer(db: &DatabaseF, outer_marked: &[&str]) -> Result<DatabaseF> {
    let marked: BTreeSet<&str> = outer_marked.iter().copied().collect();
    let active = semi_join_fixpoint(db)?;
    let mut out = DatabaseF::new(format!("{}_outer", db.name()));
    for (name, entry) in db.iter() {
        match entry {
            FnValue::Relation(rel) if marked.contains(name.as_ref()) => {
                let keep = active.keys.get(name).cloned().unwrap_or_default();
                let inner = restrict_relation(rel, &keep)?.renamed(format!("{name}.inner"));
                let all = PSet::from_sorted_vec(rel.stored_keys());
                let outer_keys = all.merge_difference(&keep);
                let outer_rel =
                    restrict_relation(rel, &outer_keys)?.renamed(format!("{name}.outer"));
                out = out
                    .with_entry(format!("{name}.inner"), FnValue::from(inner))
                    .with_entry(format!("{name}.outer"), FnValue::from(outer_rel));
            }
            FnValue::Relation(rel) => match active.keys.get(name) {
                Some(keep) => {
                    out =
                        out.with_entry(name.as_ref(), FnValue::from(restrict_relation(rel, keep)?));
                }
                None => out = out.with_entry(name.as_ref(), entry.clone()),
            },
            other => {
                out = out.with_entry(name.as_ref(), other.clone());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::retail_db;

    #[test]
    fn fig5_subdatabase_picks_relations_and_relationships() {
        let db = retail_db();
        let sub = subdatabase(&db, &["order", "products", "customers"]);
        assert!(sub.contains("products"));
        assert!(sub.contains("customers"));
        assert!(
            sub.contains("order"),
            "relationship kept: participants present"
        );
        let sub2 = subdatabase(&db, &["products"]);
        assert!(
            !sub2.contains("order"),
            "relationship dropped: customers missing"
        );
    }

    #[test]
    fn fig5_reduce_db_keeps_only_participating_tuples() {
        let db = retail_db();
        // retail_db: customers {1 Alice, 2 Bob, 3 Carol}, products {10, 11, 12},
        // orders {(1,10),(1,11),(2,10)} → Carol and product 12 do not participate.
        let reduced = reduce_db(&db).unwrap();
        let customers = reduced.relation("customers").unwrap();
        assert_eq!(customers.len(), 2);
        assert!(
            customers.lookup(&Value::Int(3)).is_none(),
            "Carol reduced away"
        );
        let products = reduced.relation("products").unwrap();
        assert_eq!(products.len(), 2);
        assert!(products.lookup(&Value::Int(12)).is_none());
        let order = reduced.relationship("order").unwrap();
        assert_eq!(order.len(), 3, "all orders reference live tuples");
        // Crucially: the result is STILL A DATABASE — normalized, no
        // duplication. Alice appears once even though she has two orders.
        assert_eq!(reduced.total_tuples(), 2 + 2 + 3);
    }

    #[test]
    fn reduce_db_cascades_through_chains() {
        // chain: customers —order— products, plus a dangling order
        let db = retail_db();
        let order = db.relationship("order").unwrap();
        // remove all orders touching product 10 → customer 2 (Bob) only
        // ordered product 10, so Bob must cascade away too.
        let order2 = order.remove(&[Value::Int(1), Value::Int(10)]).unwrap();
        let order2 = order2.remove(&[Value::Int(2), Value::Int(10)]).unwrap();
        let db = db.with_relationship(order2);
        let reduced = reduce_db(&db).unwrap();
        assert_eq!(
            reduced.relation("customers").unwrap().len(),
            1,
            "only Alice"
        );
        assert_eq!(
            reduced.relation("products").unwrap().len(),
            1,
            "only product 11"
        );
        assert_eq!(reduced.relationship("order").unwrap().len(), 1);
    }

    #[test]
    fn fig7_outer_separates_inner_from_outer() {
        let db = retail_db();
        let out = outer(&db, &["products"]).unwrap();
        let sold = out.relation("products.inner").unwrap();
        let unsold = out.relation("products.outer").unwrap();
        assert_eq!(sold.len(), 2);
        assert_eq!(unsold.len(), 1);
        assert!(unsold.lookup(&Value::Int(12)).is_some());
        // no NULLs were manufactured: each side is a plain relation
        // function with the products schema.
        let (_, t) = unsold.tuples().unwrap().remove(0);
        assert!(t.has_attr("name"));
        assert_eq!(t.attr_count(), 2, "name + price, nothing padded");
        // inner+outer partition the original
        assert_eq!(
            sold.len() + unsold.len(),
            db.relation("products").unwrap().len()
        );
    }

    #[test]
    fn fig7_multiple_relations_marked() {
        let db = retail_db();
        let out = outer(&db, &["products", "customers"]).unwrap();
        assert!(out.contains("products.inner"));
        assert!(out.contains("products.outer"));
        assert!(out.contains("customers.inner"));
        assert!(out.contains("customers.outer"));
        assert_eq!(out.relation("customers.outer").unwrap().len(), 1, "Carol");
    }

    #[test]
    fn reduce_db_without_relationships_is_identity_on_relations() {
        let db = DatabaseF::new("plain").with_relation(crate::testutil::customers_relation());
        let reduced = reduce_db(&db).unwrap();
        assert_eq!(
            reduced.relation("customers").unwrap().len(),
            db.relation("customers").unwrap().len()
        );
    }
}
