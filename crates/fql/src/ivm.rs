//! Incremental view maintenance: a materialized query result kept
//! current by **delta propagation** instead of recomputation.
//!
//! [`MaintainedView`] compiles a [`Query`] once (through
//! [`Optimizer::default`], so the maintained plan is the plan ad-hoc
//! evaluation would run) into a tree of maintenance nodes, each holding
//! its operator's materialized output plus whatever auxiliary state its
//! delta rule needs. Feeding a base-table [`DbDelta`] into
//! [`MaintainedView::apply`] walks the tree bottom-up; every node
//! translates its input's row changes into its own and batches them into
//! its output through the PR 2 merge machinery
//! ([`fdm_storage::PMap::merge_union`] / difference — one O(n + m) merge
//! per node per delta, never a rebuild).
//!
//! Per-operator delta rules:
//!
//! * **scan** — base changes pass through the same key-inlining the
//!   executor's [`with_inlined_keys`] applies, one tuple at a time;
//! * **filter** — re-evaluates the predicate on changed tuples only;
//! * **project** — projects changed tuples only;
//! * **join** — relies on the executor's canonical-row-id contract
//!   (output keys `[fingerprint hash, rank]` are a pure function of the
//!   produced row *multiset*): the node keeps per-key hash bindings on
//!   both sides plus the provenance of every output row, recomputes only
//!   the probe results of *dirty* left keys, and re-ranks only the hash
//!   buckets those rows touch;
//! * **group/aggregate** — keeps each group's member set keyed by the
//!   grouping value; only *dirty* groups re-aggregate (counted in
//!   [`IvmStats::dirty_groups`]);
//! * **order-by / limit** — no delta rule: when their input changed they
//!   fall back to a *scoped recompute* (re-running just that operator
//!   over its incrementally-maintained input), counted in
//!   [`IvmStats::fallback_recomputes`]. A wholesale entry rebind
//!   ([`EntryDelta::Replaced`]) likewise falls back at the affected scan
//!   or join, so correctness never depends on delta-rule coverage.
//!
//! The differential-oracle suite (`tests/tests/view_maintenance.rs`)
//! pins every rule against full recomputation; `docs/VIEWS.md` documents
//! the contract.

use crate::aggregate::AggSpec;
use crate::filter::{key_attr_strs, with_inlined_keys};
use crate::optimizer::Optimizer;
use crate::plan::Query;
use crate::setops::key_map;
use crate::transform::{self, Order};
use fdm_core::delta::{diff_relations, DbDelta, EntryDelta, TupleChange};
use fdm_core::{
    DatabaseF, FdmError, FxHashMap, Name, RelationBuilder, RelationF, Result, TupleF, Value,
};
use fdm_expr::{eval_predicate, Expr};
use fdm_storage::PMap;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Maintenance counters: how much work delta propagation actually did,
/// and how often it had to fall back to scoped recomputation.
#[derive(Debug, Default, Clone)]
pub struct IvmStats {
    /// Number of [`MaintainedView::apply`] calls.
    pub deltas_applied: u64,
    /// Total output-row changes emitted by the root operator.
    pub rows_changed: u64,
    /// Groups re-aggregated across all group/aggregate nodes.
    pub dirty_groups: u64,
    /// Scoped recomputes: operators without a delta rule (order-by,
    /// limit) re-running over their maintained input, plus scans/joins
    /// recovering from a wholesale entry rebind.
    pub fallback_recomputes: u64,
}

/// Group/aggregate state: group key → (input key → member tuple).
/// Both levels iterate in ascending key order, so re-aggregated folds
/// visit members in exactly the order the batch operator does.
type GroupState = BTreeMap<Value, BTreeMap<Value, Arc<TupleF>>>;

/// Join state: the cached (key-inlined) right side, hash bindings from
/// join value to the keys carrying it on each side, the provenance of
/// every emitted output row, and the canonical-row-id buckets.
#[derive(Clone)]
struct JoinState {
    /// Right side with key attributes inlined, kept current from deltas.
    right: RelationF,
    right_key_names: Vec<Name>,
    /// join value → right-side keys holding it.
    right_idx: FxHashMap<Value, Vec<Value>>,
    /// join value → left-side keys holding it.
    left_idx: FxHashMap<Value, Vec<Value>>,
    /// left key → the output rows its probe produced.
    provenance: FxHashMap<Value, Vec<Arc<TupleF>>>,
    /// fingerprint hash → output rows (the canonical-id multiset).
    buckets: FxHashMap<u64, Vec<Arc<TupleF>>>,
}

/// An operator without a delta rule, maintained by scoped recompute.
#[derive(Clone)]
enum FallbackOp {
    OrderBy { attr: String, order: Order },
    Limit { k: usize },
}

/// One maintenance node: the operator, its materialized output, and its
/// delta state.
#[derive(Clone)]
enum Node {
    Scan {
        rel: String,
        key_names: Vec<Name>,
        out: RelationF,
    },
    Filter {
        input: Box<Node>,
        pred: Expr,
        out: RelationF,
    },
    Project {
        input: Box<Node>,
        attrs: Vec<String>,
        out: RelationF,
    },
    Join {
        input: Box<Node>,
        rel: String,
        input_attr: String,
        rel_attr: String,
        state: Box<JoinState>,
        out: RelationF,
    },
    GroupAgg {
        input: Box<Node>,
        by: Vec<String>,
        aggs: Vec<(String, AggSpec)>,
        state: GroupState,
        out: RelationF,
    },
    Fallback {
        input: Box<Node>,
        op: FallbackOp,
        out: RelationF,
    },
}

/// Batches a node's output changes into its materialized relation via
/// the sorted-merge setops: one `merge_union` for inserts/updates, one
/// `merge_difference` for removes — O(n + m), structure-shared with the
/// previous output, never a rebuild.
fn apply_changes(out: &RelationF, changes: &[TupleChange]) -> Result<RelationF> {
    if changes.is_empty() {
        return Ok(out.clone());
    }
    let base = key_map(out)?;
    let mut sorted: Vec<&TupleChange> = changes.iter().collect();
    sorted.sort_by(|a, b| a.key.cmp(&b.key));
    let mut ups: Vec<(Value, Arc<TupleF>)> = Vec::new();
    let mut dels: Vec<(Value, Arc<TupleF>)> = Vec::new();
    for c in sorted {
        match (&c.new, &c.old) {
            (Some(t), _) => ups.push((c.key.clone(), t.clone())),
            (None, Some(t)) => dels.push((c.key.clone(), t.clone())),
            (None, None) => {}
        }
    }
    // left-biased union: a changed key's new tuple wins over the old one
    let mut merged = PMap::from_sorted_vec(ups).merge_union(&base);
    if !dels.is_empty() {
        merged = merged.merge_difference_with(&PMap::from_sorted_vec(dels), |_, _, _| None);
    }
    Ok(RelationF::from_stored_map(
        out.name(),
        &key_attr_strs(out),
        merged,
    ))
}

/// The per-tuple half of [`with_inlined_keys`]: returns the tuple with
/// its key attribute(s) inlined, sharing the input when nothing is
/// missing.
fn inline_tuple(key: &Value, tuple: &Arc<TupleF>, key_names: &[Name]) -> Arc<TupleF> {
    match (key, key_names.len()) {
        (Value::List(parts), n) if n > 1 && parts.len() == n => {
            if key_names.iter().all(|name| tuple.has_attr(name)) {
                return tuple.clone();
            }
            let mut t = (**tuple).clone();
            for (name, v) in key_names.iter().zip(parts.iter()) {
                if !t.has_attr(name) {
                    t = t.with_attr(name.as_ref(), v.clone());
                }
            }
            Arc::new(t)
        }
        (v, 1) if !tuple.has_attr(&key_names[0]) => Arc::new(
            (**tuple)
                .clone()
                .with_attr(key_names[0].as_ref(), v.clone()),
        ),
        _ => tuple.clone(),
    }
}

/// The batch group-key rule: the single by-value, or a `Value::List` of
/// them for composite groupings.
fn group_key(t: &TupleF, by: &[String]) -> Result<Value> {
    let mut vals = Vec::with_capacity(by.len());
    for attr in by {
        vals.push(t.get(attr)?);
    }
    Ok(if vals.len() == 1 {
        vals.pop().expect("one")
    } else {
        Value::list(vals)
    })
}

/// Re-aggregates one group, reproducing the batch operator's output
/// tuple exactly (name, by-attributes, aggregate attributes, member
/// fold order).
fn agg_tuple_for(
    key: &Value,
    by: &[String],
    aggs: &[(String, AggSpec)],
    members: &[Arc<TupleF>],
) -> Result<TupleF> {
    let mut t = TupleF::builder(format!("agg[{key}]"));
    match (key, by.len()) {
        (Value::List(parts), n) if n > 1 => {
            for (name, v) in by.iter().zip(parts.iter()) {
                t = t.attr(name.as_str(), v.clone());
            }
        }
        (v, _) => {
            t = t.attr(by[0].as_str(), v.clone());
        }
    }
    for (name, spec) in aggs {
        t = t.attr(name.as_str(), spec.eval(members)?);
    }
    Ok(t.build())
}

/// The probe results of one left tuple against the current right index:
/// the executor's row construction (left attributes, then the right
/// tuple's attributes qualified by relation name), one row per match.
fn probe_rows(
    lt: &Arc<TupleF>,
    input_attr: &str,
    rel: &str,
    state: &JoinState,
) -> Result<Vec<Arc<TupleF>>> {
    let jv = lt.get(input_attr)?;
    let Some(rkeys) = state.right_idx.get(&jv) else {
        return Ok(Vec::new());
    };
    let mut qual = crate::join::Qualifier::new(rel);
    let mut rows = Vec::with_capacity(rkeys.len());
    for rk in rkeys {
        let rt = state.right.lookup(rk).ok_or_else(|| {
            FdmError::Other(format!("ivm join: right index points at missing key {rk}"))
        })?;
        let mut attrs = lt.materialize()?;
        qual.qualify(&rt, &mut attrs)?;
        rows.push(Arc::new(TupleF::from_parts("j", attrs)));
    }
    Ok(rows)
}

/// A hash bucket's rows in canonical rank order: singleton buckets keep
/// their row at rank 0, colliding buckets order by the full canonical
/// data key — the executor's rank rule.
fn ranked(bucket: &[Arc<TupleF>]) -> Result<Vec<Arc<TupleF>>> {
    let mut sorted = bucket.to_vec();
    if sorted.len() > 1 {
        for t in &sorted {
            t.fingerprint()?; // cache (and surface errors) before sorting
        }
        sorted.sort_by(|a, b| {
            let ka = a.fingerprint().expect("cached above").value();
            let kb = b.fingerprint().expect("cached above").value();
            ka.cmp(kb)
        });
    }
    Ok(sorted)
}

/// The canonical-row-id key for `(hash, rank)` — the executor's join
/// output key shape.
fn row_key(hash: u64, rank: usize) -> Value {
    Value::list([Value::Int(hash as i64), Value::Int(rank as i64)])
}

/// Builds the full join output from the bucket multiset — used at
/// registration and on fallback rebuilds; incremental applies only
/// re-rank dirty buckets.
fn join_out(buckets: &FxHashMap<u64, Vec<Arc<TupleF>>>) -> Result<RelationF> {
    let n: usize = buckets.values().map(Vec::len).sum();
    let mut keyed: Vec<(i64, i64, Arc<TupleF>)> = Vec::with_capacity(n);
    for (hash, bucket) in buckets {
        for (rank, t) in ranked(bucket)?.into_iter().enumerate() {
            keyed.push((*hash as i64, rank as i64, t));
        }
    }
    keyed.sort_unstable_by_key(|(hash, rank, _)| (*hash, *rank));
    let mut out = RelationBuilder::new("join", &["row"]).with_capacity(keyed.len());
    for (hash, rank, t) in keyed {
        out.push_arc(Value::list([Value::Int(hash), Value::Int(rank)]), t);
    }
    out.build()
}

/// Drops one vector entry from a hash binding, pruning empty bindings.
fn unbind(idx: &mut FxHashMap<Value, Vec<Value>>, jv: &Value, key: &Value) {
    if let Some(keys) = idx.get_mut(jv) {
        if let Some(p) = keys.iter().position(|k| k == key) {
            keys.remove(p);
        }
        if keys.is_empty() {
            idx.remove(jv);
        }
    }
}

/// Builds join state + output for the current left/right contents.
fn build_join_state(
    left: &RelationF,
    right: RelationF,
    input_attr: &str,
    rel_attr: &str,
    rel_name: &str,
) -> Result<(JoinState, RelationF)> {
    let mut state = JoinState {
        right_key_names: right.key_attrs().to_vec(),
        right,
        right_idx: FxHashMap::default(),
        left_idx: FxHashMap::default(),
        provenance: FxHashMap::default(),
        buckets: FxHashMap::default(),
    };
    for (rk, rt) in state.right.tuples()? {
        state
            .right_idx
            .entry(rt.get(rel_attr)?)
            .or_default()
            .push(rk);
    }
    for (lk, lt) in left.tuples()? {
        let jv = lt.get(input_attr)?;
        state.left_idx.entry(jv).or_default().push(lk.clone());
        let rows = probe_rows(&lt, input_attr, rel_name, &state)?;
        for row in &rows {
            let h = row.fingerprint()?.hash();
            state.buckets.entry(h).or_default().push(row.clone());
        }
        if !rows.is_empty() {
            state.provenance.insert(lk, rows);
        }
    }
    let out = join_out(&state.buckets)?;
    Ok((state, out))
}

impl Node {
    /// This node's materialized output.
    fn out(&self) -> &RelationF {
        match self {
            Node::Scan { out, .. }
            | Node::Filter { out, .. }
            | Node::Project { out, .. }
            | Node::Join { out, .. }
            | Node::GroupAgg { out, .. }
            | Node::Fallback { out, .. } => out,
        }
    }

    /// Builds the maintenance tree for `plan`, materializing every
    /// operator's output exactly as [`Query::eval`] would.
    fn build(plan: &Query, db: &DatabaseF) -> Result<Node> {
        match plan {
            Query::Scan { rel } => {
                let out = with_inlined_keys(db.relation(rel)?.as_ref())?;
                Ok(Node::Scan {
                    rel: rel.clone(),
                    key_names: out.key_attrs().to_vec(),
                    out,
                })
            }
            Query::Filter { input, pred } => {
                let child = Node::build(input, db)?;
                let out = crate::filter::filter_bound(child.out(), pred)?;
                Ok(Node::Filter {
                    input: Box::new(child),
                    pred: pred.clone(),
                    out,
                })
            }
            Query::Project { input, attrs } => {
                let child = Node::build(input, db)?;
                let keep: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let mut out = child.out().builder_like();
                for (key, tuple) in child.out().tuples()? {
                    out.push(key, tuple.project(&keep)?);
                }
                Ok(Node::Project {
                    input: Box::new(child),
                    attrs: attrs.clone(),
                    out: out.build()?,
                })
            }
            Query::Join {
                input,
                rel,
                input_attr,
                rel_attr,
            } => {
                let child = Node::build(input, db)?;
                let right = with_inlined_keys(db.relation(rel)?.as_ref())?;
                let (state, out) = build_join_state(child.out(), right, input_attr, rel_attr, rel)?;
                Ok(Node::Join {
                    input: Box::new(child),
                    rel: rel.clone(),
                    input_attr: input_attr.clone(),
                    rel_attr: rel_attr.clone(),
                    state: Box::new(state),
                    out,
                })
            }
            Query::GroupAgg { input, by, aggs } => {
                let child = Node::build(input, db)?;
                let mut state = GroupState::new();
                for (key, tuple) in child.out().tuples()? {
                    state
                        .entry(group_key(&tuple, by)?)
                        .or_default()
                        .insert(key, tuple);
                }
                let by_refs: Vec<&str> = by.iter().map(String::as_str).collect();
                let agg_refs: Vec<(&str, AggSpec)> =
                    aggs.iter().map(|(n, a)| (n.as_str(), a.clone())).collect();
                let out = crate::aggregate::group_and_aggregate(child.out(), &by_refs, &agg_refs)?;
                Ok(Node::GroupAgg {
                    input: Box::new(child),
                    by: by.clone(),
                    aggs: aggs.clone(),
                    state,
                    out,
                })
            }
            Query::OrderBy { input, attr, order } => {
                let child = Node::build(input, db)?;
                let out = transform::order_by(child.out(), attr, *order)?;
                Ok(Node::Fallback {
                    input: Box::new(child),
                    op: FallbackOp::OrderBy {
                        attr: attr.clone(),
                        order: *order,
                    },
                    out,
                })
            }
            Query::Limit { input, k } => {
                let child = Node::build(input, db)?;
                let out = transform::limit(child.out(), *k)?;
                Ok(Node::Fallback {
                    input: Box::new(child),
                    op: FallbackOp::Limit { k: *k },
                    out,
                })
            }
            Query::Invalid { message } => Err(FdmError::Expr(message.clone())),
        }
    }

    /// Propagates a base delta through this node, updating its output
    /// and returning the output's own row changes.
    fn apply(
        &mut self,
        db: &DatabaseF,
        delta: &DbDelta,
        stats: &mut IvmStats,
    ) -> Result<Vec<TupleChange>> {
        match self {
            Node::Scan {
                rel,
                key_names,
                out,
            } => match delta.entry(rel) {
                None => Ok(Vec::new()),
                Some(EntryDelta::Rows(base_changes)) => {
                    let mut changes = Vec::new();
                    for c in base_changes {
                        let old = out.lookup(&c.key);
                        let new = c.new.as_ref().map(|t| inline_tuple(&c.key, t, key_names));
                        match (&old, &new) {
                            (Some(a), Some(b)) if a.eq_data(b) => continue,
                            (None, None) => continue,
                            _ => changes.push(TupleChange {
                                key: c.key.clone(),
                                old,
                                new,
                            }),
                        }
                    }
                    *out = apply_changes(out, &changes)?;
                    Ok(changes)
                }
                Some(EntryDelta::Replaced) => {
                    let new_out = with_inlined_keys(db.relation(rel)?.as_ref())?;
                    let changes = diff_relations(out, &new_out)?;
                    *key_names = new_out.key_attrs().to_vec();
                    *out = new_out;
                    stats.fallback_recomputes += 1;
                    Ok(changes)
                }
            },
            Node::Filter { input, pred, out } => {
                let child_changes = input.apply(db, delta, stats)?;
                let mut changes = Vec::new();
                for c in &child_changes {
                    let new = match &c.new {
                        Some(t) if eval_predicate(pred, t).map_err(FdmError::from)? => {
                            Some(t.clone())
                        }
                        _ => None,
                    };
                    let old = out.lookup(&c.key);
                    match (&old, &new) {
                        (Some(a), Some(b)) if a.eq_data(b) => continue,
                        (None, None) => continue,
                        _ => changes.push(TupleChange {
                            key: c.key.clone(),
                            old,
                            new,
                        }),
                    }
                }
                *out = apply_changes(out, &changes)?;
                Ok(changes)
            }
            Node::Project { input, attrs, out } => {
                let child_changes = input.apply(db, delta, stats)?;
                let keep: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let mut changes = Vec::new();
                for c in &child_changes {
                    let new = match &c.new {
                        Some(t) => Some(Arc::new(t.project(&keep)?)),
                        None => None,
                    };
                    let old = out.lookup(&c.key);
                    match (&old, &new) {
                        (Some(a), Some(b)) if a.eq_data(b) => continue,
                        (None, None) => continue,
                        _ => changes.push(TupleChange {
                            key: c.key.clone(),
                            old,
                            new,
                        }),
                    }
                }
                *out = apply_changes(out, &changes)?;
                Ok(changes)
            }
            Node::Join {
                input,
                rel,
                input_attr,
                rel_attr,
                state,
                out,
            } => {
                let child_changes = input.apply(db, delta, stats)?;
                if matches!(delta.entry(rel), Some(EntryDelta::Replaced)) {
                    // wholesale right-side rebind: scoped rebuild of this
                    // operator from its (already maintained) input
                    let right = with_inlined_keys(db.relation(rel)?.as_ref())?;
                    let (new_state, new_out) =
                        build_join_state(input.out(), right, input_attr, rel_attr, rel)?;
                    let changes = diff_relations(out, &new_out)?;
                    **state = new_state;
                    *out = new_out;
                    stats.fallback_recomputes += 1;
                    return Ok(changes);
                }
                let mut dirty_left: BTreeSet<Value> = BTreeSet::new();
                // 1. right-side base changes: refresh the cached right
                // relation + hash bindings, dirtying every left key bound
                // to an affected join value
                if let Some(EntryDelta::Rows(base_changes)) = delta.entry(rel) {
                    let mut right_changes = Vec::new();
                    for c in base_changes {
                        let old = state.right.lookup(&c.key);
                        if let Some(ot) = &old {
                            let jv = ot.get(rel_attr)?;
                            if let Some(lks) = state.left_idx.get(&jv) {
                                dirty_left.extend(lks.iter().cloned());
                            }
                            unbind(&mut state.right_idx, &jv, &c.key);
                        }
                        let new = c
                            .new
                            .as_ref()
                            .map(|t| inline_tuple(&c.key, t, &state.right_key_names));
                        if let Some(nt) = &new {
                            if let Some(ot) = &old {
                                if ot.eq_data(nt) {
                                    // no-op after inlining: rebind and move on
                                    let jv = nt.get(rel_attr)?;
                                    state.right_idx.entry(jv).or_default().push(c.key.clone());
                                    continue;
                                }
                            }
                            let jv = nt.get(rel_attr)?;
                            if let Some(lks) = state.left_idx.get(&jv) {
                                dirty_left.extend(lks.iter().cloned());
                            }
                            state.right_idx.entry(jv).or_default().push(c.key.clone());
                        }
                        if old.is_some() || new.is_some() {
                            right_changes.push(TupleChange {
                                key: c.key.clone(),
                                old,
                                new,
                            });
                        }
                    }
                    state.right = apply_changes(&state.right, &right_changes)?;
                }
                // 2. left-side (child) changes: refresh the left hash
                // bindings; every changed left key is dirty
                for c in &child_changes {
                    if let Some(ot) = &c.old {
                        unbind(&mut state.left_idx, &ot.get(input_attr)?, &c.key);
                    }
                    if let Some(nt) = &c.new {
                        state
                            .left_idx
                            .entry(nt.get(input_attr)?)
                            .or_default()
                            .push(c.key.clone());
                    }
                    dirty_left.insert(c.key.clone());
                }
                // 3. re-probe dirty left keys only, swapping their old
                // output rows for fresh ones in the canonical-id buckets
                let mut dirty_hashes: BTreeSet<u64> = BTreeSet::new();
                for lk in &dirty_left {
                    if let Some(rows) = state.provenance.remove(lk) {
                        for row in rows {
                            let h = row.fingerprint()?.hash();
                            if let Some(bucket) = state.buckets.get_mut(&h) {
                                if let Some(p) = bucket.iter().position(|r| Arc::ptr_eq(r, &row)) {
                                    bucket.swap_remove(p);
                                }
                                if bucket.is_empty() {
                                    state.buckets.remove(&h);
                                }
                            }
                            dirty_hashes.insert(h);
                        }
                    }
                    if let Some(lt) = input.out().lookup(lk) {
                        let rows = probe_rows(&lt, input_attr, rel, state)?;
                        for row in &rows {
                            let h = row.fingerprint()?.hash();
                            state.buckets.entry(h).or_default().push(row.clone());
                            dirty_hashes.insert(h);
                        }
                        if !rows.is_empty() {
                            state.provenance.insert(lk.clone(), rows);
                        }
                    }
                }
                // 4. re-rank dirty buckets and diff them positionally
                // against the current output under their `[hash, rank]`
                // keys — untouched buckets never move
                let mut changes = Vec::new();
                for h in dirty_hashes {
                    let new_ranked = match state.buckets.get(&h) {
                        Some(bucket) => ranked(bucket)?,
                        None => Vec::new(),
                    };
                    let mut rank = 0usize;
                    loop {
                        let key = row_key(h, rank);
                        let old = out.lookup(&key);
                        let new = new_ranked.get(rank).cloned();
                        match (&old, &new) {
                            (None, None) => break,
                            (Some(a), Some(b)) if a.eq_data(b) => {}
                            _ => changes.push(TupleChange { key, old, new }),
                        }
                        rank += 1;
                    }
                }
                *out = apply_changes(out, &changes)?;
                Ok(changes)
            }
            Node::GroupAgg {
                input,
                by,
                aggs,
                state,
                out,
            } => {
                let child_changes = input.apply(db, delta, stats)?;
                let mut dirty: BTreeSet<Value> = BTreeSet::new();
                for c in &child_changes {
                    if let Some(ot) = &c.old {
                        let gk = group_key(ot, by)?;
                        if let Some(members) = state.get_mut(&gk) {
                            members.remove(&c.key);
                            if members.is_empty() {
                                state.remove(&gk);
                            }
                        }
                        dirty.insert(gk);
                    }
                    if let Some(nt) = &c.new {
                        let gk = group_key(nt, by)?;
                        state
                            .entry(gk.clone())
                            .or_default()
                            .insert(c.key.clone(), nt.clone());
                        dirty.insert(gk);
                    }
                }
                stats.dirty_groups += dirty.len() as u64;
                let mut changes = Vec::new();
                for gk in dirty {
                    let new = match state.get(&gk) {
                        Some(members) if !members.is_empty() => {
                            let members: Vec<Arc<TupleF>> = members.values().cloned().collect();
                            Some(Arc::new(agg_tuple_for(&gk, by, aggs, &members)?))
                        }
                        _ => None,
                    };
                    let old = out.lookup(&gk);
                    match (&old, &new) {
                        (Some(a), Some(b)) if a.eq_data(b) => continue,
                        (None, None) => continue,
                        _ => changes.push(TupleChange { key: gk, old, new }),
                    }
                }
                *out = apply_changes(out, &changes)?;
                Ok(changes)
            }
            Node::Fallback { input, op, out } => {
                let child_changes = input.apply(db, delta, stats)?;
                if child_changes.is_empty() {
                    return Ok(Vec::new());
                }
                let new_out = match op {
                    FallbackOp::OrderBy { attr, order } => {
                        transform::order_by(input.out(), attr, *order)?
                    }
                    FallbackOp::Limit { k } => transform::limit(input.out(), *k)?,
                };
                let changes = diff_relations(out, &new_out)?;
                *out = new_out;
                stats.fallback_recomputes += 1;
                Ok(changes)
            }
        }
    }
}

/// A materialized query result maintained by delta propagation.
///
/// Built against a database snapshot, then kept current by feeding the
/// [`DbDelta`] of each subsequent version into [`apply`](Self::apply) —
/// the transaction layer's `ViewCatalog` does this from commit
/// writesets; standalone users can diff snapshots with
/// [`DbDelta::between`].
#[derive(Clone)]
pub struct MaintainedView {
    name: String,
    plan: Query,
    root: Node,
    stats: IvmStats,
}

impl MaintainedView {
    /// Compiles `query` through [`Optimizer::default`] (so the
    /// maintained plan matches ad-hoc evaluation) and materializes it
    /// against `db`.
    pub fn new(name: impl Into<String>, query: Query, db: &DatabaseF) -> Result<MaintainedView> {
        let plan = Optimizer::default().optimize(query, db);
        Self::with_plan(name, plan, db)
    }

    /// Materializes an already-optimized plan against `db` without
    /// re-optimizing — for callers pinning an exact operator tree.
    pub fn with_plan(
        name: impl Into<String>,
        plan: Query,
        db: &DatabaseF,
    ) -> Result<MaintainedView> {
        let root = Node::build(&plan, db)?;
        Ok(MaintainedView {
            name: name.into(),
            plan,
            root,
            stats: IvmStats::default(),
        })
    }

    /// Propagates one base-table delta (the changes from the database
    /// the view is current for, to `db`) through the plan. Returns the
    /// number of output rows that changed.
    pub fn apply(&mut self, db: &DatabaseF, delta: &DbDelta) -> Result<usize> {
        let changes = self.root.apply(db, delta, &mut self.stats)?;
        self.stats.deltas_applied += 1;
        self.stats.rows_changed += changes.len() as u64;
        Ok(changes.len())
    }

    /// The maintained result, renamed to the view's name.
    pub fn relation(&self) -> RelationF {
        self.root.out().renamed(&self.name)
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The optimized plan being maintained.
    pub fn plan(&self) -> &Query {
        &self.plan
    }

    /// Maintenance counters.
    pub fn stats(&self) -> &IvmStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{retail_db, skewed_db};
    use fdm_core::FnValue;
    use fdm_expr::Params;

    fn keyed(rel: &RelationF) -> Vec<(Value, Value)> {
        rel.tuples()
            .unwrap()
            .into_iter()
            .map(|(k, t)| (k, t.data_key().unwrap()))
            .collect()
    }

    fn check(view: &MaintainedView, db: &DatabaseF) {
        let fresh = view.plan().clone().eval(db).unwrap();
        assert_eq!(
            keyed(&view.relation()),
            keyed(&fresh),
            "maintained output drifted from recompute for {}",
            view.name()
        );
    }

    fn step(view: &mut MaintainedView, before: &DatabaseF, after: &DatabaseF) {
        let delta = DbDelta::between(before, after).unwrap();
        view.apply(after, &delta).unwrap();
        check(view, after);
    }

    #[test]
    fn filter_group_join_track_point_writes() {
        let db = retail_db();
        let q = Query::scan("customers")
            .filter("age > $min", Params::new().set("min", 30))
            .group_agg(&["age"], &[("n", AggSpec::Count)]);
        let mut v = MaintainedView::new("olds", q, &db).unwrap();
        check(&v, &db);

        // insert a customer into an existing group
        let customers = db.relation("customers").unwrap();
        let db2 = db.with_relation(
            customers
                .insert(
                    Value::Int(9),
                    TupleF::builder("c9")
                        .attr("name", "Dawn")
                        .attr("age", 43)
                        .build(),
                )
                .unwrap(),
        );
        step(&mut v, &db, &db2);
        // update an age across the filter boundary, then delete
        let db3 = db2.with_relation(
            db2.relation("customers")
                .unwrap()
                .update_attr(&Value::Int(1), "age", Value::Int(20))
                .unwrap(),
        );
        step(&mut v, &db2, &db3);
        let db4 = db3.with_relation(
            db3.relation("customers")
                .unwrap()
                .delete(&Value::Int(3))
                .unwrap(),
        );
        step(&mut v, &db3, &db4);
        assert!(v.stats().dirty_groups >= 2);
    }

    #[test]
    fn join_reprobes_only_dirty_keys_and_falls_back_on_rebind() {
        let db = skewed_db();
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .project(&["nk", "wide.wv"]);
        let mut v = MaintainedView::new("j", q, &db).unwrap();
        check(&v, &db);

        // right-side update: only left keys bound to that join value re-probe
        let wide = db.relation("wide").unwrap();
        let db2 = db.with_relation(
            wide.update_attr(&Value::Int(1), "wv", Value::Int(999))
                .unwrap(),
        );
        step(&mut v, &db, &db2);
        // left-side insert
        let base = db2.relation("base").unwrap();
        let db3 = db2.with_relation(
            base.insert(
                Value::Int(100),
                TupleF::builder("b").attr("wk", 2).attr("nk", 1).build(),
            )
            .unwrap(),
        );
        step(&mut v, &db2, &db3);
        assert_eq!(v.stats().fallback_recomputes, 0);

        // a wholesale rebind of the right side (what the catalog emits
        // for an `Assign` op) forces the scoped rebuild, even when the
        // new binding happens to hold different data
        let db4 = db3.with_entry(
            "wide",
            FnValue::from(
                db3.relation("wide")
                    .unwrap()
                    .update_attr(&Value::Int(2), "wv", Value::Int(-5))
                    .unwrap(),
            ),
        );
        let delta = DbDelta {
            entries: vec![(fdm_core::Name::from("wide"), EntryDelta::Replaced)],
        };
        v.apply(&db4, &delta).unwrap();
        check(&v, &db4);
        assert!(v.stats().fallback_recomputes >= 1);
    }

    #[test]
    fn order_by_and_limit_fall_back_scoped() {
        let db = skewed_db();
        let q = Query::scan("base").order_by("nk", Order::Desc).limit(3);
        let mut v = MaintainedView::new("top", q, &db).unwrap();
        check(&v, &db);
        let base = db.relation("base").unwrap();
        let db2 = db.with_relation(
            base.insert(
                Value::Int(50),
                TupleF::builder("b").attr("wk", 1).attr("nk", 99).build(),
            )
            .unwrap(),
        );
        step(&mut v, &db, &db2);
        assert!(
            v.stats().fallback_recomputes >= 2,
            "order_by and limit recompute"
        );
        // a no-op delta leaves the fallback untouched
        let before = v.stats().fallback_recomputes;
        step(&mut v, &db2, &db2);
        assert_eq!(v.stats().fallback_recomputes, before);
    }
}
