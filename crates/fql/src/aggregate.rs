//! Aggregation (paper Fig. 4b/4c) and grouping sets (Fig. 8).
//!
//! FDM keeps semantically different groupings in **separate relation
//! functions** — `grouping_sets` returns a database function with one
//! entry per grouping condition, instead of SQL's single NULL-filled
//! output relation. No NULLs are manufactured anywhere in this module.

use crate::group::{group, Groups};
use fdm_core::{
    par_map_chunks, DatabaseF, FdmError, FnValue, ParConfig, ParallelBuilder, RelationBuilder,
    RelationF, Result, TupleF, Value,
};
use std::sync::Arc;

/// An aggregate over the tuples of one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSpec {
    /// Number of tuples in the group.
    Count,
    /// Sum of a numeric attribute.
    Sum(String),
    /// Minimum of an attribute.
    Min(String),
    /// Maximum of an attribute.
    Max(String),
    /// Arithmetic mean of a numeric attribute.
    Avg(String),
}

impl AggSpec {
    /// The attribute this aggregate reads from each group member, if any
    /// (`Count` reads none) — what the optimizer's projection pruning
    /// counts as "needed" below a `GroupAgg`.
    pub fn input_attr(&self) -> Option<&str> {
        match self {
            AggSpec::Count => None,
            AggSpec::Sum(a) | AggSpec::Min(a) | AggSpec::Max(a) | AggSpec::Avg(a) => Some(a),
        }
    }

    /// Evaluates the aggregate over the group members.
    ///
    /// FDM has no NULLs: aggregating an attribute that is missing on some
    /// tuple is a *typed error*, not a silent skip; `Min`/`Max`/`Avg` over
    /// an empty group are likewise errors (`Count` is 0, `Sum` is 0 — the
    /// mathematically natural identities).
    pub fn eval(&self, members: &[Arc<TupleF>]) -> Result<Value> {
        match self {
            AggSpec::Count => Ok(Value::Int(members.len() as i64)),
            AggSpec::Sum(attr) => {
                let mut acc = Value::Int(0);
                for t in members {
                    acc = acc.add(&t.get(attr)?)?;
                }
                Ok(acc)
            }
            AggSpec::Min(attr) => {
                let mut best: Option<Value> = None;
                for t in members {
                    let v = t.get(attr)?;
                    best = Some(match best {
                        None => v,
                        Some(b) if v < b => v,
                        Some(b) => b,
                    });
                }
                best.ok_or_else(|| FdmError::Other(format!("min({attr}) over empty group")))
            }
            AggSpec::Max(attr) => {
                let mut best: Option<Value> = None;
                for t in members {
                    let v = t.get(attr)?;
                    best = Some(match best {
                        None => v,
                        Some(b) if v > b => v,
                        Some(b) => b,
                    });
                }
                best.ok_or_else(|| FdmError::Other(format!("max({attr}) over empty group")))
            }
            AggSpec::Avg(attr) => {
                if members.is_empty() {
                    return Err(FdmError::Other(format!("avg({attr}) over empty group")));
                }
                let mut sum = 0.0f64;
                for t in members {
                    sum += t.get(attr)?.as_float("avg input")?;
                }
                Ok(Value::Float(sum / members.len() as f64))
            }
        }
    }
}

/// Computes named aggregates per group, returning a relation function
/// keyed by the group key whose tuples carry the by-attributes plus one
/// attribute per aggregate (paper Fig. 4b:
/// `aggregate(count=Count(), groups)`). Above the parallel cutoff the
/// per-group folds run in chunks across threads, byte-identical to the
/// sequential pass.
pub fn aggregate(groups: &Groups, aggs: &[(&str, AggSpec)]) -> Result<RelationF> {
    let by = groups.by().to_vec();
    let key_attrs: Vec<&str> = by.iter().map(|n| n.as_ref()).collect();
    // evaluating the aggregates of one group is pure per-group work
    let agg_tuple = |key: &Value, members: &[Arc<TupleF>]| -> Result<TupleF> {
        let mut t = TupleF::builder(format!("agg[{key}]"));
        // carry the grouping attributes into the output tuple
        match (key, by.len()) {
            (Value::List(parts), n) if n > 1 => {
                for (name, v) in by.iter().zip(parts.iter()) {
                    t = t.attr(name.as_ref(), v.clone());
                }
            }
            (v, _) => {
                t = t.attr(by[0].as_ref(), v.clone());
            }
        }
        for (name, spec) in aggs {
            t = t.attr(*name, spec.eval(members)?);
        }
        Ok(t.build())
    };
    let cfg = ParConfig::from_env();
    if cfg.should_parallelize(groups.group_count()) {
        // only the parallel path materializes all member vectors at once
        // (chunks need `&[T]`); the sequential path below stays
        // one-group-at-a-time
        let entries: Vec<(Value, Vec<Arc<TupleF>>)> = groups.iter().collect();
        let runs = par_map_chunks(&entries, cfg.threads, |chunk| -> Result<Vec<_>> {
            chunk
                .iter()
                .map(|(key, members)| Ok((key.clone(), Arc::new(agg_tuple(key, members)?))))
                .collect()
        });
        let mut out = ParallelBuilder::new("aggregates", &key_attrs);
        for run in runs {
            out.push_run(run?);
        }
        return out.build();
    }
    // group keys iterate in ascending order → no-sort bulk path
    let mut out = RelationBuilder::new("aggregates", &key_attrs);
    for (key, members) in groups.iter() {
        let t = agg_tuple(&key, &members)?;
        out.push(key, t);
    }
    out.build()
}

/// Fused grouping + aggregation (paper Fig. 4c, "corresponds to GROUP BY
/// syntax in SQL").
pub fn group_and_aggregate(
    rel: &RelationF,
    by: &[&str],
    aggs: &[(&str, AggSpec)],
) -> Result<RelationF> {
    aggregate(&group(rel, by)?, aggs)
}

/// A global fold over the whole relation (no grouping): returns a single
/// tuple function with one attribute per aggregate.
pub fn aggregate_all(rel: &RelationF, aggs: &[(&str, AggSpec)]) -> Result<TupleF> {
    let members: Vec<Arc<TupleF>> = rel.tuples()?.into_iter().map(|(_, t)| t).collect();
    let mut t = TupleF::builder(format!("{}_aggregates", rel.name()));
    for (name, spec) in aggs {
        t = t.attr(*name, spec.eval(&members)?);
    }
    Ok(t.build())
}

/// One grouping condition of a grouping-sets query (paper Fig. 8):
/// a name for the output relation, the by-attributes (empty = global),
/// and the aggregates.
#[derive(Debug, Clone)]
pub struct GroupingSpec {
    /// Name of the output relation function (`"age_cc"` in Fig. 8).
    pub name: String,
    /// Attributes to group by; empty means one global group.
    pub by: Vec<String>,
    /// Aggregates, with output attribute names.
    pub aggs: Vec<(String, AggSpec)>,
}

impl GroupingSpec {
    /// Convenience constructor.
    pub fn new(name: &str, by: &[&str], aggs: &[(&str, AggSpec)]) -> Self {
        GroupingSpec {
            name: name.to_string(),
            by: by.iter().map(|s| s.to_string()).collect(),
            aggs: aggs
                .iter()
                .map(|(n, a)| (n.to_string(), a.clone()))
                .collect(),
        }
    }
}

/// Grouping sets, the FDM way (paper Fig. 8): **one output relation
/// function per semantically different grouping**, collected in a database
/// function — no NULL filling, no `GROUPING()` disambiguation functions.
pub fn grouping_sets(rel: &RelationF, specs: &[GroupingSpec]) -> Result<DatabaseF> {
    let mut db = DatabaseF::new(format!("{}_gsets", rel.name()));
    for spec in specs {
        let aggs: Vec<(&str, AggSpec)> = spec
            .aggs
            .iter()
            .map(|(n, a)| (n.as_str(), a.clone()))
            .collect();
        if spec.by.is_empty() {
            // global aggregate: a relation function with a single tuple
            let t = aggregate_all(rel, &aggs)?;
            let out = RelationF::new(&spec.name, &["i"]).insert(Value::Int(0), t)?;
            db = db.with_entry(&spec.name, FnValue::from(out));
        } else {
            let by: Vec<&str> = spec.by.iter().map(String::as_str).collect();
            let out = group_and_aggregate(rel, &by, &aggs)?.renamed(&spec.name);
            db = db.with_entry(&spec.name, FnValue::from(out));
        }
    }
    Ok(db)
}

/// ROLLUP as grouping sets with generated names
/// (`rel_rollup_<cols>` ... `rel_rollup_total`).
pub fn rollup(rel: &RelationF, by: &[&str], aggs: &[(&str, AggSpec)]) -> Result<DatabaseF> {
    let mut specs = Vec::with_capacity(by.len() + 1);
    for k in (0..=by.len()).rev() {
        let cols = &by[..k];
        let name = if cols.is_empty() {
            "rollup_total".to_string()
        } else {
            format!("rollup_{}", cols.join("_"))
        };
        specs.push(GroupingSpec::new(&name, cols, aggs));
    }
    grouping_sets(rel, &specs)
}

/// CUBE as grouping sets over all 2^k subsets.
pub fn cube(rel: &RelationF, by: &[&str], aggs: &[(&str, AggSpec)]) -> Result<DatabaseF> {
    let k = by.len();
    if k > 16 {
        return Err(FdmError::Other("cube over more than 16 attributes".into()));
    }
    let mut specs = Vec::with_capacity(1 << k);
    for mask in (0..(1usize << k)).rev() {
        let cols: Vec<&str> = by
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect();
        let name = if cols.is_empty() {
            "cube_total".to_string()
        } else {
            format!("cube_{}", cols.join("_"))
        };
        specs.push(GroupingSpec::new(&name, &cols, aggs));
    }
    grouping_sets(rel, &specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::filter_attr;
    use fdm_expr::GT;

    fn customers() -> RelationF {
        let mut rel = RelationF::new("customers", &["cid"]);
        for (cid, name, age, state) in [
            (1, "Alice", 43, "NY"),
            (2, "Bob", 30, "NY"),
            (3, "Carol", 43, "CA"),
            (4, "Dave", 30, "CA"),
            (5, "Eve", 43, "NY"),
        ] {
            rel = rel
                .insert(
                    Value::Int(cid),
                    TupleF::builder(format!("c{cid}"))
                        .attr("name", name)
                        .attr("age", age)
                        .attr("state", state)
                        .build(),
                )
                .unwrap();
        }
        rel
    }

    #[test]
    fn fig4b_unrolled_pipeline() {
        // groups = group(by=["age"], customers)
        // aggregates = aggregate(count=Count(), groups)
        // large_groups = filter(g.count > 2, aggregates)
        let groups = group(&customers(), &["age"]).unwrap();
        let aggregates = aggregate(&groups, &[("count", AggSpec::Count)]).unwrap();
        assert_eq!(aggregates.len(), 2);
        let large = filter_attr(&aggregates, "count", GT, 2).unwrap();
        assert_eq!(large.len(), 1);
        let t = large.lookup(&Value::Int(43)).unwrap();
        assert_eq!(t.get("age").unwrap(), Value::Int(43));
        assert_eq!(t.get("count").unwrap(), Value::Int(3));
    }

    #[test]
    fn fig4c_fused_equals_unrolled() {
        let fused =
            group_and_aggregate(&customers(), &["age"], &[("count", AggSpec::Count)]).unwrap();
        let groups = group(&customers(), &["age"]).unwrap();
        let unrolled = aggregate(&groups, &[("count", AggSpec::Count)]).unwrap();
        assert_eq!(fused.len(), unrolled.len());
        for key in fused.stored_keys() {
            assert!(fused
                .lookup(&key)
                .unwrap()
                .eq_data(&unrolled.lookup(&key).unwrap()));
        }
    }

    #[test]
    fn all_aggregate_kinds() {
        let out = group_and_aggregate(
            &customers(),
            &["state"],
            &[
                ("count", AggSpec::Count),
                ("sum_age", AggSpec::Sum("age".into())),
                ("min_age", AggSpec::Min("age".into())),
                ("max_age", AggSpec::Max("age".into())),
                ("avg_age", AggSpec::Avg("age".into())),
            ],
        )
        .unwrap();
        let ny = out.lookup(&Value::str("NY")).unwrap();
        assert_eq!(ny.get("count").unwrap(), Value::Int(3));
        assert_eq!(ny.get("sum_age").unwrap(), Value::Int(116));
        assert_eq!(ny.get("min_age").unwrap(), Value::Int(30));
        assert_eq!(ny.get("max_age").unwrap(), Value::Int(43));
        match ny.get("avg_age").unwrap() {
            Value::Float(x) => assert!((x - 116.0 / 3.0).abs() < 1e-9),
            other => panic!("avg is float, got {other}"),
        }
    }

    #[test]
    fn multi_attr_grouping_carries_all_keys() {
        let out = group_and_aggregate(
            &customers(),
            &["age", "state"],
            &[("count", AggSpec::Count)],
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        let k = Value::list([Value::Int(43), Value::str("NY")]);
        let t = out.lookup(&k).unwrap();
        assert_eq!(t.get("age").unwrap(), Value::Int(43));
        assert_eq!(t.get("state").unwrap(), Value::str("NY"));
        assert_eq!(t.get("count").unwrap(), Value::Int(2));
    }

    #[test]
    fn fig8_grouping_sets_separate_relations() {
        // gset: by age (count), by (age,name) (count), global min
        let gset = grouping_sets(
            &customers(),
            &[
                GroupingSpec::new("age_cc", &["age"], &[("count", AggSpec::Count)]),
                GroupingSpec::new(
                    "age_name_cc",
                    &["age", "name"],
                    &[("count", AggSpec::Count)],
                ),
                GroupingSpec::new("global_min", &[], &[("min", AggSpec::Min("age".into()))]),
            ],
        )
        .unwrap();
        assert_eq!(gset.len(), 3, "three semantically different outputs");
        let age_cc = gset.relation("age_cc").unwrap();
        assert_eq!(age_cc.len(), 2);
        let age_name = gset.relation("age_name_cc").unwrap();
        assert_eq!(age_name.len(), 5);
        let global = gset.relation("global_min").unwrap();
        assert_eq!(
            global.lookup(&Value::Int(0)).unwrap().get("min").unwrap(),
            Value::Int(30)
        );
        // And the FDM point: none of these tuples has any notion of NULL —
        // each relation has exactly its own attributes.
        for (_, t) in age_cc.tuples().unwrap() {
            assert_eq!(t.attr_count(), 2, "age + count, nothing more");
        }
    }

    #[test]
    fn rollup_and_cube_cardinalities() {
        let r = rollup(&customers(), &["state", "age"], &[("c", AggSpec::Count)]).unwrap();
        // levels: (state,age), (state), ()
        assert_eq!(r.len(), 3);
        assert_eq!(r.relation("rollup_state_age").unwrap().len(), 4);
        assert_eq!(r.relation("rollup_state").unwrap().len(), 2);
        assert_eq!(r.relation("rollup_total").unwrap().len(), 1);
        let c = cube(&customers(), &["state", "age"], &[("c", AggSpec::Count)]).unwrap();
        assert_eq!(c.len(), 4, "2^2 subsets");
        assert_eq!(c.relation("cube_age").unwrap().len(), 2);
    }

    #[test]
    fn aggregate_errors_are_typed_not_null() {
        // sum over a string attribute: type error, not NULL propagation
        let err = group_and_aggregate(
            &customers(),
            &["state"],
            &[("s", AggSpec::Sum("name".into()))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
        // min over empty global group: explicit error
        let empty = RelationF::new("none", &["id"]);
        let err = aggregate_all(&empty, &[("m", AggSpec::Min("x".into()))]).unwrap_err();
        assert!(err.to_string().contains("empty group"), "{err}");
        // count over empty is 0, sum is 0
        let t = aggregate_all(
            &empty,
            &[("c", AggSpec::Count), ("s", AggSpec::Sum("x".into()))],
        )
        .unwrap();
        assert_eq!(t.get("c").unwrap(), Value::Int(0));
        assert_eq!(t.get("s").unwrap(), Value::Int(0));
    }
}
