//! The `filter` operator and its six costumes (paper Fig. 4a).
//!
//! One FQL expression — "customers older than 42" — wearable six ways:
//!
//! | Paper (Python) | Here (Rust) |
//! |---|---|
//! | `filter(lambda prof: prof("age") > 42, customers)` | [`filter_fn`] with a closure |
//! | `filter(lambda prof: prof.age > 42, customers)` | same closure, `t.get("age")` |
//! | `filter(age__gt=42, customers)` | [`filter_kwargs`] (`"age__gt"`) |
//! | `filter(att='age', op=gt, c=42, customers)` | [`filter_attr`] with [`fdm_expr::CmpOp`] |
//! | `filter("age>$foo", {foo: 42}, customers)` | [`filter_expr`] with [`Params`] |
//! | pre-parsed/bound expression | [`filter_bound`] |
//!
//! All six produce the *same* output relation function; the Fig. 4
//! benchmark measures their relative costume overhead.
//!
//! `filter` is not specific to relations: [`filter_db`] filters a
//! *database* function by entry name (the first step of the paper's
//! Fig. 5 subdatabase query) — same operator concept, one level up.

use fdm_core::{
    par_map_chunks, DatabaseF, FdmError, FnValue, Name, ParConfig, ParallelBuilder, RelationF,
    Result, TupleF, Value,
};
use fdm_expr::{by_suffix, eval_predicate, parse, CmpOp, Expr, Params};
use std::sync::Arc;

/// Costume 1/2: filter by a host-language closure over tuple functions.
///
/// The closure sees the full tuple function — computed attributes and
/// nested functions included.
///
/// Large inputs are chunked across threads (`fdm_core::par`): each chunk
/// evaluates the predicate over its key-ordered slice and the sorted runs
/// merge into one O(n) bulk build. Output (and any error) is byte-identical
/// to the sequential path; small inputs skip the threads entirely.
pub fn filter_fn(
    rel: &RelationF,
    pred: impl Fn(&TupleF) -> Result<bool> + Sync,
) -> Result<RelationF> {
    let entries = rel.tuples()?;
    let cfg = ParConfig::from_env();
    if cfg.should_parallelize(entries.len()) {
        let runs = par_map_chunks(&entries, cfg.threads, |chunk| -> Result<Vec<_>> {
            let mut keep = Vec::new();
            for (key, tuple) in chunk {
                if pred(tuple)? {
                    keep.push((key.clone(), tuple.clone()));
                }
            }
            Ok(keep)
        });
        let mut out = ParallelBuilder::for_relation(rel);
        for run in runs {
            out.push_run(run?);
        }
        return out.build();
    }
    // Input tuples arrive in key order, so the builder takes the O(n)
    // already-sorted bulk path — no per-tuple persistent insert.
    let mut out = rel.builder_like();
    for (key, tuple) in entries {
        if pred(&tuple)? {
            out.push_arc(key, tuple);
        }
    }
    out.build()
}

/// Costume 4: broken-up predicate — `filter(att='age', op=gt, c=42, …)`.
pub fn filter_attr(
    rel: &RelationF,
    attr: &str,
    op: CmpOp,
    c: impl Into<Value>,
) -> Result<RelationF> {
    let c = c.into();
    filter_fn(rel, |t| {
        let v = t.get(attr)?;
        op.apply(&v, &c).map_err(FdmError::from)
    })
}

/// Costume 3: Django-ORM style kwargs — `filter(age__gt=42, …)`.
///
/// Each key is `attr__op` (plain `attr` means equality); multiple kwargs
/// conjoin.
pub fn filter_kwargs(rel: &RelationF, kwargs: &[(&str, Value)]) -> Result<RelationF> {
    // Pre-resolve the kwarg specs once, not per tuple.
    let mut specs: Vec<(Name, CmpOp)> = Vec::with_capacity(kwargs.len());
    for (k, _) in kwargs {
        let (attr, op) = match k.rsplit_once("__") {
            Some((attr, suffix)) => {
                let op = by_suffix(suffix).ok_or_else(|| {
                    FdmError::Expr(format!(
                        "unknown filter operator suffix '{suffix}' in '{k}'"
                    ))
                })?;
                (attr, op)
            }
            None => (*k, fdm_expr::EQ),
        };
        specs.push((Name::from(attr), op));
    }
    filter_fn(rel, |t| {
        for ((attr, op), (_, c)) in specs.iter().zip(kwargs) {
            let v = t.get(attr)?;
            if !op.apply(&v, c).map_err(FdmError::from)? {
                return Ok(false);
            }
        }
        Ok(true)
    })
}

/// Costume 5: textual predicate with `$params` —
/// `filter("age>$foo", {foo: 42}, customers)`.
///
/// Parsing happens once; parameters are bound as values (injection-proof,
/// see `fdm-expr`).
pub fn filter_expr(rel: &RelationF, src: &str, params: Params) -> Result<RelationF> {
    let expr = parse(src).map_err(FdmError::from)?;
    let bound = params.bind(&expr).map_err(FdmError::from)?;
    filter_bound(rel, &bound)
}

/// Costume 6: an already-parsed, already-bound expression.
pub fn filter_bound(rel: &RelationF, expr: &Expr) -> Result<RelationF> {
    filter_fn(rel, |t| eval_predicate(expr, t).map_err(FdmError::from))
}

/// `filter` one level up: keep only the database entries whose
/// `(name, entry)` pair satisfies the predicate (paper Fig. 5:
/// `filter(lambda kv: kv[0] in relations, DB)`).
pub fn filter_db(db: &DatabaseF, pred: impl Fn(&str, &FnValue) -> bool) -> DatabaseF {
    let mut out = DatabaseF::new(db.name());
    for (name, entry) in db.iter() {
        if pred(name, entry) {
            out = out.with_entry(name.as_ref(), entry.clone());
        }
    }
    // carry the schema's shared domains over
    for (_, d) in db.shared_domains() {
        out = out.with_domain(d.clone());
    }
    out
}

/// `filter` at the *tuple* level: keep only attributes satisfying the
/// predicate — the same operator concept applied one level *down*
/// (tears down the tuple/relation boundary, paper §2.2).
pub fn filter_tuple(t: &TupleF, pred: impl Fn(&str, &Value) -> bool) -> Result<TupleF> {
    let keep: Vec<Arc<str>> = t
        .materialize()?
        .into_iter()
        .filter(|(n, v)| pred(n, v))
        .map(|(n, _)| n)
        .collect();
    let keep_refs: Vec<&str> = keep.iter().map(|n| n.as_ref()).collect();
    t.project(&keep_refs)
}

pub(crate) fn key_attr_strs(rel: &RelationF) -> Vec<&str> {
    rel.key_attrs().iter().map(|n| n.as_ref()).collect()
}

/// Inlines a relation's key into its tuples as ordinary attributes.
///
/// In FDM the key is the function *input*, not part of the returned
/// attributes (paper Fig. 1). Operators that need to talk about the key —
/// equi-joins on key attributes, plans projecting `cid` — call this to get
/// a view where each tuple additionally carries its key attribute(s).
/// Attributes the tuple already has are left alone.
///
/// When every stored tuple already carries all key attributes (e.g. a scan
/// output being re-scanned), the relation is returned **unchanged** — an
/// O(1) structural share instead of an O(n) copy of every tuple.
pub fn with_inlined_keys(rel: &RelationF) -> Result<RelationF> {
    let key_names: Vec<Name> = rel.key_attrs().to_vec();
    // Pass-through: a plain stored body whose tuples all have the key
    // attributes inline needs no rebuild — share the map O(1), rewrapped
    // unconstrained so both paths produce the same output shape.
    // (Multi/computed bodies always rebuild — their enumeration is what
    // materializes the output.)
    if let Some(map) = rel.stored_map() {
        if rel
            .iter_stored()
            .all(|(_, t)| key_names.iter().all(|n| t.has_attr(n)))
        {
            return Ok(RelationF::from_stored_map(
                rel.name(),
                &key_attr_strs(rel),
                map.clone(),
            ));
        }
    }
    let inline = |key: &Value, tuple: &Arc<TupleF>| -> TupleF {
        let mut t = (**tuple).clone();
        match (key, key_names.len()) {
            (Value::List(parts), n) if n > 1 && parts.len() == n => {
                for (name, v) in key_names.iter().zip(parts.iter()) {
                    if !t.has_attr(name) {
                        t = t.with_attr(name.as_ref(), v.clone());
                    }
                }
            }
            (v, 1) if !t.has_attr(&key_names[0]) => {
                t = t.with_attr(key_names[0].as_ref(), v.clone());
            }
            _ => {}
        }
        t
    };
    let entries = rel.tuples()?;
    let cfg = ParConfig::from_env();
    if cfg.should_parallelize(entries.len()) {
        let runs = par_map_chunks(&entries, cfg.threads, |chunk| {
            chunk
                .iter()
                .map(|(key, tuple)| (key.clone(), Arc::new(inline(key, tuple))))
                .collect::<Vec<_>>()
        });
        let mut out = ParallelBuilder::for_relation(rel);
        for run in runs {
            out.push_run(run);
        }
        return out.build();
    }
    let mut out = rel.builder_like();
    for (key, tuple) in entries {
        let t = inline(&key, &tuple);
        out.push(key, t);
    }
    out.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm_expr::GT;

    fn customers() -> RelationF {
        let mut rel = RelationF::new("customers", &["cid"]);
        for (cid, name, age) in [
            (1, "Alice", 43),
            (2, "Bob", 30),
            (3, "Carol", 55),
            (4, "Dave", 42),
        ] {
            rel = rel
                .insert(
                    Value::Int(cid),
                    TupleF::builder(format!("c{cid}"))
                        .attr("name", name)
                        .attr("age", age)
                        .build(),
                )
                .unwrap();
        }
        rel
    }

    fn names(rel: &RelationF) -> Vec<String> {
        rel.tuples()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.get("name").unwrap().as_str("name").unwrap().to_string())
            .collect()
    }

    #[test]
    fn all_six_costumes_agree() {
        let rel = customers();
        let expect = vec!["Alice".to_string(), "Carol".to_string()];

        // 1: closure, call syntax
        let a = filter_fn(&rel, |t| Ok(t.get("age")?.as_int("age")? > 42)).unwrap();
        // 2: closure, "dot" syntax — in Rust the same get()
        let b = filter_fn(&rel, |t| {
            Ok(matches!(t.get("age")?, Value::Int(i) if i > 42))
        })
        .unwrap();
        // 3: Django kwargs
        let c = filter_kwargs(&rel, &[("age__gt", Value::Int(42))]).unwrap();
        // 4: broken-up predicate
        let d = filter_attr(&rel, "age", GT, 42).unwrap();
        // 5: textual predicate with params
        let e = filter_expr(&rel, "age>$foo", Params::new().set("foo", 42)).unwrap();
        // 6: pre-bound expression
        let bound = Params::new()
            .set("foo", 42)
            .bind(&parse("age>$foo").unwrap())
            .unwrap();
        let f = filter_bound(&rel, &bound).unwrap();

        for (i, r) in [&a, &b, &c, &d, &e, &f].iter().enumerate() {
            assert_eq!(names(r), expect, "costume {}", i + 1);
            assert_eq!(r.len(), 2, "costume {}", i + 1);
        }
    }

    #[test]
    fn filter_preserves_keys() {
        let rel = customers();
        let out = filter_attr(&rel, "age", GT, 42).unwrap();
        assert!(out.lookup(&Value::Int(1)).is_some());
        assert!(out.lookup(&Value::Int(2)).is_none(), "Bob filtered out");
        assert_eq!(out.key_attrs()[0].as_ref(), "cid");
    }

    #[test]
    fn kwargs_conjoin_and_plain_attr_means_eq() {
        let rel = customers();
        let out = filter_kwargs(
            &rel,
            &[("age__gt", Value::Int(40)), ("name", Value::str("Dave"))],
        )
        .unwrap();
        assert_eq!(names(&out), vec!["Dave"]);
        let err = filter_kwargs(&rel, &[("age__within", Value::Int(1))]).unwrap_err();
        assert!(err.to_string().contains("within"), "{err}");
    }

    #[test]
    fn filter_expr_type_errors_surface() {
        let rel = customers();
        let err = filter_expr(&rel, "name > $x", Params::new().set("x", 5)).unwrap_err();
        assert!(err.to_string().contains("cannot order"), "{err}");
        let err = filter_expr(&rel, "age >", Params::new()).unwrap_err();
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn filter_db_selects_entries() {
        let db = DatabaseF::new("shop")
            .with_relation(customers())
            .with_relation(RelationF::new("products", &["pid"]));
        let keep = ["products"];
        let sub = filter_db(&db, |name, _| keep.contains(&name));
        assert_eq!(sub.len(), 1);
        assert!(sub.contains("products"));
        assert!(!sub.contains("customers"));
    }

    #[test]
    fn filter_tuple_projects_by_predicate() {
        let t = TupleF::builder("t")
            .attr("name", "Alice")
            .attr("age", 43)
            .attr("tmp", 0)
            .build();
        let out = filter_tuple(&t, |n, _| n != "tmp").unwrap();
        assert_eq!(out.attr_count(), 2);
        assert!(!out.has_attr("tmp"));
        // filter by value too
        let out = filter_tuple(&t, |_, v| matches!(v, Value::Int(_))).unwrap();
        assert_eq!(out.attr_count(), 2);
        assert!(!out.has_attr("name"));
    }

    #[test]
    fn empty_result_is_fine() {
        let rel = customers();
        let out = filter_attr(&rel, "age", GT, 1000).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn inlined_keys_pass_through_when_already_inline() {
        let rel = customers();
        let once = with_inlined_keys(&rel).unwrap();
        let t = once.lookup(&Value::Int(1)).unwrap();
        assert_eq!(t.get("cid").unwrap(), Value::Int(1));
        // second application: every tuple already carries `cid`, so the
        // relation comes back structurally shared, not rebuilt
        let twice = with_inlined_keys(&once).unwrap();
        let a = once.lookup(&Value::Int(1)).unwrap();
        let b = twice.lookup(&Value::Int(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "pass-through shares tuples");
        assert_eq!(twice.len(), once.len());
    }
}
