//! Operators beyond SQL's usual repertoire (paper conclusion: "extending
//! the list of FQL operators that allow functionality beyond SQL"):
//! derived attributes, ordering as a relation function, top-k, attribute
//! renaming, and semi/anti-joins against arbitrary key sets.
//!
//! Note how `order_by` stays inside the data model: the result is a
//! relation function keyed by *rank* — ordering is not a presentation
//! afterthought bolted onto a set, it is just another function.

use fdm_core::{
    par_map_chunks, FdmError, ParConfig, ParallelBuilder, RelationBuilder, RelationF, Result,
    TupleF, Value,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Adds a derived attribute to every tuple (an FQL `extend`/`map`): the
/// new attribute is **computed**, not materialized — downstream readers
/// cannot tell (paper §2.3). The closure receives the tuple.
///
/// Large inputs derive their tuples in parallel chunks (the per-tuple
/// rebuild — one computed thunk plus re-attaching the stored attributes —
/// is pure per-entry work); the sorted runs bulk-build the output.
pub fn extend(
    rel: &RelationF,
    attr: &str,
    f: impl Fn(&TupleF) -> Result<Value> + Send + Sync + 'static,
) -> Result<RelationF> {
    let f = Arc::new(f);
    let attr_name: Arc<str> = Arc::from(attr);
    let derive = |tuple: &Arc<TupleF>| -> Result<TupleF> {
        let f = Arc::clone(&f);
        let base = Arc::clone(tuple);
        let derived = TupleF::builder(tuple.name()).computed(attr_name.as_ref(), move |_| f(&base));
        // keep all existing attributes (stored stay stored)
        let mut b = derived;
        for (n, v) in tuple.materialize()? {
            if n != attr_name {
                b = b.attr_name(n, v);
            }
        }
        Ok(b.build())
    };
    let entries = rel.tuples()?;
    let cfg = ParConfig::from_env();
    if cfg.should_parallelize(entries.len()) {
        let runs = par_map_chunks(&entries, cfg.threads, |chunk| -> Result<Vec<_>> {
            chunk
                .iter()
                .map(|(key, tuple)| Ok((key.clone(), Arc::new(derive(tuple)?))))
                .collect()
        });
        let mut out = ParallelBuilder::for_relation(rel);
        for run in runs {
            out.push_run(run?);
        }
        return out.build();
    }
    let mut out = rel.builder_like();
    for (key, tuple) in entries {
        out.push(key, derive(&tuple)?);
    }
    out.build()
}

/// Materializing variant of [`extend`]: computes the value now and stores
/// it (useful before sorts on the derived attribute). Parallel on large
/// inputs, like [`extend`].
pub fn extend_stored(
    rel: &RelationF,
    attr: &str,
    f: impl Fn(&TupleF) -> Result<Value> + Sync,
) -> Result<RelationF> {
    let entries = rel.tuples()?;
    let cfg = ParConfig::from_env();
    if cfg.should_parallelize(entries.len()) {
        let runs = par_map_chunks(&entries, cfg.threads, |chunk| -> Result<Vec<_>> {
            chunk
                .iter()
                .map(|(key, tuple)| {
                    let v = f(tuple)?;
                    Ok((key.clone(), Arc::new(tuple.with_attr(attr, v))))
                })
                .collect()
        });
        let mut out = ParallelBuilder::for_relation(rel);
        for run in runs {
            out.push_run(run?);
        }
        return out.build();
    }
    let mut out = rel.builder_like();
    for (key, tuple) in entries {
        let v = f(&tuple)?;
        out.push(key, tuple.with_attr(attr, v));
    }
    out.build()
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Smallest first.
    Asc,
    /// Largest first.
    Desc,
}

/// Orders the relation by an attribute, returning a relation function
/// keyed by **rank** (`0..n`): the ordering is part of the function, not
/// a cursor artifact. Ties keep the original key order (stable).
pub fn order_by(rel: &RelationF, attr: &str, order: Order) -> Result<RelationF> {
    let mut entries: Vec<(Value, Value, Arc<TupleF>)> = rel
        .tuples()?
        .into_iter()
        .map(|(k, t)| Ok((t.get(attr)?, k, t)))
        .collect::<Result<_>>()?;
    entries.sort_by(|a, b| {
        let ord = a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1));
        match order {
            Order::Asc => ord,
            Order::Desc => ord.reverse(),
        }
    });
    // Rank keys ascend, so this is the no-sort bulk path.
    let mut out = RelationBuilder::new(format!("{}_by_{attr}", rel.name()), &["rank"]);
    for (rank, (_, _, tuple)) in entries.into_iter().enumerate() {
        out.push_arc(Value::Int(rank as i64), tuple);
    }
    out.build()
}

/// The first `k` tuples of a rank-keyed relation (compose with
/// [`order_by`] for top-k).
pub fn limit(rel: &RelationF, k: usize) -> Result<RelationF> {
    let mut out = rel.builder_like();
    for (key, tuple) in rel.tuples()?.into_iter().take(k) {
        out.push_arc(key, tuple);
    }
    out.build()
}

/// Top-k by attribute: `order_by` then `limit` in one call.
pub fn top_k(rel: &RelationF, attr: &str, order: Order, k: usize) -> Result<RelationF> {
    limit(&order_by(rel, attr, order)?, k)
}

/// Renames attributes (`(old, new)` pairs); unknown old names error.
pub fn rename_attrs(rel: &RelationF, renames: &[(&str, &str)]) -> Result<RelationF> {
    let mut out = rel.builder_like();
    for (key, tuple) in rel.tuples()? {
        let mut b = TupleF::builder(tuple.name());
        for (n, v) in tuple.materialize()? {
            let name = renames
                .iter()
                .find(|(old, _)| *old == n.as_ref())
                .map(|(_, new)| *new)
                .unwrap_or(n.as_ref());
            b = b.attr(name, v);
        }
        out.push(key, b.build());
    }
    // validate that every rename matched at least one tuple's attribute
    if !rel.is_empty() {
        let (_, probe) = rel.tuples()?.remove(0);
        for (old, _) in renames {
            if !probe.has_attr(old) {
                return Err(FdmError::NoSuchAttribute {
                    attr: (*old).to_string(),
                });
            }
        }
    }
    out.build()
}

/// Semi-join: tuples of `rel` whose value under `attr` appears in `keys`.
/// (With `keys` taken from another function's image this is the classic
/// `EXISTS` — and exactly the primitive `reduce_db` builds on.)
pub fn semijoin(rel: &RelationF, attr: &str, keys: &BTreeSet<Value>) -> Result<RelationF> {
    crate::filter::filter_fn(rel, |t| Ok(keys.contains(&t.get(attr)?)))
}

/// Anti-join: tuples of `rel` whose value under `attr` does **not**
/// appear in `keys` (`NOT EXISTS` — without NULL pitfalls, because there
/// are no NULLs).
pub fn antijoin(rel: &RelationF, attr: &str, keys: &BTreeSet<Value>) -> Result<RelationF> {
    crate::filter::filter_fn(rel, |t| Ok(!keys.contains(&t.get(attr)?)))
}

/// DISTINCT over tuple *data*: keeps the first occurrence (in key
/// order) of every distinct tuple body and drops the duplicates that
/// joins and projections multiply out — closing the dedup carry-over
/// those operators left behind.
///
/// Dedup reuses the tuple's cached [`TupleF::fingerprint`] (the PR 3
/// `DataKey`): the seen-set is keyed by the precomputed 64-bit hash, so
/// the overwhelmingly common *unequal* case costs one integer probe, and
/// a hash collision falls back to the exact canonical-key comparison
/// ([`TupleF::eq_data`]) instead of trusting the hash. Join outputs that
/// already computed their fingerprints pay nothing extra here.
pub fn distinct(rel: &RelationF) -> Result<RelationF> {
    let mut seen: fdm_core::FxHashMap<u64, Vec<Arc<TupleF>>> = fdm_core::FxHashMap::default();
    let mut out = rel.builder_like();
    for (key, tuple) in rel.tuples()? {
        let hash = tuple.fingerprint()?.hash();
        let bucket = seen.entry(hash).or_default();
        if bucket.iter().any(|kept| kept.eq_data(&tuple)) {
            continue;
        }
        bucket.push(Arc::clone(&tuple));
        out.push_arc(key, tuple);
    }
    out.build()
}

/// Semi-join on the relation's *key* rather than an attribute.
pub fn semijoin_keys(rel: &RelationF, keys: &BTreeSet<Value>) -> Result<RelationF> {
    let mut out = rel.builder_like();
    for (key, tuple) in rel.tuples()? {
        if keys.contains(&key) {
            out.push_arc(key, tuple);
        }
    }
    out.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::customers_relation;

    #[test]
    fn extend_adds_computed_attribute() {
        let rel = customers_relation();
        let out = extend(&rel, "age_in_months", |t| {
            t.get("age")?.mul(&Value::Int(12))
        })
        .unwrap();
        let t = out.lookup(&Value::Int(1)).unwrap();
        assert_eq!(t.get("age_in_months").unwrap(), Value::Int(43 * 12));
        assert!(t.is_computed("age_in_months"));
        assert_eq!(t.get("name").unwrap(), Value::str("Alice"));
        // the original is untouched
        assert!(!rel
            .lookup(&Value::Int(1))
            .unwrap()
            .has_attr("age_in_months"));
    }

    #[test]
    fn extend_stored_materializes() {
        let rel = customers_relation();
        let out = extend_stored(&rel, "flag", |_| Ok(Value::Bool(true))).unwrap();
        let t = out.lookup(&Value::Int(2)).unwrap();
        assert!(!t.is_computed("flag"));
        assert_eq!(t.get("flag").unwrap(), Value::Bool(true));
    }

    #[test]
    fn order_by_is_a_rank_keyed_function() {
        let rel = customers_relation(); // ages 43, 30, 55
        let by_age = order_by(&rel, "age", Order::Asc).unwrap();
        assert_eq!(
            by_age.lookup(&Value::Int(0)).unwrap().get("age").unwrap(),
            Value::Int(30)
        );
        assert_eq!(
            by_age.lookup(&Value::Int(2)).unwrap().get("age").unwrap(),
            Value::Int(55)
        );
        let desc = order_by(&rel, "age", Order::Desc).unwrap();
        assert_eq!(
            desc.lookup(&Value::Int(0)).unwrap().get("age").unwrap(),
            Value::Int(55)
        );
        assert_eq!(by_age.key_attrs()[0].as_ref(), "rank");
    }

    #[test]
    fn top_k_composition() {
        let rel = customers_relation();
        let top2 = top_k(&rel, "age", Order::Desc, 2).unwrap();
        assert_eq!(top2.len(), 2);
        let names: Vec<Value> = top2
            .tuples()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.get("name").unwrap())
            .collect();
        assert_eq!(names, vec![Value::str("Carol"), Value::str("Alice")]);
        // limit beyond size is a no-op
        assert_eq!(limit(&rel, 100).unwrap().len(), 3);
        assert_eq!(limit(&rel, 0).unwrap().len(), 0);
    }

    /// Pins `distinct`'s multiplicity against an independent baseline: a
    /// `BTreeSet` over materialized canonical bodies (`DataKey::value`),
    /// which cannot share the fingerprint cache with the code under test.
    #[test]
    fn distinct_multiplicity_matches_btreeset_baseline() {
        // a projection-shaped relation: 7 rows, 3 distinct bodies
        let mut rel = RelationF::new("cities", &["rid"]);
        for (rid, city) in [
            (1, "Berlin"),
            (2, "Paris"),
            (3, "Berlin"),
            (4, "Lyon"),
            (5, "Paris"),
            (6, "Berlin"),
            (7, "Lyon"),
        ] {
            rel = rel
                .insert(
                    Value::Int(rid),
                    TupleF::builder("c").attr("city", city).build(),
                )
                .expect("unique rids");
        }
        let baseline: BTreeSet<Value> = rel
            .tuples()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.fingerprint().unwrap().value().clone())
            .collect();
        let out = distinct(&rel).unwrap();
        assert_eq!(out.len(), baseline.len(), "one survivor per distinct body");
        let out_bodies: BTreeSet<Value> = out
            .tuples()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.fingerprint().unwrap().value().clone())
            .collect();
        assert_eq!(out_bodies, baseline, "no body lost, none invented");
        // the survivor is the first occurrence in key order
        let keys: Vec<Value> = out.tuples().unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![Value::Int(1), Value::Int(2), Value::Int(4)]);
        // idempotent, and a no-op on an already-duplicate-free relation
        assert_eq!(distinct(&out).unwrap().len(), out.len());
        let unique = customers_relation();
        assert_eq!(distinct(&unique).unwrap().len(), unique.len());
    }

    #[test]
    fn rename_attrs_works_and_validates() {
        let rel = customers_relation();
        let out = rename_attrs(&rel, &[("name", "full_name")]).unwrap();
        let t = out.lookup(&Value::Int(1)).unwrap();
        assert!(t.has_attr("full_name"));
        assert!(!t.has_attr("name"));
        let err = rename_attrs(&rel, &[("nope", "x")]).unwrap_err();
        assert!(matches!(err, FdmError::NoSuchAttribute { .. }));
    }

    #[test]
    fn semi_and_anti_join_partition() {
        let rel = customers_relation();
        let keys: BTreeSet<Value> = [Value::Int(43), Value::Int(55)].into_iter().collect();
        let semi = semijoin(&rel, "age", &keys).unwrap();
        let anti = antijoin(&rel, "age", &keys).unwrap();
        assert_eq!(semi.len(), 2);
        assert_eq!(anti.len(), 1);
        assert_eq!(semi.len() + anti.len(), rel.len());
        let by_key: BTreeSet<Value> = [Value::Int(1)].into_iter().collect();
        assert_eq!(semijoin_keys(&rel, &by_key).unwrap().len(), 1);
    }

    #[test]
    fn stable_sort_breaks_ties_by_key() {
        let rel = customers_relation()
            .insert(
                Value::Int(9),
                TupleF::builder("c9")
                    .attr("name", "Zoe")
                    .attr("age", 43)
                    .build(),
            )
            .unwrap();
        let by_age = order_by(&rel, "age", Order::Asc).unwrap();
        // ties on 43: Alice (key 1) before Zoe (key 9)
        assert_eq!(
            by_age.lookup(&Value::Int(1)).unwrap().get("name").unwrap(),
            Value::str("Alice")
        );
        assert_eq!(
            by_age.lookup(&Value::Int(2)).unwrap().get("name").unwrap(),
            Value::str("Zoe")
        );
    }
}
