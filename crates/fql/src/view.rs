//! Views (paper §4.4): dynamic by default, materialized on request.
//!
//! `DB('myAwesomeView') := foo` binds an FQL expression into a database.
//! "We assume that all those assignments are dynamic unless explicitly
//! marked with a copy-function" — so a [`DynamicView`] stores the *plan*
//! and re-evaluates on every read, while [`materialize_view`] evaluates
//! once (`copy(foo)`) and stores the frozen result, with the usual
//! materialized-view trade-offs (storage, staleness).

use crate::plan::Query;
use crate::setops::deep_copy_relation;
use fdm_core::{DatabaseF, FnValue, RelationF, Result};

/// A dynamic view: a named, stored FQL plan re-evaluated on demand
/// against whatever database it is given.
#[derive(Debug, Clone)]
pub struct DynamicView {
    name: String,
    query: Query,
}

impl DynamicView {
    /// Creates a view from a plan.
    pub fn new(name: impl Into<String>, query: Query) -> Self {
        DynamicView {
            name: name.into(),
            query,
        }
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying plan.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Evaluates the view against `db` — always fresh, through the full
    /// default optimizer (the same plan the maintained path compiles),
    /// not just the statistics-free rewrite set.
    pub fn eval(&self, db: &DatabaseF) -> Result<RelationF> {
        Ok(self
            .query
            .clone()
            .optimize_for(db)
            .eval(db)?
            .renamed(&self.name))
    }
}

/// `DB(name) := copy(view)` — evaluates the view *now* and stores the
/// frozen result as an ordinary relation entry. Until re-materialized it
/// will not reflect later base-data changes.
pub fn materialize_view(db: &DatabaseF, view: &DynamicView) -> Result<DatabaseF> {
    let rel = view.eval(db)?;
    // freeze computed attributes too, exactly like deep_copy — directly at
    // relation granularity, no throwaway database wrapper
    let frozen = deep_copy_relation(&rel)?;
    Ok(db.with_entry(view.name(), FnValue::from(frozen)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::retail_db;
    use crate::update::db_upsert;
    use fdm_core::{TupleF, Value};
    use fdm_expr::Params;

    fn old_customers_view() -> DynamicView {
        DynamicView::new(
            "old_customers",
            Query::scan("customers").filter("age > $min", Params::new().set("min", 42)),
        )
    }

    #[test]
    fn dynamic_view_tracks_base_changes() {
        let db = retail_db();
        let view = old_customers_view();
        assert_eq!(view.eval(&db).unwrap().len(), 2);
        // insert another old customer — the view sees it on next eval
        let db2 = db_upsert(
            &db,
            "customers",
            Value::Int(9),
            TupleF::builder("c")
                .attr("name", "Zoe")
                .attr("age", 70)
                .build(),
        )
        .unwrap();
        assert_eq!(view.eval(&db2).unwrap().len(), 3, "dynamic: always fresh");
    }

    #[test]
    fn materialized_view_is_frozen() {
        let db = retail_db();
        let view = old_customers_view();
        let db_m = materialize_view(&db, &view).unwrap();
        assert_eq!(db_m.relation("old_customers").unwrap().len(), 2);
        // change the base inside the SAME database value
        let db_m2 = db_upsert(
            &db_m,
            "customers",
            Value::Int(9),
            TupleF::builder("c")
                .attr("name", "Zoe")
                .attr("age", 70)
                .build(),
        )
        .unwrap();
        // the stored view entry did not move
        assert_eq!(
            db_m2.relation("old_customers").unwrap().len(),
            2,
            "materialized: stale until refreshed"
        );
        // refreshing re-materializes
        let db_m3 = materialize_view(&db_m2, &view).unwrap();
        assert_eq!(db_m3.relation("old_customers").unwrap().len(), 3);
    }

    #[test]
    fn dynamic_eval_runs_the_default_optimizer() {
        // pinned byte-identical: the ad-hoc path must produce exactly
        // what evaluating `Optimizer::default()`'s plan produces — same
        // canonical keys, same tuple data keys, in the same order
        let db = crate::testutil::skewed_db();
        let view = DynamicView::new(
            "wide_by_nk",
            Query::scan("base")
                .join("wide", "wk", "k")
                .join("narrow", "nk", "k2")
                .filter("2 > 1 and nk >= 2", Params::new()),
        );
        let ad_hoc = view.eval(&db).unwrap();
        let planned = crate::optimizer::Optimizer::default()
            .optimize(view.query().clone(), &db)
            .eval(&db)
            .unwrap()
            .renamed(view.name());
        let keyed = |rel: &fdm_core::RelationF| {
            rel.tuples()
                .unwrap()
                .into_iter()
                .map(|(k, t)| (k, t.data_key().unwrap()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ad_hoc.name(), planned.name());
        assert_eq!(keyed(&ad_hoc), keyed(&planned));
    }

    #[test]
    fn view_is_named() {
        let db = retail_db();
        let view = old_customers_view();
        assert_eq!(view.eval(&db).unwrap().name(), "old_customers");
        assert_eq!(view.name(), "old_customers");
    }
}
