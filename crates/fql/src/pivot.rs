//! Pivot: the paper's footnote 2 (§2.2) — "for pivot tables [the natural
//! input] may be the individual **data values** of an attribute of the
//! underlying column".
//!
//! In FDM a pivot needs no special machinery: the distinct values of the
//! pivot attribute simply *become the domain* of the output functions.
//! `pivot(rel, row, col, agg)` returns a relation function keyed by the
//! row attribute whose tuples have **one attribute per distinct column
//! value** — data became schema, which is exactly the boundary the model
//! tears down.
//!
//! Cells with no contributing tuples are *absent attributes* (the tuple
//! function is not defined there), not NULLs.

use crate::aggregate::AggSpec;
use fdm_core::{FdmError, RelationBuilder, RelationF, Result, TupleF, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Pivots `rel`: one output tuple per distinct `row_attr` value, one
/// output attribute per distinct `col_attr` value, each holding `agg`
/// over the tuples in that (row, col) cell.
///
/// Column names are the display form of the column values (e.g. ages
/// `30`, `43` become attributes `"30"`, `"43"`); the row value is kept
/// under `row_attr`.
pub fn pivot(rel: &RelationF, row_attr: &str, col_attr: &str, agg: &AggSpec) -> Result<RelationF> {
    if row_attr == col_attr {
        return Err(FdmError::Other(
            "pivot: row and column attribute must differ".to_string(),
        ));
    }
    // bucket tuples by (row value, col value)
    let mut cells: BTreeMap<Value, BTreeMap<Value, Vec<Arc<TupleF>>>> = BTreeMap::new();
    let mut all_cols: Vec<Value> = Vec::new();
    for (_, tuple) in rel.tuples()? {
        let r = tuple.get(row_attr)?;
        let c = tuple.get(col_attr)?;
        if !all_cols.contains(&c) {
            all_cols.push(c.clone());
        }
        cells
            .entry(r)
            .or_default()
            .entry(c)
            .or_default()
            .push(tuple);
    }
    all_cols.sort();

    // `cells` iterates in ascending row-key order → no-sort bulk path.
    let mut out = RelationBuilder::new(format!("{}_pivot_{col_attr}", rel.name()), &[row_attr]);
    for (row, cols) in cells {
        let mut b = TupleF::builder(format!("pivot[{row}]"));
        b = b.attr(row_attr, row.clone());
        for col in &all_cols {
            if let Some(members) = cols.get(col) {
                // the column VALUE becomes the attribute NAME
                let col_name = match col {
                    Value::Str(s) => s.to_string(),
                    other => other.to_string(),
                };
                b = b.attr(&col_name, agg.eval(members)?);
            }
            // absent cell: the tuple function is simply not defined at
            // that attribute — no NULL exists to insert.
        }
        out.push(row, b.build());
    }
    out.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> RelationF {
        let mut rel = RelationF::new("sales", &["id"]);
        for (id, region, quarter, amount) in [
            (1, "EU", "Q1", 100),
            (2, "EU", "Q2", 150),
            (3, "US", "Q1", 80),
            (4, "US", "Q1", 20),
            (5, "US", "Q3", 60),
        ] {
            rel = rel
                .insert(
                    Value::Int(id),
                    TupleF::builder("s")
                        .attr("region", region)
                        .attr("quarter", quarter)
                        .attr("amount", amount)
                        .build(),
                )
                .unwrap();
        }
        rel
    }

    #[test]
    fn pivot_data_values_become_attributes() {
        let p = pivot(
            &sales(),
            "region",
            "quarter",
            &AggSpec::Sum("amount".into()),
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        let eu = p.lookup(&Value::str("EU")).unwrap();
        assert_eq!(eu.get("Q1").unwrap(), Value::Int(100));
        assert_eq!(eu.get("Q2").unwrap(), Value::Int(150));
        // EU never sold in Q3: the attribute is ABSENT, not NULL
        assert!(!eu.has_attr("Q3"));
        let us = p.lookup(&Value::str("US")).unwrap();
        assert_eq!(us.get("Q1").unwrap(), Value::Int(100), "80 + 20 aggregated");
        assert_eq!(us.get("Q3").unwrap(), Value::Int(60));
        assert!(!us.has_attr("Q2"));
    }

    #[test]
    fn pivot_with_count() {
        let p = pivot(&sales(), "quarter", "region", &AggSpec::Count).unwrap();
        assert_eq!(p.len(), 3);
        let q1 = p.lookup(&Value::str("Q1")).unwrap();
        assert_eq!(q1.get("EU").unwrap(), Value::Int(1));
        assert_eq!(q1.get("US").unwrap(), Value::Int(2));
    }

    #[test]
    fn numeric_column_values_stringify() {
        let mut rel = RelationF::new("t", &["id"]);
        for (id, age, grp) in [(1, 30, "a"), (2, 40, "a"), (3, 30, "b")] {
            rel = rel
                .insert(
                    Value::Int(id),
                    TupleF::builder("x")
                        .attr("age", age)
                        .attr("grp", grp)
                        .build(),
                )
                .unwrap();
        }
        let p = pivot(&rel, "grp", "age", &AggSpec::Count).unwrap();
        let a = p.lookup(&Value::str("a")).unwrap();
        assert_eq!(a.get("30").unwrap(), Value::Int(1));
        assert_eq!(a.get("40").unwrap(), Value::Int(1));
        let b = p.lookup(&Value::str("b")).unwrap();
        assert!(!b.has_attr("40"));
    }

    #[test]
    fn pivot_errors() {
        assert!(pivot(&sales(), "region", "region", &AggSpec::Count).is_err());
        assert!(pivot(&sales(), "nope", "region", &AggSpec::Count).is_err());
        let empty = RelationF::new("e", &["id"]);
        let p = pivot(&empty, "a", "b", &AggSpec::Count).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn pivoted_output_is_an_ordinary_relation_function() {
        // the output can be filtered, extended, joined — it's just a
        // relation function whose schema came from data
        let p = pivot(
            &sales(),
            "region",
            "quarter",
            &AggSpec::Sum("amount".into()),
        )
        .unwrap();
        let big = crate::filter::filter_fn(&p, |t| {
            Ok(t.try_get("Q1").is_some_and(|v| v > Value::Int(90)))
        })
        .unwrap();
        assert_eq!(big.len(), 2);
    }
}
