//! Set operations on **entire databases** (paper Fig. 9).
//!
//! SQL's UNION/INTERSECT/EXCEPT work on single relations; FQL lifts them
//! one level: `union(DB, DB_copy)` operates relation-wise over whole
//! database functions, and [`difference`] computes a *differential
//! database* showing, per relation, what was added and what was removed —
//! the paper's "DB_diff just showing changes".
//!
//! Element identity for these operations is the **mapping**: a relation
//! function is a set of `key → tuple` assignments, so two relations share
//! an element when they map the *same key* to *data-equal tuples*
//! ([`fdm_core::TupleF::data_key`] — evaluated attributes,
//! order-insensitive, so stored vs computed stays invisible, as the model
//! demands). Union is left-biased when the same key maps to different
//! data in the two inputs (the result must stay a function: one output
//! per input).

//! Implementation note: each relation's mappings are (or become) a
//! persistent key-ordered map, and the set operations run as **O(n + m)
//! sorted two-pointer merges** ([`fdm_storage::PMap::merge_union`] and
//! friends) feeding one bulk tree build — not a per-element
//! insert/lookup loop. For plain stored relations the input map is shared
//! O(1) from the relation body; data keys (the expensive part: a
//! materialized, order-insensitive attribute fingerprint) are needed only
//! for the keys both inputs share, where data equality actually decides
//! something — and they come from each tuple's **cached fingerprint**
//! ([`fdm_core::TupleF::fingerprint`]): the first differential over a
//! database pays the materialization once per shared tuple, every later
//! one compares two precomputed hashes.

use fdm_core::{
    par_map_chunks, DatabaseF, FdmError, FnValue, Name, ParConfig, ParallelBuilder, RelationF,
    Result, TupleF, Value,
};
use fdm_storage::PMap;
use std::sync::Arc;

/// Deep-copies one relation function: every tuple is re-materialized into
/// fresh storage, computed attributes evaluated and frozen (§4.4's
/// `copy(foo)` at relation granularity — what
/// [`materialize_view`](crate::view::materialize_view) stores, instead of
/// wrapping the relation in a throwaway database). The per-tuple re-build is
/// pure per-entry work, so large relations copy in parallel chunks
/// ([`par_map_chunks`]) k-way-merged back in key order — byte-identical
/// to the sequential copy.
pub fn deep_copy_relation(rel: &RelationF) -> Result<RelationF> {
    let copy_tuple = |tuple: &Arc<TupleF>| -> Result<TupleF> {
        // names are already interned — no re-allocation
        Ok(TupleF::from_parts(tuple.name(), tuple.materialize()?))
    };
    let entries = rel.tuples()?;
    let cfg = ParConfig::from_env();
    if cfg.should_parallelize(entries.len()) {
        let runs = par_map_chunks(&entries, cfg.threads, |chunk| -> Result<Vec<_>> {
            chunk
                .iter()
                .map(|(key, tuple)| Ok((key.clone(), Arc::new(copy_tuple(tuple)?))))
                .collect()
        });
        let mut out = ParallelBuilder::for_relation(rel);
        for run in runs {
            out.push_run(run?);
        }
        return out.build();
    }
    let mut out = rel.builder_like();
    for (key, tuple) in entries {
        out.push(key, copy_tuple(&tuple)?);
    }
    out.build()
}

/// A deep copy of a database: every relation's tuples are materialized
/// into fresh storage (paper Fig. 9 `deep_copy(DB)`, and §4.4's
/// `copy(foo)` for materialized views). Computed attributes are evaluated
/// and frozen — the copy is a snapshot of *values*, not of formulas.
/// Each relation copies through [`deep_copy_relation`] (parallel above
/// the cutoff).
pub fn deep_copy(db: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("{}_copy", db.name()));
    for (name, entry) in db.iter() {
        match entry {
            FnValue::Relation(rel) => {
                out = out.with_entry(name.as_ref(), FnValue::from(deep_copy_relation(rel)?));
            }
            FnValue::Database(inner) => {
                let copied = deep_copy(inner)?;
                out = out.with_entry(name.as_ref(), FnValue::from(copied));
            }
            other => {
                out = out.with_entry(name.as_ref(), other.clone());
            }
        }
    }
    for (_, d) in db.shared_domains() {
        out = out.with_domain(d.clone());
    }
    Ok(out)
}

/// A relation's mappings as a persistent key → tuple map: shared O(1)
/// from a plain stored body, bulk-built O(n) from the (key-ordered)
/// enumerated tuples otherwise. Multi bodies collapse duplicate keys to
/// the last tuple, matching the old `BTreeMap::insert` indexing.
pub(crate) fn key_map(rel: &RelationF) -> Result<PMap<Value, Arc<TupleF>>> {
    if let Some(m) = rel.stored_map() {
        return Ok(m.clone());
    }
    let mut entries = rel.tuples()?;
    if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        // stable sort → the last tuple of a duplicate-key run wins
        entries.reverse();
        entries.dedup_by(|a, b| a.0 == b.0);
        entries.reverse();
    }
    Ok(PMap::from_sorted_vec(entries))
}

/// Wraps a merged map as an output relation shaped like `template`
/// (same name and key attributes, unconstrained like every operator
/// output).
fn from_merged(template: &RelationF, map: PMap<Value, Arc<TupleF>>) -> RelationF {
    RelationF::from_stored_map(
        template.name(),
        &crate::filter::key_attr_strs(template),
        map,
    )
}

/// Compares two same-key tuples by their cached data-key fingerprints
/// (hash first, full key only on hash equality), reporting the first
/// materialization error through `err` (the merge combiners cannot return
/// `Result` themselves).
fn data_equal(ta: &TupleF, tb: &TupleF, err: &mut Option<FdmError>) -> bool {
    if err.is_some() {
        return false;
    }
    match (ta.fingerprint(), tb.fingerprint()) {
        (Ok(da), Ok(db_)) => da == db_,
        (Err(e), _) | (_, Err(e)) => {
            *err = Some(e);
            false
        }
    }
}

/// Relation-wise set union of two databases: every relation name present
/// in either input appears in the output with the union of its mappings.
/// When both inputs map the same key (to equal or different data), the
/// left input's tuple wins — the result must remain a function.
pub fn union(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("({} union {})", a.name(), b.name()));
    let mut names: Vec<Name> = Vec::new();
    for (n, e) in a.iter() {
        if matches!(e, FnValue::Relation(_)) {
            names.push(n.clone());
        }
    }
    for (n, e) in b.iter() {
        if matches!(e, FnValue::Relation(_)) && !names.contains(n) {
            names.push(n.clone());
        }
    }
    for name in names {
        let template = a
            .relation(&name)
            .or_else(|_| b.relation(&name))
            .expect("name came from one of the inputs");
        let ma = match a.relation(&name) {
            Ok(r) => key_map(&r)?,
            Err(_) => PMap::new(),
        };
        let mb = match b.relation(&name) {
            Ok(r) => key_map(&r)?,
            Err(_) => PMap::new(),
        };
        // left-biased key merge; no data keys needed — the key decides
        out = out.with_entry(
            name.as_ref(),
            FnValue::from(from_merged(&template, ma.merge_union(&mb))),
        );
    }
    Ok(out)
}

/// Relation-wise intersection: only relation names present in both inputs
/// appear, holding the tuples common to both (same key, data-equal
/// tuples).
pub fn intersect(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("({} ∩ {})", a.name(), b.name()));
    for (name, entry) in a.iter() {
        let FnValue::Relation(ra) = entry else {
            continue;
        };
        let Ok(rb) = b.relation(name) else { continue };
        let ma = key_map(ra)?;
        let mb = key_map(&rb)?;
        let mut err = None;
        let merged = ma.merge_intersection_with(&mb, |_, ta, tb| {
            data_equal(ta, tb, &mut err).then(|| ta.clone())
        });
        if let Some(e) = err {
            return Err(e);
        }
        out = out.with_entry(name.as_ref(), FnValue::from(from_merged(ra, merged)));
    }
    Ok(out)
}

/// Relation-wise difference `a − b`: relations of `a` minus the tuples
/// (by data equality) that also appear in `b`'s same-named relation.
pub fn minus(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("({} − {})", a.name(), b.name()));
    for (name, entry) in a.iter() {
        let FnValue::Relation(ra) = entry else {
            continue;
        };
        let ma = key_map(ra)?;
        let mb = match b.relation(name) {
            Ok(rb) => key_map(&rb)?,
            Err(_) => PMap::new(),
        };
        let mut err = None;
        // keep mappings of `a` that are not (key, data)-present in `b`
        let merged = ma.merge_difference_with(&mb, |_, ta, tb| {
            (!data_equal(ta, tb, &mut err) && err.is_none()).then(|| ta.clone())
        });
        if let Some(e) = err {
            return Err(e);
        }
        out = out.with_entry(name.as_ref(), FnValue::from(from_merged(ra, merged)));
    }
    Ok(out)
}

/// The differential database (Fig. 9 `difference(DB, DB_copy)`): for every
/// relation name in either input, two output entries —
/// `"<rel>.added"` (in `b` but not `a`) and `"<rel>.removed"` (in `a` but
/// not `b`). Unchanged tuples appear nowhere: the result "just shows
/// changes".
pub fn difference(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let removed = minus(a, b)?;
    let added = minus(b, a)?;
    let mut out = DatabaseF::new(format!("diff({}, {})", a.name(), b.name()));
    let mut names: Vec<&str> = Vec::new();
    for (n, _) in a.iter() {
        names.push(n.as_ref());
    }
    for (n, _) in b.iter() {
        if !names.contains(&n.as_ref()) {
            names.push(n.as_ref());
        }
    }
    for name in names {
        if let Ok(r) = added.relation(name) {
            if !r.is_empty() {
                out = out.with_entry(format!("{name}.added"), FnValue::from((*r).clone()));
            }
        }
        if let Ok(r) = removed.relation(name) {
            if !r.is_empty() {
                out = out.with_entry(format!("{name}.removed"), FnValue::from((*r).clone()));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{customers_relation, retail_db};

    #[test]
    fn fig9_deep_copy_then_diff() {
        let db = retail_db();
        let copy = deep_copy(&db).unwrap();
        // untouched copy: empty diff
        let diff = difference(&db, &copy).unwrap();
        assert!(diff.is_empty(), "no changes yet: {diff:?}");

        // change the copy: delete Bob, add Dave
        let customers = copy.relation("customers").unwrap();
        let customers = customers.delete(&Value::Int(2)).unwrap();
        let customers = customers
            .insert(
                Value::Int(4),
                TupleF::builder("c4")
                    .attr("name", "Dave")
                    .attr("age", 28)
                    .build(),
            )
            .unwrap();
        let copy2 = copy.with_entry("customers", FnValue::from(customers));

        let diff = difference(&db, &copy2).unwrap();
        let added = diff.relation("customers.added").unwrap();
        let removed = diff.relation("customers.removed").unwrap();
        assert_eq!(added.len(), 1);
        assert_eq!(removed.len(), 1);
        let (_, t) = added.tuples().unwrap().remove(0);
        assert_eq!(t.get("name").unwrap(), Value::str("Dave"));
        let (_, t) = removed.tuples().unwrap().remove(0);
        assert_eq!(t.get("name").unwrap(), Value::str("Bob"));
        assert!(
            !diff.contains("products.added"),
            "unchanged relations absent"
        );
    }

    #[test]
    fn union_intersect_minus_databases() {
        let db = retail_db();
        let copy = deep_copy(&db).unwrap();
        let customers = copy.relation("customers").unwrap();
        let customers = customers
            .insert(
                Value::Int(4),
                TupleF::builder("c4")
                    .attr("name", "Dave")
                    .attr("age", 28)
                    .build(),
            )
            .unwrap();
        let copy2 = copy.with_entry("customers", FnValue::from(customers));

        let u = union(&db, &copy2).unwrap();
        assert_eq!(u.relation("customers").unwrap().len(), 4);
        let i = intersect(&db, &copy2).unwrap();
        assert_eq!(i.relation("customers").unwrap().len(), 3);
        let m = minus(&copy2, &db).unwrap();
        assert_eq!(m.relation("customers").unwrap().len(), 1);
        let m2 = minus(&db, &copy2).unwrap();
        assert_eq!(m2.relation("customers").unwrap().len(), 0);
    }

    #[test]
    fn union_handles_disjoint_relation_names() {
        let a = DatabaseF::new("a").with_relation(customers_relation());
        let b = DatabaseF::new("b").with_relation(customers_relation().renamed("clients"));
        let u = union(&a, &b).unwrap();
        assert!(u.contains("customers"));
        assert!(u.contains("clients"));
        let i = intersect(&a, &b).unwrap();
        assert!(i.is_empty());
    }

    #[test]
    fn data_equality_sees_through_computed_attrs() {
        // stored age 43 == computed age 43: copies compare equal
        let stored = RelationF::new("r", &["id"])
            .insert(Value::Int(1), TupleF::builder("t").attr("age", 43).build())
            .unwrap();
        let computed = RelationF::new("r", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("t")
                    .computed("age", |_| Ok(Value::Int(43)))
                    .build(),
            )
            .unwrap();
        let a = DatabaseF::new("a").with_relation(stored);
        let b = DatabaseF::new("b").with_relation(computed);
        let diff = difference(&a, &b).unwrap();
        assert!(diff.is_empty(), "stored vs computed is invisible: {diff:?}");
    }

    #[test]
    fn deep_copy_freezes_computed_attributes() {
        let rel = RelationF::new("r", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("t")
                    .attr("x", 2)
                    .computed("sq", |t| t.get("x")?.mul(&Value::Int(2)))
                    .build(),
            )
            .unwrap();
        let db = DatabaseF::new("d").with_relation(rel);
        let copy = deep_copy(&db).unwrap();
        let t = copy.relation("r").unwrap().lookup(&Value::Int(1)).unwrap();
        assert!(!t.is_computed("sq"), "materialized in the copy");
        assert_eq!(t.get("sq").unwrap(), Value::Int(4));
    }

    #[test]
    fn nested_databases_copy_recursively() {
        let inner = DatabaseF::new("inner").with_relation(customers_relation());
        let outerdb = DatabaseF::new("outer").with_entry("tenant", FnValue::from(inner));
        let copy = deep_copy(&outerdb).unwrap();
        assert_eq!(
            copy.database("tenant")
                .unwrap()
                .relation("customers")
                .unwrap()
                .len(),
            3
        );
    }
}
