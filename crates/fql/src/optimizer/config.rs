//! Typed optimizer configuration, with the legacy environment switches as
//! documented fallbacks.
//!
//! Before PR 8 the planner's knobs were two scattered `std::env` reads:
//! `FDM_PLAN_REORDER=off` in `Query::optimize_for` and
//! `FDM_JOIN_COST=entries` in the schema-level `join`. Both now live in
//! [`OptimizerConfig`]. **Precedence is: explicit config beats
//! environment beats built-in default**, and the environment is consulted
//! at *resolution* time (each [`OptimizerConfig::reorder`] /
//! [`OptimizerConfig::join_cost`] call), so A/B test harnesses that flip
//! the variables around an already-constructed [`crate::Optimizer`] keep
//! working. The precedence is pinned by
//! `config_beats_env_beats_default` in this module and exercised
//! end-to-end by `tests/tests/optimizer_rules.rs`.

/// How (and whether) the optimizer may reorder joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderStrategy {
    /// Keep the declared left-deep order — the A/B baseline
    /// (`FDM_PLAN_REORDER=off`).
    Off,
    /// The PR 5 bubble pass: swap *adjacent* independent joins when the
    /// swap strictly shrinks the inner estimate
    /// (`FDM_PLAN_REORDER=adjacent`).
    Adjacent,
    /// Greedy n-way enumeration over the whole join chain, smallest
    /// estimated fan-out first (the default).
    Greedy,
}

/// Which cost signal the schema-level [`crate::join()`] uses to order
/// its relationship probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinCostModel {
    /// Raw relationship entry counts — the PR 2 heuristic
    /// (`FDM_JOIN_COST=entries`).
    Entries,
    /// Estimated output rows from [`fdm_core::stats`] (the default).
    Stats,
}

/// Optimizer knobs. Unset fields (`None`) resolve through the legacy
/// environment variables, then to the built-in defaults — see the module
/// docs for the pinned precedence.
///
/// ```
/// use fdm_fql::optimizer::{OptimizerConfig, ReorderStrategy};
///
/// let cfg = OptimizerConfig::new().with_reorder(ReorderStrategy::Off);
/// assert_eq!(cfg.reorder(), ReorderStrategy::Off); // env no longer consulted
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerConfig {
    reorder: Option<ReorderStrategy>,
    join_cost: Option<JoinCostModel>,
    max_passes: Option<usize>,
}

impl OptimizerConfig {
    /// The documented fixpoint pass cap (see
    /// [`crate::Optimizer::optimize_traced`]): plans are shallow trees and
    /// every rule in the default set strictly shrinks some measure, so
    /// real plans converge in a handful of passes — the cap only bounds a
    /// misbehaving user rule.
    pub const DEFAULT_MAX_PASSES: usize = 64;

    /// A config with every knob unset (environment/defaults apply).
    pub fn new() -> OptimizerConfig {
        OptimizerConfig::default()
    }

    /// Pins the join-reordering strategy, overriding `FDM_PLAN_REORDER`.
    pub fn with_reorder(mut self, strategy: ReorderStrategy) -> OptimizerConfig {
        self.reorder = Some(strategy);
        self
    }

    /// Pins the schema-join cost model, overriding `FDM_JOIN_COST`.
    pub fn with_join_cost(mut self, model: JoinCostModel) -> OptimizerConfig {
        self.join_cost = Some(model);
        self
    }

    /// Caps the fixpoint driver's passes (default
    /// [`Self::DEFAULT_MAX_PASSES`]).
    pub fn with_max_passes(mut self, passes: usize) -> OptimizerConfig {
        self.max_passes = Some(passes.max(1));
        self
    }

    /// The effective reorder strategy: explicit setting, else
    /// `FDM_PLAN_REORDER` (`off` / `adjacent`; any other value means the
    /// default), else [`ReorderStrategy::Greedy`].
    pub fn reorder(&self) -> ReorderStrategy {
        self.reorder
            .unwrap_or_else(|| match std::env::var("FDM_PLAN_REORDER").as_deref() {
                Ok("off") => ReorderStrategy::Off,
                Ok("adjacent") => ReorderStrategy::Adjacent,
                _ => ReorderStrategy::Greedy,
            })
    }

    /// The effective schema-join cost model: explicit setting, else
    /// `FDM_JOIN_COST` (`entries`; any other value means the default),
    /// else [`JoinCostModel::Stats`].
    pub fn join_cost(&self) -> JoinCostModel {
        self.join_cost
            .unwrap_or_else(|| match std::env::var("FDM_JOIN_COST").as_deref() {
                Ok("entries") => JoinCostModel::Entries,
                _ => JoinCostModel::Stats,
            })
    }

    /// The effective fixpoint pass cap (never 0).
    pub fn max_passes(&self) -> usize {
        self.max_passes.unwrap_or(Self::DEFAULT_MAX_PASSES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Env mutations race across test threads; serialize them.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_env(key: &str, value: Option<&str>, f: impl FnOnce()) {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var(key).ok();
        match value {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
        f();
        match prev {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }

    #[test]
    fn config_beats_env_beats_default() {
        with_env("FDM_PLAN_REORDER", Some("off"), || {
            // default: env fallback applies
            assert_eq!(OptimizerConfig::new().reorder(), ReorderStrategy::Off);
            // explicit config wins over the environment
            let pinned = OptimizerConfig::new().with_reorder(ReorderStrategy::Greedy);
            assert_eq!(pinned.reorder(), ReorderStrategy::Greedy);
        });
        with_env("FDM_PLAN_REORDER", None, || {
            // no env, no config: built-in default
            assert_eq!(OptimizerConfig::new().reorder(), ReorderStrategy::Greedy);
        });
        with_env("FDM_PLAN_REORDER", Some("adjacent"), || {
            assert_eq!(OptimizerConfig::new().reorder(), ReorderStrategy::Adjacent);
        });
    }

    #[test]
    fn join_cost_resolution() {
        with_env("FDM_JOIN_COST", Some("entries"), || {
            assert_eq!(OptimizerConfig::new().join_cost(), JoinCostModel::Entries);
            let pinned = OptimizerConfig::new().with_join_cost(JoinCostModel::Stats);
            assert_eq!(pinned.join_cost(), JoinCostModel::Stats);
        });
        with_env("FDM_JOIN_COST", None, || {
            assert_eq!(OptimizerConfig::new().join_cost(), JoinCostModel::Stats);
        });
    }

    #[test]
    fn pass_cap_is_never_zero() {
        assert_eq!(
            OptimizerConfig::new().max_passes(),
            OptimizerConfig::DEFAULT_MAX_PASSES
        );
        assert_eq!(OptimizerConfig::new().with_max_passes(0).max_passes(), 1);
    }
}
