//! Constant folding over filter predicates, via the `fdm_expr` evaluator.

use crate::optimizer::{OptimizationRule, PlanContext};
use crate::plan::Query;
use fdm_core::{TupleF, Value};
use fdm_expr::{BinOp, Expr};
use std::sync::Arc;

/// Evaluates constant predicate subexpressions at plan time with the very
/// evaluator that would run them per-tuple at execution time, so folding
/// cannot change semantics — `10 > 3 and age > 40` becomes `age > 40`,
/// and a filter whose whole predicate folds to `true` disappears.
///
/// A subexpression folds when it references no attributes, no unbound
/// parameters, and no scalar-function calls (calls resolve against a
/// registry at evaluation time and are conservatively left alone). On top
/// of pure folding, the short-circuit boolean identities are applied:
/// `true and x → x`, `false and x → false`, `true or x → true`,
/// `false or x → x`, plus the right-side cases that cannot suppress a
/// left-side runtime error (`x and true → x`, `x or false → x`). A
/// subexpression whose constant evaluation *errors* (`1 + 'a'`) is left
/// in place: the error still surfaces at [`Query::eval`], exactly as
/// declared.
///
/// Pinned by the unit tests in this module and the result-equivalence
/// proptest in `tests/tests/optimizer_rules.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFoldingExpr;

impl OptimizationRule for ConstantFoldingExpr {
    fn name(&self) -> &'static str {
        "constant_folding"
    }

    fn apply(&self, plan: &Query, _ctx: &PlanContext) -> Option<Query> {
        let (next, changed) = fold_plan(plan.clone());
        changed.then_some(next)
    }
}

fn fold_plan(q: Query) -> (Query, bool) {
    match q {
        Query::Filter { input, pred } => {
            let (inner, c_in) = fold_plan(*input);
            let (folded, c_pred) = fold_expr(&pred);
            if matches!(folded, Expr::Lit(Value::Bool(true))) {
                // the filter keeps every tuple under its own key — drop it
                return (inner, true);
            }
            (
                Query::Filter {
                    input: Box::new(inner),
                    pred: if c_pred { folded } else { pred },
                },
                c_in || c_pred,
            )
        }
        Query::Project { input, attrs } => {
            let (inner, c) = fold_plan(*input);
            (
                Query::Project {
                    input: Box::new(inner),
                    attrs,
                },
                c,
            )
        }
        Query::Join {
            input,
            rel,
            input_attr,
            rel_attr,
        } => {
            let (inner, c) = fold_plan(*input);
            (
                Query::Join {
                    input: Box::new(inner),
                    rel,
                    input_attr,
                    rel_attr,
                },
                c,
            )
        }
        Query::GroupAgg { input, by, aggs } => {
            let (inner, c) = fold_plan(*input);
            (
                Query::GroupAgg {
                    input: Box::new(inner),
                    by,
                    aggs,
                },
                c,
            )
        }
        Query::OrderBy { input, attr, order } => {
            let (inner, c) = fold_plan(*input);
            (
                Query::OrderBy {
                    input: Box::new(inner),
                    attr,
                    order,
                },
                c,
            )
        }
        Query::Limit { input, k } => {
            let (inner, c) = fold_plan(*input);
            (
                Query::Limit {
                    input: Box::new(inner),
                    k,
                },
                c,
            )
        }
        leaf @ (Query::Scan { .. } | Query::Invalid { .. }) => (leaf, false),
    }
}

/// `true` when evaluating `e` needs no tuple, no parameters, and no
/// function registry — i.e. plan-time evaluation is the same computation
/// execution would repeat per tuple.
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) => true,
        Expr::Attr(_) | Expr::Param(_) | Expr::Call { .. } => false,
        Expr::Bin { lhs, rhs, .. } => is_const(lhs) && is_const(rhs),
        Expr::Not(x) | Expr::Neg(x) => is_const(x),
    }
}

/// Folds children first, then the node itself when it became constant.
fn fold_expr(e: &Expr) -> (Expr, bool) {
    match e {
        Expr::Lit(_) | Expr::Attr(_) | Expr::Param(_) => (e.clone(), false),
        Expr::Not(x) => {
            let (fx, c) = fold_expr(x);
            finish(Expr::Not(Arc::new(fx)), c)
        }
        Expr::Neg(x) => {
            let (fx, c) = fold_expr(x);
            finish(Expr::Neg(Arc::new(fx)), c)
        }
        Expr::Bin { op, lhs, rhs } => {
            let (fl, cl) = fold_expr(lhs);
            let (fr, cr) = fold_expr(rhs);
            // Short-circuit boolean identities. Left-literal cases mirror
            // the evaluator's own short-circuiting; of the right-literal
            // cases only the ones that keep evaluating the left side
            // (`and true`, `or false`) are safe — `x and false → false`
            // would suppress a runtime error in `x`.
            let lit_bool = |e: &Expr| match e {
                Expr::Lit(Value::Bool(b)) => Some(*b),
                _ => None,
            };
            match (op, lit_bool(&fl), lit_bool(&fr)) {
                (BinOp::And, Some(true), _) => return (fr, true),
                (BinOp::And, Some(false), _) => return (Expr::Lit(Value::Bool(false)), true),
                (BinOp::And, None, Some(true)) => return (fl, true),
                (BinOp::Or, Some(true), _) => return (Expr::Lit(Value::Bool(true)), true),
                (BinOp::Or, Some(false), _) => return (fr, true),
                (BinOp::Or, None, Some(false)) => return (fl, true),
                _ => {}
            }
            finish(
                Expr::Bin {
                    op: *op,
                    lhs: Arc::new(fl),
                    rhs: Arc::new(fr),
                },
                cl || cr,
            )
        }
        Expr::Call { name, args } => {
            // fold the arguments, never the call itself
            let mut changed = false;
            let folded: Vec<Arc<Expr>> = args
                .iter()
                .map(|a| {
                    let (fa, c) = fold_expr(a);
                    changed |= c;
                    Arc::new(fa)
                })
                .collect();
            (
                Expr::Call {
                    name: name.clone(),
                    args: folded,
                },
                changed,
            )
        }
    }
}

fn finish(e: Expr, changed: bool) -> (Expr, bool) {
    if !matches!(e, Expr::Lit(_)) && is_const(&e) {
        let empty = TupleF::builder("const").build();
        if let Ok(v) = fdm_expr::eval(&e, &empty) {
            return (Expr::Lit(v), true);
        }
    }
    (e, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerConfig;
    use fdm_expr::Params;

    fn ctx_apply(q: &Query) -> Option<Query> {
        let cfg = OptimizerConfig::new();
        ConstantFoldingExpr.apply(q, &PlanContext::without_stats(&cfg))
    }

    #[test]
    fn folds_constant_conjunct_and_drops_true_filter() {
        let q = Query::scan("customers").filter("10 > 3 and age > 40", Params::new());
        let folded = ctx_apply(&q).expect("constant conjunct folds");
        let plan = folded.explain();
        assert!(plan.contains("filter((age > 40))"), "{plan}");
        assert!(ctx_apply(&folded).is_none(), "fixpoint");

        let q = Query::scan("customers").filter("1 + 1 == 2", Params::new());
        let folded = ctx_apply(&q).expect("all-constant predicate folds away");
        assert!(!folded.explain().contains("filter"), "{}", folded.explain());
    }

    #[test]
    fn noops_on_non_constant_and_on_erroring_constants() {
        let q = Query::scan("customers").filter("age > 40", Params::new());
        assert!(ctx_apply(&q).is_none(), "nothing constant to fold");
        // a constant that *errors* is left for eval to report
        let q = Query::scan("customers").filter("1 + 'a' == 2 and age > 40", Params::new());
        assert!(ctx_apply(&q).is_none(), "erroring constant stays declared");
    }

    #[test]
    fn unbound_params_are_not_constants() {
        let expr = fdm_expr::parse("$min < 10").unwrap();
        let q = Query::scan("customers").filter_expr(expr);
        assert!(ctx_apply(&q).is_none(), "params are data, not literals");
    }
}
