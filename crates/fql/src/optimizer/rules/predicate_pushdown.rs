//! Filter fusion + predicate pushdown, as a rule.

use crate::optimizer::{OptimizationRule, PlanContext};
use crate::plan::Query;
use fdm_expr::{BinOp, Expr};

/// Fuses adjacent filters and pushes predicates down through projections
/// and joins (never through sorts), one rewrite per firing — the
/// statistics-free heart of the optimizer, ported verbatim from the
/// pre-PR 8 `Query::optimize` pass.
///
/// * adjacent `Filter(Filter(..))` pairs fuse into one `and` predicate;
/// * a filter moves below a `Project` when it references only projected
///   attributes;
/// * a filter moves below a `Join` when it never references the joined
///   relation's qualified (`"{rel}."`-prefixed) attributes;
/// * a filter **never** moves below an `OrderBy`: the sort assigns rank
///   keys, and filtering before vs after ranking yields observably
///   different keys (gapped vs contiguous).
///
/// Pinned by `optimize_fuses_filters`, `optimize_pushes_filter_below_join`,
/// `optimize_pushes_filter_below_project`, `filter_stays_above_order_by`
/// (`crates/fql/src/plan.rs`) and the docs transcript test.
#[derive(Debug, Clone, Copy, Default)]
pub struct PredicatePushdown;

impl OptimizationRule for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate_pushdown"
    }

    fn apply(&self, plan: &Query, _ctx: &PlanContext) -> Option<Query> {
        let (next, changed) = push_down_once(plan.clone());
        changed.then_some(next)
    }
}

/// One bottom-up pushdown step; the fixpoint driver repeats it until the
/// plan is quiet.
fn push_down_once(q: Query) -> (Query, bool) {
    match q {
        Query::Filter { input, pred } => match *input {
            // fuse adjacent filters
            Query::Filter {
                input: inner,
                pred: p2,
            } => (
                Query::Filter {
                    input: inner,
                    pred: Expr::bin(BinOp::And, p2, pred),
                },
                true,
            ),
            // push below project when the predicate only uses
            // projected attributes
            Query::Project {
                input: inner,
                attrs,
            } => {
                let refs = pred.referenced_attrs();
                if refs.iter().all(|r| attrs.iter().any(|a| a == r.as_ref())) {
                    (
                        Query::Project {
                            input: Box::new(Query::Filter { input: inner, pred }),
                            attrs,
                        },
                        true,
                    )
                } else {
                    let (inner2, changed) = push_down_once(Query::Project {
                        input: inner,
                        attrs,
                    });
                    (
                        Query::Filter {
                            input: Box::new(inner2),
                            pred,
                        },
                        changed,
                    )
                }
            }
            // push below join when the predicate never references the
            // joined relation's (prefixed) attributes
            Query::Join {
                input: inner,
                rel,
                input_attr,
                rel_attr,
            } => {
                let prefix = format!("{rel}.");
                let refs = pred.referenced_attrs();
                if refs.iter().all(|r| !r.starts_with(&prefix)) {
                    (
                        Query::Join {
                            input: Box::new(Query::Filter { input: inner, pred }),
                            rel,
                            input_attr,
                            rel_attr,
                        },
                        true,
                    )
                } else {
                    let (inner2, changed) = push_down_once(Query::Join {
                        input: inner,
                        rel,
                        input_attr,
                        rel_attr,
                    });
                    (
                        Query::Filter {
                            input: Box::new(inner2),
                            pred,
                        },
                        changed,
                    )
                }
            }
            // NOTE: a filter is deliberately NOT pushed below an
            // OrderBy. The sort assigns rank keys; filtering before
            // vs after ranking yields different keys (contiguous vs
            // gapped), and the optimizer must never change observable
            // results — only their cost.
            other => {
                let (inner2, changed) = push_down_once(other);
                (
                    Query::Filter {
                        input: Box::new(inner2),
                        pred,
                    },
                    changed,
                )
            }
        },
        Query::Project { input, attrs } => {
            let (inner, changed) = push_down_once(*input);
            (
                Query::Project {
                    input: Box::new(inner),
                    attrs,
                },
                changed,
            )
        }
        Query::Join {
            input,
            rel,
            input_attr,
            rel_attr,
        } => {
            let (inner, changed) = push_down_once(*input);
            (
                Query::Join {
                    input: Box::new(inner),
                    rel,
                    input_attr,
                    rel_attr,
                },
                changed,
            )
        }
        Query::GroupAgg { input, by, aggs } => {
            let (inner, changed) = push_down_once(*input);
            (
                Query::GroupAgg {
                    input: Box::new(inner),
                    by,
                    aggs,
                },
                changed,
            )
        }
        Query::OrderBy { input, attr, order } => {
            let (inner, changed) = push_down_once(*input);
            (
                Query::OrderBy {
                    input: Box::new(inner),
                    attr,
                    order,
                },
                changed,
            )
        }
        Query::Limit { input, k } => {
            let (inner, changed) = push_down_once(*input);
            (
                Query::Limit {
                    input: Box::new(inner),
                    k,
                },
                changed,
            )
        }
        leaf @ (Query::Scan { .. } | Query::Invalid { .. }) => (leaf, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerConfig;
    use fdm_expr::Params;

    #[test]
    fn fires_on_pushable_filter_and_noops_at_fixpoint() {
        let cfg = OptimizerConfig::new();
        let ctx = PlanContext::without_stats(&cfg);
        let q = Query::scan("orders")
            .join("customers", "cid", "cid")
            .filter("date == '2026-01-05'", Params::new());
        let pushed = PredicatePushdown
            .apply(&q, &ctx)
            .expect("left-side-only predicate moves below the join");
        let plan = pushed.explain();
        let filter_line = plan.lines().position(|l| l.contains("filter")).unwrap();
        let join_line = plan.lines().position(|l| l.contains("join")).unwrap();
        assert!(filter_line > join_line, "{plan}");
        // at the fixpoint the rule reports "nothing to do"
        assert!(PredicatePushdown.apply(&pushed, &ctx).is_none());
    }

    #[test]
    fn noops_on_join_side_predicate() {
        use fdm_expr::{BinOp, Expr};
        let cfg = OptimizerConfig::new();
        let ctx = PlanContext::without_stats(&cfg);
        // qualified join-output references are built programmatically —
        // the predicate *language* has no dotted identifiers
        let pred = Expr::bin(
            BinOp::Gt,
            Expr::Attr(std::sync::Arc::from("customers.age")),
            Expr::lit(40),
        );
        let q = Query::scan("orders")
            .join("customers", "cid", "cid")
            .filter_expr(pred);
        assert!(
            PredicatePushdown.apply(&q, &ctx).is_none(),
            "a predicate on the joined side is pinned above the join"
        );
    }
}
