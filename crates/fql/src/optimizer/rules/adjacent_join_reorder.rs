//! The PR 5 adjacent-join bubble pass, as a rule.

use crate::optimizer::{OptimizationRule, PlanContext, ReorderStrategy};
use crate::plan::Query;

/// Swaps *adjacent* independent joins when the swap strictly shrinks the
/// inner join's estimated output — one bubble step per firing, repeated
/// to fixpoint by the driver. This is the pre-PR 8 `optimize_for`
/// reordering, kept verbatim as the
/// [`ReorderStrategy::Adjacent`] strategy (and as the bench baseline the
/// greedy enumerator is measured against); it only fires when the
/// effective config selects that strategy.
///
/// A pair of adjacent joins is **pinned** (never swapped) when the
/// rewrite could change observable results or lose a dependency:
///
/// * the upper join's `input_attr` references the lower join's qualified
///   output (`"{lower_rel}.…"`) — the upper join *needs* the lower one
///   underneath it;
/// * both joins bind the same relation — duplicate qualified names would
///   change the canonical data key with the executed order;
/// * either side's estimate is unavailable (a relation missing from the
///   database, or no statistics in the [`PlanContext`]) or not strictly
///   better — ties keep declared order.
///
/// Pinned by `reorder_pins_dependent_and_self_joins`
/// (`crates/fql/src/plan.rs`) and `tests/tests/plan_reordering.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdjacentJoinReorder;

impl OptimizationRule for AdjacentJoinReorder {
    fn name(&self) -> &'static str {
        "adjacent_join_reorder"
    }

    fn apply(&self, plan: &Query, ctx: &PlanContext) -> Option<Query> {
        if ctx.config().reorder() != ReorderStrategy::Adjacent {
            return None;
        }
        let (next, changed) = reorder_once(plan.clone(), ctx);
        changed.then_some(next)
    }
}

/// One bottom-up pass of adjacent-join reordering; returns the (possibly)
/// rewritten plan and whether anything moved. Terminates under the
/// driver because every swap strictly decreases the inner join's
/// estimate and estimates are fixed per (relation, attribute) pair.
fn reorder_once(q: Query, ctx: &PlanContext) -> (Query, bool) {
    match q {
        Query::Join {
            input,
            rel,
            input_attr,
            rel_attr,
        } => {
            let (inner, changed) = reorder_once(*input, ctx);
            if changed {
                return (
                    Query::Join {
                        input: Box::new(inner),
                        rel,
                        input_attr,
                        rel_attr,
                    },
                    true,
                );
            }
            if let Query::Join {
                input: lower_input,
                rel: lower_rel,
                input_attr: lower_input_attr,
                rel_attr: lower_rel_attr,
            } = inner
            {
                let independent = rel != lower_rel
                    && !input_attr.starts_with(&format!("{lower_rel}."))
                    && !lower_input_attr.starts_with(&format!("{rel}."));
                if independent {
                    let swapped_lower = Query::Join {
                        input: lower_input.clone(),
                        rel: rel.clone(),
                        input_attr: input_attr.clone(),
                        rel_attr: rel_attr.clone(),
                    };
                    let declared_lower = Query::Join {
                        input: lower_input,
                        rel: lower_rel.clone(),
                        input_attr: lower_input_attr.clone(),
                        rel_attr: lower_rel_attr.clone(),
                    };
                    if let (Some(declared_est), Some(swapped_est)) = (
                        ctx.estimated_rows(&declared_lower),
                        ctx.estimated_rows(&swapped_lower),
                    ) {
                        if swapped_est < declared_est {
                            return (
                                Query::Join {
                                    input: Box::new(swapped_lower),
                                    rel: lower_rel,
                                    input_attr: lower_input_attr,
                                    rel_attr: lower_rel_attr,
                                },
                                true,
                            );
                        }
                    }
                    return (
                        Query::Join {
                            input: Box::new(declared_lower),
                            rel,
                            input_attr,
                            rel_attr,
                        },
                        false,
                    );
                }
                return (
                    Query::Join {
                        input: Box::new(Query::Join {
                            input: lower_input,
                            rel: lower_rel,
                            input_attr: lower_input_attr,
                            rel_attr: lower_rel_attr,
                        }),
                        rel,
                        input_attr,
                        rel_attr,
                    },
                    false,
                );
            }
            (
                Query::Join {
                    input: Box::new(inner),
                    rel,
                    input_attr,
                    rel_attr,
                },
                false,
            )
        }
        Query::Filter { input, pred } => {
            let (inner, changed) = reorder_once(*input, ctx);
            (
                Query::Filter {
                    input: Box::new(inner),
                    pred,
                },
                changed,
            )
        }
        Query::Project { input, attrs } => {
            let (inner, changed) = reorder_once(*input, ctx);
            (
                Query::Project {
                    input: Box::new(inner),
                    attrs,
                },
                changed,
            )
        }
        Query::GroupAgg { input, by, aggs } => {
            let (inner, changed) = reorder_once(*input, ctx);
            (
                Query::GroupAgg {
                    input: Box::new(inner),
                    by,
                    aggs,
                },
                changed,
            )
        }
        Query::OrderBy { input, attr, order } => {
            let (inner, changed) = reorder_once(*input, ctx);
            (
                Query::OrderBy {
                    input: Box::new(inner),
                    attr,
                    order,
                },
                changed,
            )
        }
        Query::Limit { input, k } => {
            let (inner, changed) = reorder_once(*input, ctx);
            (
                Query::Limit {
                    input: Box::new(inner),
                    k,
                },
                changed,
            )
        }
        leaf @ (Query::Scan { .. } | Query::Invalid { .. }) => (leaf, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerConfig;
    use crate::testutil::skewed_db;

    fn adjacent_cfg() -> OptimizerConfig {
        OptimizerConfig::new().with_reorder(ReorderStrategy::Adjacent)
    }

    #[test]
    fn fires_on_skewed_independent_pair() {
        let db = skewed_db();
        let cfg = adjacent_cfg();
        let ctx = PlanContext::new(&db, &cfg);
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2");
        let swapped = AdjacentJoinReorder
            .apply(&q, &ctx)
            .expect("fan-out 4 vs 1: the swap pays");
        let plan = swapped.explain();
        let wide = plan.lines().position(|l| l.contains("wide")).unwrap();
        let narrow = plan.lines().position(|l| l.contains("narrow")).unwrap();
        assert!(narrow > wide, "narrow joins first (deeper):\n{plan}");
        assert!(
            AdjacentJoinReorder.apply(&swapped, &ctx).is_none(),
            "fixpoint"
        );
    }

    #[test]
    fn noops_without_stats_or_under_other_strategies() {
        let db = skewed_db();
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2");
        // wrong strategy → rule stays quiet even with stats at hand
        let cfg = OptimizerConfig::new().with_reorder(ReorderStrategy::Greedy);
        assert!(AdjacentJoinReorder
            .apply(&q, &PlanContext::new(&db, &cfg))
            .is_none());
        // right strategy, no stats → estimates unavailable → pinned
        let cfg = adjacent_cfg();
        assert!(AdjacentJoinReorder
            .apply(&q, &PlanContext::without_stats(&cfg))
            .is_none());
    }
}
