//! Narrows projection lists to the attributes something downstream reads.

use crate::optimizer::{OptimizationRule, PlanContext};
use crate::plan::Query;
use std::collections::BTreeSet;

/// Drops attributes from existing `Project` nodes that no downstream
/// operator reads, shrinking every tuple the pipeline above materializes.
/// The pass walks top-down carrying the set of *needed* attributes: the
/// root needs everything (its output is the query result), a filter adds
/// its predicate's references, a sort adds its key, and a `GroupAgg`
/// needs exactly its grouping and aggregate inputs — which is where the
/// wins come from (`project(a, b, c, d)` under `group_agg(by a, sum b)`
/// narrows to `project(a, b)`).
///
/// Two deliberate limits keep the rule observationally safe:
///
/// * **Everything below a `Join` is needed.** Join output rows are keyed
///   by their canonical data fingerprint (`[hash, rank]` over the *whole*
///   tuple — see `Query::Join`), so dropping even an unread attribute
///   below a join would change observable row ids. The needed-set resets
///   to "all" when descending into a join's input.
/// * **Only existing `Project` nodes narrow.** The rule never inserts new
///   projections: an extra operator is an extra pass over the data, a
///   cost call that belongs to a future cost-driven rule, not a pruning
///   rewrite.
///
/// A projection never narrows to the empty list (a `project()` of nothing
/// is a degenerate plan the executor should see only if the user wrote
/// it), and attrs the needed-set cannot prove present are kept so
/// missing-attribute errors still surface at [`Query::eval`] exactly as
/// declared.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProjectionPruning;

impl OptimizationRule for ProjectionPruning {
    fn name(&self) -> &'static str {
        "projection_pruning"
    }

    fn apply(&self, plan: &Query, _ctx: &PlanContext) -> Option<Query> {
        let (next, changed) = prune(plan.clone(), &Needed::All);
        changed.then_some(next)
    }
}

/// What the operators above the current node read from its output.
#[derive(Clone)]
enum Needed {
    /// Everything — the root, and anything feeding a join.
    All,
    /// Exactly these attributes.
    Attrs(BTreeSet<String>),
}

impl Needed {
    fn of<'a>(names: impl IntoIterator<Item = &'a str>) -> Needed {
        Needed::Attrs(names.into_iter().map(str::to_string).collect())
    }

    /// This set plus the attributes `names` (All absorbs everything).
    fn plus<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Needed {
        match self {
            Needed::All => Needed::All,
            Needed::Attrs(set) => {
                let mut set = set.clone();
                set.extend(names.into_iter().map(str::to_string));
                Needed::Attrs(set)
            }
        }
    }
}

fn prune(q: Query, needed: &Needed) -> (Query, bool) {
    match q {
        Query::Project { input, attrs } => {
            let kept: Vec<String> = match needed {
                Needed::All => attrs.clone(),
                Needed::Attrs(set) => {
                    let kept: Vec<String> = attrs
                        .iter()
                        .filter(|a| set.contains(a.as_str()))
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        attrs.clone()
                    } else {
                        kept
                    }
                }
            };
            let narrowed = kept.len() < attrs.len();
            // below this projection only its own (possibly narrowed)
            // output attributes are needed
            let child_needed = Needed::of(kept.iter().map(String::as_str));
            let (inner, c) = prune(*input, &child_needed);
            (
                Query::Project {
                    input: Box::new(inner),
                    attrs: kept,
                },
                narrowed || c,
            )
        }
        Query::Filter { input, pred } => {
            let refs = pred.referenced_attrs();
            let child_needed = needed.plus(refs.iter().map(|r| r.as_ref()));
            let (inner, c) = prune(*input, &child_needed);
            (
                Query::Filter {
                    input: Box::new(inner),
                    pred,
                },
                c,
            )
        }
        Query::Join {
            input,
            rel,
            input_attr,
            rel_attr,
        } => {
            // canonical row ids fingerprint the whole output tuple:
            // everything below a join is observable
            let (inner, c) = prune(*input, &Needed::All);
            (
                Query::Join {
                    input: Box::new(inner),
                    rel,
                    input_attr,
                    rel_attr,
                },
                c,
            )
        }
        Query::GroupAgg { input, by, aggs } => {
            let mut wanted: BTreeSet<String> = by.iter().cloned().collect();
            for (_, agg) in &aggs {
                if let Some(attr) = agg.input_attr() {
                    wanted.insert(attr.to_string());
                }
            }
            let (inner, c) = prune(*input, &Needed::Attrs(wanted));
            (
                Query::GroupAgg {
                    input: Box::new(inner),
                    by,
                    aggs,
                },
                c,
            )
        }
        Query::OrderBy { input, attr, order } => {
            let child_needed = needed.plus([attr.as_str()]);
            let (inner, c) = prune(*input, &child_needed);
            (
                Query::OrderBy {
                    input: Box::new(inner),
                    attr,
                    order,
                },
                c,
            )
        }
        Query::Limit { input, k } => {
            let (inner, c) = prune(*input, needed);
            (
                Query::Limit {
                    input: Box::new(inner),
                    k,
                },
                c,
            )
        }
        leaf @ (Query::Scan { .. } | Query::Invalid { .. }) => (leaf, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggSpec;
    use crate::optimizer::OptimizerConfig;
    use crate::testutil::retail_db;

    fn ctx_apply(q: &Query) -> Option<Query> {
        let cfg = OptimizerConfig::new();
        ProjectionPruning.apply(q, &PlanContext::without_stats(&cfg))
    }

    #[test]
    fn narrows_project_under_group_agg() {
        let q = Query::scan("customers")
            .project(&["name", "age", "cid"])
            .group_agg(&["name"], &[("oldest", AggSpec::Max("age".into()))]);
        let pruned = ctx_apply(&q).expect("cid is read by nothing downstream");
        let plan = pruned.explain();
        assert!(plan.contains("project(name, age)"), "{plan}");
        assert!(ctx_apply(&pruned).is_none(), "fixpoint");
        // narrowing never changes what the query produces
        let db = retail_db();
        let a = q.eval(&db).unwrap();
        let b = pruned.eval(&db).unwrap();
        assert_eq!(a.stored_keys(), b.stored_keys());
        for (key, t) in a.tuples().unwrap() {
            assert!(t.eq_data(&b.lookup(&key).unwrap()));
        }
    }

    #[test]
    fn noops_on_root_projection_and_below_joins() {
        // the root's output is the result: nothing narrows
        let q = Query::scan("customers").project(&["name", "age"]);
        assert!(ctx_apply(&q).is_none());
        // below a join the canonical row ids see every attribute
        let q = Query::scan("orders")
            .project(&["cid", "date", "pid"])
            .join("customers", "cid", "cid")
            .group_agg(&["customers.name"], &[("n", AggSpec::Count)]);
        assert!(
            ctx_apply(&q).is_none(),
            "pruning below a join would change canonical row ids"
        );
    }

    #[test]
    fn filter_and_sort_references_stay() {
        use crate::transform::Order;
        let q = Query::scan("customers")
            .project(&["name", "age", "cid"])
            .order_by("cid", Order::Asc)
            .group_agg(&["name"], &[("oldest", AggSpec::Max("age".into()))]);
        assert!(
            ctx_apply(&q).is_none(),
            "cid is the sort key — every projected attr is read"
        );
    }
}
