//! The built-in [`crate::optimizer::OptimizationRule`] implementations.
//!
//! Each rule lives in its own module, is independently constructible and
//! testable, and is wired into [`crate::Optimizer::default`] in the
//! documented order (see the module docs of [`crate::optimizer`]).

mod adjacent_join_reorder;
mod constant_folding;
mod greedy_join_order;
mod predicate_pushdown;
mod projection_pruning;

pub use adjacent_join_reorder::AdjacentJoinReorder;
pub use constant_folding::ConstantFoldingExpr;
pub use greedy_join_order::GreedyJoinOrder;
pub use predicate_pushdown::PredicatePushdown;
pub use projection_pruning::ProjectionPruning;
