//! Greedy n-way join-order enumeration — the first payoff the rule
//! framework unlocks.

use crate::optimizer::{OptimizationRule, PlanContext, ReorderStrategy};
use crate::plan::Query;

/// Reorders a whole left-deep join *chain* at once: smallest estimated
/// fan-out first, among the joins whose dependencies are already placed.
/// This replaces adjacent-swaps-only reordering
/// ([`super::AdjacentJoinReorder`]) as the default
/// [`ReorderStrategy::Greedy`] strategy, and escapes the local optima the
/// bubble pass gets stuck in: with `A` (fan-out 8), `B` (depends on `A`),
/// `C` (independent, fan-out 1) declared as `A, B, C`, no *adjacent* swap
/// improves anything — `(A,B)` is pinned dependent and `(B,C)` is a tie —
/// yet `C, A, B` runs the whole pipeline on 8× smaller intermediates.
/// The greedy enumerator finds it.
///
/// What makes the rewrite *legal* is the canonical-row-id contract
/// (`Query::Join`): output rows are keyed by their data fingerprint, not
/// emission order, so any dependency-respecting permutation of the chain
/// produces the identical keyed relation. The constraints mirror the
/// bubble pass's pins, lifted from pairs to the chain:
///
/// * a join whose `input_attr` references `"{rel}."` must stay after
///   every chain join binding `rel` (and the whole chain bails to
///   declared order if it references a rel joined *later* — a plan that
///   errors as declared must keep erroring);
/// * joins binding the same relation keep their relative order;
/// * fan-outs come from `rows(rel) / distinct(rel, rel_attr)` sketch
///   estimates; if any is unavailable the chain keeps declared order;
///   ties keep declared order (greedy picks the earliest-declared
///   candidate).
///
/// The placement itself is O(n²) in the chain length with no estimate
/// re-derivation per step — fan-outs are per-join constants, so "cheapest
/// next intermediate" is "smallest fan-out among ready joins".
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyJoinOrder;

impl OptimizationRule for GreedyJoinOrder {
    fn name(&self) -> &'static str {
        "greedy_join_order"
    }

    fn apply(&self, plan: &Query, ctx: &PlanContext) -> Option<Query> {
        if ctx.config().reorder() != ReorderStrategy::Greedy {
            return None;
        }
        ctx.db()?;
        let (next, changed) = reorder(plan.clone(), ctx);
        changed.then_some(next)
    }
}

struct JoinSpec {
    rel: String,
    input_attr: String,
    rel_attr: String,
}

fn reorder(q: Query, ctx: &PlanContext) -> (Query, bool) {
    match q {
        Query::Join { .. } => {
            let (specs, stem) = collect_chain(q);
            // chains deeper in the plan (below a filter/sort/aggregate)
            // reorder independently
            let (stem, stem_changed) = reorder(stem, ctx);
            match greedy_order(&specs, &stem, ctx) {
                Some(order) => (rebuild(stem, specs, &order), true),
                None => {
                    let identity: Vec<usize> = (0..specs.len()).collect();
                    (rebuild(stem, specs, &identity), stem_changed)
                }
            }
        }
        Query::Filter { input, pred } => {
            let (inner, c) = reorder(*input, ctx);
            (
                Query::Filter {
                    input: Box::new(inner),
                    pred,
                },
                c,
            )
        }
        Query::Project { input, attrs } => {
            let (inner, c) = reorder(*input, ctx);
            (
                Query::Project {
                    input: Box::new(inner),
                    attrs,
                },
                c,
            )
        }
        Query::GroupAgg { input, by, aggs } => {
            let (inner, c) = reorder(*input, ctx);
            (
                Query::GroupAgg {
                    input: Box::new(inner),
                    by,
                    aggs,
                },
                c,
            )
        }
        Query::OrderBy { input, attr, order } => {
            let (inner, c) = reorder(*input, ctx);
            (
                Query::OrderBy {
                    input: Box::new(inner),
                    attr,
                    order,
                },
                c,
            )
        }
        Query::Limit { input, k } => {
            let (inner, c) = reorder(*input, ctx);
            (
                Query::Limit {
                    input: Box::new(inner),
                    k,
                },
                c,
            )
        }
        leaf @ (Query::Scan { .. } | Query::Invalid { .. }) => (leaf, false),
    }
}

/// Peels the maximal run of `Join` nodes off the top of `q`. Returns the
/// specs in **declared execution order** (innermost first) plus the
/// non-join stem below them.
fn collect_chain(mut q: Query) -> (Vec<JoinSpec>, Query) {
    let mut specs = Vec::new();
    while let Query::Join {
        input,
        rel,
        input_attr,
        rel_attr,
    } = q
    {
        specs.push(JoinSpec {
            rel,
            input_attr,
            rel_attr,
        });
        q = *input;
    }
    specs.reverse();
    (specs, q)
}

/// The greedy placement, as a permutation of declared indices — or `None`
/// when the chain must keep declared order (too short, an estimate
/// unavailable, a forward dependency, or greedy agreeing with declared).
fn greedy_order(specs: &[JoinSpec], _stem: &Query, ctx: &PlanContext) -> Option<Vec<usize>> {
    let n = specs.len();
    if n < 2 {
        return None;
    }
    // per-join fan-out: rows(rel) / distinct(rel, rel_attr)
    let mut fanout = Vec::with_capacity(n);
    for s in specs {
        let rows = ctx.relation_rows(&s.rel)? as f64;
        let distinct = ctx.estimate_distinct(&s.rel, &s.rel_attr)?.max(1) as f64;
        fanout.push(rows / distinct);
    }
    // deps[i] = declared indices that must be placed before i
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, other) in specs.iter().enumerate() {
            if j == i {
                continue;
            }
            if specs[i].input_attr.starts_with(&format!("{}.", other.rel)) {
                if j < i {
                    deps[i].push(j);
                } else {
                    // references a relation joined later in declared
                    // order: the declared plan errors at eval — keep it
                    return None;
                }
            }
        }
        for j in 0..i {
            if specs[j].rel == specs[i].rel {
                deps[i].push(j);
            }
        }
    }
    // place the smallest-fan-out ready join, ties by declared index
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if placed[i] || !deps[i].iter().all(|&j| placed[j]) {
                continue;
            }
            if best.is_none_or(|b| fanout[i] < fanout[b]) {
                best = Some(i);
            }
        }
        let i = best.expect("deps only point backward: someone is always ready");
        placed[i] = true;
        order.push(i);
    }
    if order.iter().copied().eq(0..n) {
        None
    } else {
        Some(order)
    }
}

fn rebuild(stem: Query, specs: Vec<JoinSpec>, order: &[usize]) -> Query {
    let mut slots: Vec<Option<JoinSpec>> = specs.into_iter().map(Some).collect();
    let mut q = stem;
    for &i in order {
        let s = slots[i].take().expect("each index placed once");
        q = Query::Join {
            input: Box::new(q),
            rel: s.rel,
            input_attr: s.input_attr,
            rel_attr: s.rel_attr,
        };
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{AdjacentJoinReorder, OptimizerConfig};
    use crate::testutil::{chain_db, skewed_db};

    fn greedy_cfg() -> OptimizerConfig {
        OptimizerConfig::new().with_reorder(ReorderStrategy::Greedy)
    }

    /// Executed order of relation names, innermost (first-executed) first.
    fn executed_order(q: &Query) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        let mut cur = q;
        while let Query::Join { input, rel, .. } = cur {
            names.push(rel.clone());
            cur = input;
        }
        names.reverse();
        names
    }

    #[test]
    fn escapes_the_adjacent_local_optimum() {
        // declared a(fan-out 8), b(depends on a), c(independent, fan-out 1):
        // no adjacent swap improves — (a,b) pinned, (b,c) is a 1-vs-1 tie —
        // but greedy hoists c below everything
        let db = chain_db(8);
        let q = Query::scan("base")
            .join("a", "ak", "k")
            .join("b", "a.av", "k2")
            .join("c", "ck", "k3");
        let cfg = greedy_cfg();
        let ctx = PlanContext::new(&db, &cfg);
        let adjacent_cfg = OptimizerConfig::new().with_reorder(ReorderStrategy::Adjacent);
        assert!(
            AdjacentJoinReorder
                .apply(&q, &PlanContext::new(&db, &adjacent_cfg))
                .is_none(),
            "the bubble pass is stuck at the declared order"
        );
        let greedy = GreedyJoinOrder.apply(&q, &ctx).expect("greedy escapes");
        assert_eq!(executed_order(&greedy), ["c", "a", "b"]);
        assert!(GreedyJoinOrder.apply(&greedy, &ctx).is_none(), "fixpoint");
        // the contract: identical keyed results either way
        let declared = q.eval(&db).unwrap();
        let reordered = greedy.eval(&db).unwrap();
        assert_eq!(declared.stored_keys(), reordered.stored_keys());
        for (key, t) in declared.tuples().unwrap() {
            assert!(
                t.eq_data(&reordered.lookup(&key).unwrap()),
                "{key} diverges"
            );
        }
    }

    #[test]
    fn pins_dependencies_self_joins_and_missing_stats() {
        let db = skewed_db();
        let cfg = greedy_cfg();
        let ctx = PlanContext::new(&db, &cfg);
        // dependent pair keeps order
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "wide.wv", "k2");
        assert!(GreedyJoinOrder.apply(&q, &ctx).is_none());
        // self-join pair keeps order
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("wide", "nk", "k");
        assert!(GreedyJoinOrder.apply(&q, &ctx).is_none());
        // a relation missing from the db: estimate unavailable → declared
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("ghost", "nk", "k2");
        assert!(GreedyJoinOrder.apply(&q, &ctx).is_none());
        // wrong strategy → quiet
        let off = OptimizerConfig::new().with_reorder(ReorderStrategy::Off);
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2");
        assert!(GreedyJoinOrder
            .apply(&q, &PlanContext::new(&db, &off))
            .is_none());
    }

    #[test]
    fn reorders_chains_below_non_join_operators() {
        let db = skewed_db();
        let cfg = greedy_cfg();
        let ctx = PlanContext::new(&db, &cfg);
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2")
            .group_agg(&["nv"], &[("n", crate::aggregate::AggSpec::Count)]);
        let opt = GreedyJoinOrder
            .apply(&q, &ctx)
            .expect("the chain under the aggregate still reorders");
        let Query::GroupAgg { input, .. } = &opt else {
            panic!("shape preserved: {}", opt.explain())
        };
        assert_eq!(executed_order(input), ["narrow", "wide"]);
    }
}
