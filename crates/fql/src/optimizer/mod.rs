//! The rule-engine optimizer: an [`OptimizationRule`] trait, a fixpoint
//! driver, and the built-in rule set (PR 8).
//!
//! Before this module, the optimizer was two hardcoded passes inside
//! `Query`: predicate pushdown (`optimize`) and an adjacent-join bubble
//! reorder (`optimize_for`). Both survive unchanged — as *rules* — next
//! to rules that had nowhere to live before: constant folding, projection
//! pruning, and a greedy n-way join-order enumerator. `Query::optimize`
//! and `Query::optimize_for` are now thin wrappers over this module, so
//! every pre-PR 8 plan-equivalence pin keeps passing byte-identically.
//!
//! # The driver
//!
//! [`Optimizer::optimize`] runs its rules in registration order, over and
//! over, until a whole pass fires nothing (a *fixpoint*) or the
//! [`OptimizerConfig::max_passes`] cap stops a runaway rule. Each firing
//! replaces the plan wholesale — a rule returns `Some(rewritten)` or
//! `None`, never a partial mutation — and is recorded with its pass
//! number and before/after root cost in an [`OptimizeTrace`]
//! ([`Optimizer::optimize_traced`] returns it; per-rule fire counters
//! come from [`OptimizeTrace::fires`]).
//!
//! Rules see the plan and a [`PlanContext`] — database statistics
//! (PRs 4–5 sketches) plus the effective [`OptimizerConfig`] — and must
//! uphold one contract: **a rewrite may change cost, never observable
//! results** (keys and data of every evaluated relation). The
//! canonical-row-id scheme on `Query::Join` is what makes join-order
//! rewrites satisfy that contract; `tests/tests/optimizer_rules.rs`
//! proptests it over random plans.
//!
//! # The default rule set
//!
//! | order | rule | needs stats | pinned by |
//! |---|---|---|---|
//! | 1 | [`ConstantFoldingExpr`] | no | its module tests + equivalence proptest |
//! | 2 | [`PredicatePushdown`] | no | `plan.rs` pushdown tests + docs transcript |
//! | 3 | [`ProjectionPruning`] | no | its module tests (canonical-id reset below joins) |
//! | 4 | [`AdjacentJoinReorder`] | yes | `reorder_pins_dependent_and_self_joins` |
//! | 5 | [`GreedyJoinOrder`] | yes | `plan_reordering.rs` + `escapes_the_adjacent_local_optimum` |
//!
//! The two reorder rules are both always registered and gate themselves
//! on [`OptimizerConfig::reorder`], so one `Optimizer` honors a strategy
//! flip (config or environment) between calls.
//!
//! # Adding a rule
//!
//! ```
//! use fdm_fql::optimizer::{OptimizationRule, Optimizer, PlanContext};
//! use fdm_fql::plan::Query;
//!
//! /// Rewrites `limit(0)` plans — nothing below them can matter... except
//! /// that eval errors still must surface, so a real rule would check the
//! /// subtree is infallible first. Rules may change cost, never results.
//! struct NoteLimitZero;
//! impl OptimizationRule for NoteLimitZero {
//!     fn name(&self) -> &'static str { "note_limit_zero" }
//!     fn apply(&self, _plan: &Query, _ctx: &PlanContext) -> Option<Query> {
//!         None // observe-only: never fires
//!     }
//! }
//!
//! let opt = Optimizer::default().with_rule(Box::new(NoteLimitZero));
//! assert!(opt.rule_names().contains(&"note_limit_zero"));
//! ```

pub mod config;
pub mod context;
mod rules;
pub mod trace;

pub use config::{JoinCostModel, OptimizerConfig, ReorderStrategy};
pub use context::PlanContext;
pub use rules::{
    AdjacentJoinReorder, ConstantFoldingExpr, GreedyJoinOrder, PredicatePushdown, ProjectionPruning,
};
pub use trace::{OptimizeTrace, TraceEntry};

use crate::plan::Query;
use fdm_core::{DatabaseF, Result};

/// One plan-rewriting rule. Implementations are stateless and
/// `Send + Sync`: a single [`Optimizer`] may be shared across threads.
///
/// The contract every rule must uphold: `apply` returns `Some(rewritten)`
/// only for rewrites that preserve **observable results** — the keys and
/// data of the evaluated relation, and which errors surface — and returns
/// `None` when it has nothing (or nothing *provably safe*) to do. The
/// driver calls `apply` repeatedly; a rule that keeps returning `Some`
/// for the same plan never converges and gets cut off at the pass cap.
pub trait OptimizationRule: Send + Sync {
    /// Stable identifier used in traces and fire counters.
    fn name(&self) -> &'static str;

    /// One rewrite attempt: `Some(rewritten)` if the rule changed the
    /// plan, `None` if the plan is already at this rule's fixpoint.
    fn apply(&self, plan: &Query, ctx: &PlanContext) -> Option<Query>;
}

/// The fixpoint driver over an ordered rule list. See the module docs
/// for semantics; see [`Optimizer::default`] for the built-in rule set.
pub struct Optimizer {
    rules: Vec<Box<dyn OptimizationRule>>,
    config: OptimizerConfig,
}

impl Default for Optimizer {
    /// The full built-in rule set, in the documented order, with an
    /// unset (environment-fallback) [`OptimizerConfig`]. This is exactly
    /// what `Query::optimize_for` runs — pinned by
    /// `optimize_for_is_default_optimizer` in
    /// `tests/tests/optimizer_rules.rs`.
    fn default() -> Optimizer {
        Optimizer::new()
            .with_rule(Box::new(ConstantFoldingExpr))
            .with_rule(Box::new(PredicatePushdown))
            .with_rule(Box::new(ProjectionPruning))
            .with_rule(Box::new(AdjacentJoinReorder))
            .with_rule(Box::new(GreedyJoinOrder))
    }
}

impl Optimizer {
    /// An optimizer with no rules (the identity transformation).
    pub fn new() -> Optimizer {
        Optimizer {
            rules: Vec::new(),
            config: OptimizerConfig::default(),
        }
    }

    /// The statistics-free subset of the default set (constant folding,
    /// predicate pushdown, projection pruning) — every rewrite that needs
    /// no database. This is exactly what `Query::optimize` runs.
    pub fn statistics_free() -> Optimizer {
        Optimizer::new()
            .with_rule(Box::new(ConstantFoldingExpr))
            .with_rule(Box::new(PredicatePushdown))
            .with_rule(Box::new(ProjectionPruning))
    }

    /// Appends a rule; rules run in registration order within each pass.
    pub fn with_rule(mut self, rule: Box<dyn OptimizationRule>) -> Optimizer {
        self.rules.push(rule);
        self
    }

    /// Replaces the configuration (strategy pins, pass cap).
    pub fn with_config(mut self, config: OptimizerConfig) -> Optimizer {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Registered rule names, in run order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Rewrites `plan` to fixpoint against `db`'s statistics.
    pub fn optimize(&self, plan: Query, db: &DatabaseF) -> Query {
        self.optimize_traced(plan, db).0
    }

    /// [`Self::optimize`], also returning the ordered [`OptimizeTrace`]
    /// of `(rule, pass, cost before, cost after)` firings.
    pub fn optimize_traced(&self, plan: Query, db: &DatabaseF) -> (Query, OptimizeTrace) {
        let ctx = PlanContext::new(db, &self.config);
        self.drive(plan, &ctx)
    }

    /// Rewrites `plan` without statistics: estimate accessors answer
    /// `None`, so cost-driven rules no-op and only structural rewrites
    /// fire.
    pub fn optimize_without_stats(&self, plan: Query) -> Query {
        let ctx = PlanContext::without_stats(&self.config);
        self.drive(plan, &ctx).0
    }

    /// The optimized plan's cost-annotated tree preceded by the rewrite
    /// trace — `explain_with_cost` for the whole optimization run, and
    /// the output the `docs/OPTIMIZER.md` traced-transcript test keeps
    /// live.
    pub fn explain_optimized(&self, plan: Query, db: &DatabaseF) -> Result<String> {
        let (optimized, trace) = self.optimize_traced(plan, db);
        let mut out = trace.render();
        out.push_str(&optimized.explain_with_cost(db)?);
        Ok(out)
    }

    fn drive(&self, plan: Query, ctx: &PlanContext) -> (Query, OptimizeTrace) {
        let mut q = plan;
        let mut trace = OptimizeTrace::default();
        let cap = self.config.max_passes();
        for pass in 1..=cap {
            trace.passes = pass;
            let mut fired = false;
            for rule in &self.rules {
                if let Some(next) = rule.apply(&q, ctx) {
                    trace.entries.push(TraceEntry {
                        rule: rule.name(),
                        pass,
                        cost_before: ctx.estimated_rows(&q),
                        cost_after: ctx.estimated_rows(&next),
                    });
                    q = next;
                    fired = true;
                }
            }
            if !fired {
                trace.converged = true;
                break;
            }
        }
        (q, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::skewed_db;

    #[test]
    fn default_set_is_the_documented_order() {
        assert_eq!(
            Optimizer::default().rule_names(),
            vec![
                "constant_folding",
                "predicate_pushdown",
                "projection_pruning",
                "adjacent_join_reorder",
                "greedy_join_order",
            ]
        );
        assert_eq!(
            Optimizer::statistics_free().rule_names(),
            vec![
                "constant_folding",
                "predicate_pushdown",
                "projection_pruning",
            ]
        );
    }

    #[test]
    fn driver_reaches_fixpoint_and_counts_fires() {
        use fdm_expr::{BinOp, Expr};
        let db = skewed_db();
        // `2 > 1 and narrow.nv >= 10` — the qualified join-output attr is
        // built programmatically (no dotted identifiers in the language);
        // the constant conjunct feeds constant folding, and the qualified
        // ref only becomes pushable after greedy reordering puts the
        // `wide` join on top — so pushdown firing proves the driver loops
        let pred = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Gt, Expr::lit(2), Expr::lit(1)),
            Expr::bin(
                BinOp::Ge,
                Expr::Attr(std::sync::Arc::from("narrow.nv")),
                Expr::lit(10),
            ),
        );
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2")
            .filter_expr(pred);
        let cfg = OptimizerConfig::new().with_reorder(ReorderStrategy::Greedy);
        let (opt, trace) = Optimizer::default()
            .with_config(cfg)
            .optimize_traced(q.clone(), &db);
        assert!(trace.converged, "small plans converge well under the cap");
        assert!(trace.passes <= OptimizerConfig::DEFAULT_MAX_PASSES);
        assert_eq!(trace.fires("constant_folding"), 1, "{:?}", trace.entries);
        assert!(trace.fires("predicate_pushdown") >= 1);
        assert_eq!(trace.fires("greedy_join_order"), 1);
        assert_eq!(trace.fires("adjacent_join_reorder"), 0, "greedy strategy");
        // rewrites never change results
        let a = q.eval(&db).unwrap();
        let b = opt.eval(&db).unwrap();
        assert_eq!(a.stored_keys(), b.stored_keys());
    }

    #[test]
    fn pass_cap_stops_a_runaway_rule() {
        /// Deliberately violates the convergence contract: always fires.
        struct Runaway;
        impl OptimizationRule for Runaway {
            fn name(&self) -> &'static str {
                "runaway"
            }
            fn apply(&self, plan: &Query, _ctx: &PlanContext) -> Option<Query> {
                Some(plan.clone())
            }
        }
        let db = skewed_db();
        let opt = Optimizer::new()
            .with_rule(Box::new(Runaway))
            .with_config(OptimizerConfig::new().with_max_passes(3));
        let (_, trace) = opt.optimize_traced(Query::scan("base"), &db);
        assert!(!trace.converged);
        assert_eq!(trace.passes, 3);
        assert_eq!(trace.fires("runaway"), 3);
        assert!(trace.render().contains("stopped at the 3-pass cap"));
    }

    #[test]
    fn explain_optimized_carries_trace_and_costs() {
        let db = skewed_db();
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2");
        let cfg = OptimizerConfig::new().with_reorder(ReorderStrategy::Greedy);
        let s = Optimizer::default()
            .with_config(cfg)
            .explain_optimized(q, &db)
            .unwrap();
        assert!(s.contains("greedy_join_order"), "{s}");
        assert!(s.contains("fixpoint after"), "{s}");
        assert!(s.contains("scan(base)"), "{s}");
        assert!(s.contains("rows"), "{s}");
    }
}
