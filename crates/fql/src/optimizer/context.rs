//! What a rule is allowed to know: statistics and configuration, read-only.

use crate::optimizer::OptimizerConfig;
use crate::plan::Query;
use fdm_core::DatabaseF;

/// The read-only planning context handed to every
/// [`crate::optimizer::OptimizationRule`]: the database's statistics
/// surface (cardinalities and distinct sketches from [`fdm_core::stats`],
/// PRs 4–5) plus the effective [`OptimizerConfig`].
///
/// Statistics are optional — `Query::optimize` runs the statistics-free
/// rule set with no database at hand — so every estimate accessor returns
/// `Option`: `None` uniformly means "unavailable" (no database, missing
/// relation, or an estimation error), and rules must degrade to a no-op
/// rather than guess. That convention is what keeps cost-driven rewrites
/// pinned to the declared plan whenever the cost model has nothing to say.
pub struct PlanContext<'a> {
    db: Option<&'a DatabaseF>,
    config: &'a OptimizerConfig,
}

impl<'a> PlanContext<'a> {
    /// A context with full statistics access.
    pub fn new(db: &'a DatabaseF, config: &'a OptimizerConfig) -> PlanContext<'a> {
        PlanContext {
            db: Some(db),
            config,
        }
    }

    /// A context without statistics: every estimate accessor answers
    /// `None`, so cost-driven rules no-op.
    pub fn without_stats(config: &'a OptimizerConfig) -> PlanContext<'a> {
        PlanContext { db: None, config }
    }

    /// The database being planned against, when one is at hand.
    pub fn db(&self) -> Option<&'a DatabaseF> {
        self.db
    }

    /// The effective optimizer configuration.
    pub fn config(&self) -> &OptimizerConfig {
        self.config
    }

    /// Estimated output cardinality of `plan` ([`Query::estimated_rows`]),
    /// or `None` without statistics or when the estimate fails (e.g. a
    /// relation the plan references is missing).
    pub fn estimated_rows(&self, plan: &Query) -> Option<f64> {
        self.db.and_then(|db| plan.estimated_rows(db).ok())
    }

    /// Stored cardinality of the relation entry `rel`.
    pub fn relation_rows(&self, rel: &str) -> Option<usize> {
        self.db
            .and_then(|db| db.relation_stats(rel).ok())
            .map(|s| s.rows)
    }

    /// Distinct-count estimate for `rel`'s `attr`
    /// ([`DatabaseF::estimate_distinct`]).
    pub fn estimate_distinct(&self, rel: &str, attr: &str) -> Option<usize> {
        self.db.and_then(|db| db.estimate_distinct(rel, attr).ok())
    }
}
