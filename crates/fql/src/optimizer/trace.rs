//! The fixpoint driver's audit trail: which rule fired, when, and what it
//! did to the estimated cost.

/// One rule firing recorded by
/// [`crate::Optimizer::optimize_traced`].
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The firing rule's [`crate::optimizer::OptimizationRule::name`].
    pub rule: &'static str,
    /// 1-based fixpoint pass the firing happened in.
    pub pass: usize,
    /// Root-plan estimated rows before the rewrite (`None` without
    /// statistics).
    pub cost_before: Option<f64>,
    /// Root-plan estimated rows after the rewrite.
    pub cost_after: Option<f64>,
}

/// Ordered trace of an optimization run: every rule firing in driver
/// order, plus how the fixpoint ended.
#[derive(Debug, Clone, Default)]
pub struct OptimizeTrace {
    /// Rule firings, in the order the driver applied them.
    pub entries: Vec<TraceEntry>,
    /// Passes the driver ran (a final all-quiet pass counts).
    pub passes: usize,
    /// `true` when a pass completed with no rule firing — the plan is at
    /// a fixpoint. `false` means the
    /// [`crate::optimizer::OptimizerConfig::max_passes`] cap stopped a
    /// still-changing plan (only a misbehaving rule gets there).
    pub converged: bool,
}

impl OptimizeTrace {
    /// How many times the named rule fired — the per-rule fire counter.
    pub fn fires(&self, rule: &str) -> usize {
        self.entries.iter().filter(|e| e.rule == rule).count()
    }

    /// `(rule name, fire count)` pairs ordered by each rule's first
    /// firing.
    pub fn fire_counts(&self) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = Vec::new();
        for e in &self.entries {
            match out.iter_mut().find(|(name, _)| *name == e.rule) {
                Some((_, n)) => *n += 1,
                None => out.push((e.rule, 1)),
            }
        }
        out
    }

    /// Plain-text rendering, one firing per line, closed by the fixpoint
    /// summary — the format the `docs/OPTIMIZER.md` transcript test pins:
    ///
    /// ```text
    /// pass 1  predicate_pushdown  ~3 rows -> ~3 rows
    /// fixpoint after 2 passes (1 firing)
    /// ```
    pub fn render(&self) -> String {
        let fmt = |c: Option<f64>| match c {
            Some(v) => format!("~{v:.0} rows"),
            None => "?".to_string(),
        };
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "pass {}  {:<22}{} -> {}\n",
                e.pass,
                e.rule,
                fmt(e.cost_before),
                fmt(e.cost_after)
            ));
        }
        let firings = self.entries.len();
        let plural = if firings == 1 { "firing" } else { "firings" };
        if self.converged {
            out.push_str(&format!(
                "fixpoint after {} pass{} ({firings} {plural})\n",
                self.passes,
                if self.passes == 1 { "" } else { "es" },
            ));
        } else {
            out.push_str(&format!(
                "stopped at the {}-pass cap ({firings} {plural})\n",
                self.passes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> OptimizeTrace {
        OptimizeTrace {
            entries: vec![
                TraceEntry {
                    rule: "a",
                    pass: 1,
                    cost_before: Some(10.0),
                    cost_after: Some(5.0),
                },
                TraceEntry {
                    rule: "b",
                    pass: 1,
                    cost_before: None,
                    cost_after: None,
                },
                TraceEntry {
                    rule: "a",
                    pass: 2,
                    cost_before: Some(5.0),
                    cost_after: Some(5.0),
                },
            ],
            passes: 3,
            converged: true,
        }
    }

    #[test]
    fn fire_counters() {
        let t = trace();
        assert_eq!(t.fires("a"), 2);
        assert_eq!(t.fires("b"), 1);
        assert_eq!(t.fires("missing"), 0);
        assert_eq!(t.fire_counts(), vec![("a", 2), ("b", 1)]);
    }

    #[test]
    fn render_shows_costs_and_fixpoint() {
        let s = trace().render();
        assert!(s.contains("pass 1  a"), "{s}");
        assert!(s.contains("~10 rows -> ~5 rows"), "{s}");
        assert!(s.contains("? -> ?"), "{s}");
        assert!(s.contains("fixpoint after 3 passes (3 firings)"), "{s}");
        let capped = OptimizeTrace {
            converged: false,
            ..trace()
        };
        assert!(capped.render().contains("stopped at the 3-pass cap"));
    }
}
