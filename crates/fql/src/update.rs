//! In-place FQL usage: change operations (paper Fig. 10, §4.4).
//!
//! In SQL, writes (INSERT/UPDATE/DELETE) are a stunted sibling of reads.
//! In FQL both sides are the same thing: an in-place expression replaces a
//! function in the input FDM. The helpers here are the Fig. 10 costumes,
//! all persistent — each returns a new [`DatabaseF`] and leaves the input
//! untouched, which is what the transaction layer (`fdm-txn`) builds on.

use fdm_core::{DatabaseF, FnValue, RelationF, Result, TupleF, Value};

/// `customers[3] = {'name': 'Tom', 'age': 42}` — keyed insert (or
/// replacement) of a tuple in a relation of `db`.
pub fn db_upsert(db: &DatabaseF, rel: &str, key: Value, tuple: TupleF) -> Result<DatabaseF> {
    let r = db.relation(rel)?;
    let r2 = r.upsert(key, tuple)?;
    Ok(db.with_entry(rel, FnValue::from(r2)))
}

/// Strict insert: fails on an existing key.
pub fn db_insert(db: &DatabaseF, rel: &str, key: Value, tuple: TupleF) -> Result<DatabaseF> {
    let r = db.relation(rel)?;
    let r2 = r.insert(key, tuple)?;
    Ok(db.with_entry(rel, FnValue::from(r2)))
}

/// `customers.add({...})` — insert relying on an auto id; returns the new
/// database and the assigned key.
pub fn db_add(db: &DatabaseF, rel: &str, tuple: TupleF) -> Result<(DatabaseF, Value)> {
    let r = db.relation(rel)?;
    let (r2, key) = r.insert_auto(tuple)?;
    Ok((db.with_entry(rel, FnValue::from(r2)), key))
}

/// `customers[3]['age'] = 50` — update one attribute of one tuple.
pub fn db_update_attr(
    db: &DatabaseF,
    rel: &str,
    key: &Value,
    attr: &str,
    value: impl Into<Value>,
) -> Result<DatabaseF> {
    let r = db.relation(rel)?;
    let r2 = r.update_attr(key, attr, value)?;
    Ok(db.with_entry(rel, FnValue::from(r2)))
}

/// `accounts[42]['balance'] -= 100` — read-modify-write of one attribute.
pub fn db_modify_attr(
    db: &DatabaseF,
    rel: &str,
    key: &Value,
    attr: &str,
    f: impl FnOnce(&Value) -> Result<Value>,
) -> Result<DatabaseF> {
    let r = db.relation(rel)?;
    let r2 = r.update_tuple(key, |t| {
        let old = t.get(attr)?;
        Ok(t.with_attr(attr, f(&old)?))
    })?;
    Ok(db.with_entry(rel, FnValue::from(r2)))
}

/// `del customers[3]` — delete one tuple.
pub fn db_delete(db: &DatabaseF, rel: &str, key: &Value) -> Result<DatabaseF> {
    let r = db.relation(rel)?;
    let r2 = r.delete(key)?;
    Ok(db.with_entry(rel, FnValue::from(r2)))
}

/// The fully general in-place expression (§4.4): `DB('name') := f` where
/// `f` may be *any* FQL result — a filtered relation, a whole join result,
/// another database. This is just [`DatabaseF::with_entry`] re-exported
/// under its paper name.
pub fn db_assign(db: &DatabaseF, name: &str, f: impl Into<FnValue>) -> DatabaseF {
    db.with_entry(name, f)
}

/// Replaces an entire relation with the result of a transformation over
/// it — the "data rewrite rule" reading of in-place FQL (§4.4): e.g.
/// "replace customers by customers older than 42" in one expression.
pub fn db_rewrite(
    db: &DatabaseF,
    rel: &str,
    f: impl FnOnce(&RelationF) -> Result<RelationF>,
) -> Result<DatabaseF> {
    let r = db.relation(rel)?;
    let r2 = f(&r)?;
    Ok(db.with_entry(rel, FnValue::from(r2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::filter_attr;
    use crate::testutil::retail_db;
    use fdm_expr::GT;

    #[test]
    fn fig10_insert_update_delete() {
        let db = retail_db();

        // customers[7] = {'name':'Tom', 'age':42}
        let db1 = db_upsert(
            &db,
            "customers",
            Value::Int(7),
            TupleF::builder("t")
                .attr("name", "Tom")
                .attr("age", 42)
                .build(),
        )
        .unwrap();
        assert_eq!(db1.relation("customers").unwrap().len(), 4);

        // customers.add({'name':'Stephen','age':28}) — auto id
        let (db2, key) = db_add(
            &db1,
            "customers",
            TupleF::builder("t")
                .attr("name", "Stephen")
                .attr("age", 28)
                .build(),
        )
        .unwrap();
        assert_eq!(key, Value::Int(8), "max key 7 + 1");

        // customers[7] = {'name':'Tom','age':49} — replace
        let db3 = db_upsert(
            &db2,
            "customers",
            Value::Int(7),
            TupleF::builder("t")
                .attr("name", "Tom")
                .attr("age", 49)
                .build(),
        )
        .unwrap();

        // customers[7]['age'] = 50
        let db4 = db_update_attr(&db3, "customers", &Value::Int(7), "age", 50).unwrap();
        assert_eq!(
            db4.relation("customers")
                .unwrap()
                .lookup(&Value::Int(7))
                .unwrap()
                .get("age")
                .unwrap(),
            Value::Int(50)
        );

        // del customers[7]
        let db5 = db_delete(&db4, "customers", &Value::Int(7)).unwrap();
        assert!(db5
            .relation("customers")
            .unwrap()
            .lookup(&Value::Int(7))
            .is_none());

        // every step was persistent: the original still has 3 customers
        assert_eq!(db.relation("customers").unwrap().len(), 3);
    }

    #[test]
    fn fig11_balance_transfer_steps() {
        let accounts = RelationF::new("accounts", &["id"])
            .insert(
                Value::Int(42),
                TupleF::builder("a").attr("balance", 1000).build(),
            )
            .unwrap()
            .insert(
                Value::Int(84),
                TupleF::builder("a").attr("balance", 500).build(),
            )
            .unwrap();
        let db = DatabaseF::new("bank").with_relation(accounts);

        // accounts[42]['balance'] -= 100 ; accounts[84]['balance'] += 100
        let db1 = db_modify_attr(&db, "accounts", &Value::Int(42), "balance", |v| {
            v.sub(&Value::Int(100))
        })
        .unwrap();
        let db2 = db_modify_attr(&db1, "accounts", &Value::Int(84), "balance", |v| {
            v.add(&Value::Int(100))
        })
        .unwrap();
        let get = |d: &DatabaseF, id: i64| {
            d.relation("accounts")
                .unwrap()
                .lookup(&Value::Int(id))
                .unwrap()
                .get("balance")
                .unwrap()
        };
        assert_eq!(get(&db2, 42), Value::Int(900));
        assert_eq!(get(&db2, 84), Value::Int(600));
        // money conserved, original snapshot intact
        assert_eq!(get(&db, 42), Value::Int(1000));
    }

    #[test]
    fn db_assign_any_fql_expression() {
        // DB('old_customers') := filter(age > 42, customers)   (§4.4)
        let db = retail_db();
        let olds = filter_attr(&db.relation("customers").unwrap(), "age", GT, 42).unwrap();
        let db2 = db_assign(&db, "old_customers", FnValue::from(olds));
        assert_eq!(db2.relation("old_customers").unwrap().len(), 2);
        assert!(!db.contains("old_customers"));
    }

    #[test]
    fn db_rewrite_replaces_whole_relation() {
        // "replace customers by customers older than 42" — one expression
        let db = retail_db();
        let db2 = db_rewrite(&db, "customers", |c| filter_attr(c, "age", GT, 42)).unwrap();
        assert_eq!(db2.relation("customers").unwrap().len(), 2);
        assert_eq!(db.relation("customers").unwrap().len(), 3);
    }

    #[test]
    fn errors_propagate_cleanly() {
        let db = retail_db();
        assert!(db_delete(&db, "customers", &Value::Int(99)).is_err());
        assert!(db_update_attr(&db, "nope", &Value::Int(1), "x", 1).is_err());
        assert!(db_insert(
            &db,
            "customers",
            Value::Int(1),
            TupleF::builder("dup").build()
        )
        .is_err());
    }
}
