//! The n-ary `join` operator (paper Fig. 6).
//!
//! `join(subdatabase)` joins the relations of a database function **along
//! the relationship functions in its schema** — the FDM analogue of
//! "along the foreign key constraints" — and returns a single denormalized
//! relation function. The paper notes the optimizer may choose any join
//! strategy "including n-ary joins"; this implementation binds participant
//! tuples hash-style: each relationship's entries are indexed by the
//! participants already bound in the working rows, so chaining a
//! relationship costs O(rows + entries) instead of the nested
//! O(rows × entries) scan.
//!
//! Output attributes are qualified `relation.attr` (and
//! `relationship.attr` for the relationship's own attributes) so that a
//! denormalized row never has ambiguous names. Qualified names are interned
//! once per (relation, attribute) by the internal `Qualifier` — not re-formatted per
//! tuple — and results are assembled through [`fdm_core::RelationBuilder`]'s
//! O(n) bulk path.
//!
//! **Join order** is cost-modeled: among the relationships connected to
//! the already-bound relations, [`join`] binds the one with the smallest
//! estimated output-row count, computed from the per-relationship
//! fan-out statistics every [`RelationshipF`] maintains
//! ([`fdm_core::stats`]) — not from raw entry counts, which ignore how
//! many working rows each entry multiplies into. The chosen order affects
//! cost only: the produced denormalized rows are identical for every
//! order (pinned by `tests/tests/join_planning.rs`), with row numbering
//! and attribute order following the executed order.

use fdm_core::{
    par_map_chunks, DatabaseF, FdmError, FxHashMap, Name, ParConfig, RelationBuilder, RelationF,
    RelationshipF, Result, TupleF, Value,
};
use std::sync::Arc;

/// One explicit equi-join condition between two relations' attributes
/// (the `on=[[customers.id, order.c_id], ...]` costume of Fig. 6).
#[derive(Debug, Clone)]
pub struct JoinOn {
    /// Left relation name.
    pub left_rel: String,
    /// Left attribute.
    pub left_attr: String,
    /// Right relation name.
    pub right_rel: String,
    /// Right attribute.
    pub right_attr: String,
}

impl JoinOn {
    /// Convenience constructor: `JoinOn::new("customers", "id", "order", "c_id")`.
    pub fn new(left_rel: &str, left_attr: &str, right_rel: &str, right_attr: &str) -> Self {
        JoinOn {
            left_rel: left_rel.to_string(),
            left_attr: left_attr.to_string(),
            right_rel: right_rel.to_string(),
            right_attr: right_attr.to_string(),
        }
    }
}

/// A qualified attribute run shared across output rows.
type AttrRun = Arc<[(Name, Value)]>;

/// A partially joined row: which relation keys are bound, and the merged
/// attribute list accumulated so far. The bound set is a flat vec — join
/// chains touch a handful of relations, and a linear scan beats a tree map
/// (and its per-row node allocations) at that size.
#[derive(Clone)]
struct JoinRow {
    /// `(relation name, bound key)` pairs
    bound: Vec<(Name, Value)>,
    /// qualified attribute values accumulated so far
    attrs: Vec<(Name, Value)>,
}

impl JoinRow {
    fn bound_key(&self, rel: &Name) -> Option<&Value> {
        self.bound.iter().find(|(n, _)| n == rel).map(|(_, v)| v)
    }
}

/// Interns `prefix.attr` qualified names once per distinct attribute, so
/// qualification never re-formats per tuple. The cache is a flat vec with a
/// linear scan: a relation has a handful of distinct attribute names, and a
/// short-string compare beats a SipHash probe at that size.
pub(crate) struct Qualifier {
    prefix: String,
    cache: Vec<(Name, Name)>,
}

impl Qualifier {
    pub(crate) fn new(prefix: &str) -> Self {
        Qualifier {
            prefix: prefix.to_string(),
            cache: Vec::new(),
        }
    }

    /// The interned qualified name for `attr`.
    pub(crate) fn name(&mut self, attr: &Name) -> Name {
        if let Some((_, q)) = self.cache.iter().find(|(a, _)| a == attr) {
            return q.clone();
        }
        let q = Name::from(format!("{}.{attr}", self.prefix).as_str());
        self.cache.push((attr.clone(), q.clone()));
        q
    }

    /// Qualifies every materialized attribute of `tuple` into `out`.
    pub(crate) fn qualify(&mut self, tuple: &TupleF, out: &mut Vec<(Name, Value)>) -> Result<()> {
        for (attr, v) in tuple.materialize()? {
            out.push((self.name(&attr), v));
        }
        Ok(())
    }
}

/// Builds the `join_result` relation from denormalized attribute rows
/// through the bulk fast path (row ids ascend, so no sort happens; the
/// interned attribute names move straight into the tuples, unre-allocated).
fn rows_to_relation(rows: impl IntoIterator<Item = Vec<(Name, Value)>>) -> Result<RelationF> {
    let rows = rows.into_iter();
    let mut out = RelationBuilder::new("join_result", &["row"]).with_capacity(rows.size_hint().0);
    for (i, attrs) in rows.enumerate() {
        out.push(
            Value::Int(i as i64),
            TupleF::from_parts(format!("j{i}"), attrs),
        );
    }
    out.build()
}

/// Joins the subdatabase along its relationship functions, producing one
/// denormalized relation function (Fig. 6, first costume).
///
/// Every relationship function in `db` whose participants are all present
/// as relations contributes; relationships sharing a participant chain
/// (their bound keys must agree). Relations not reachable from any
/// relationship are ignored (a join has nothing to say about them).
///
/// Cost-model selection follows the ambient
/// [`OptimizerConfig`](crate::optimizer::OptimizerConfig) resolution
/// (`FDM_JOIN_COST=entries` as the env fallback); use [`join_with`] to
/// pin it explicitly.
pub fn join(db: &DatabaseF) -> Result<RelationF> {
    join_with(db, &crate::optimizer::OptimizerConfig::new())
}

/// [`join`] with an explicit [`OptimizerConfig`](crate::optimizer::OptimizerConfig):
/// the config's [`join_cost`](crate::optimizer::OptimizerConfig::join_cost)
/// resolution (explicit setting > `FDM_JOIN_COST` env > stats default)
/// decides whether relationship ordering uses fan-out statistics or the
/// raw-entry-count heuristic. Either model produces identical rows —
/// pinned by `tests/tests/join_planning.rs` — only the probe cost moves.
pub fn join_with(db: &DatabaseF, config: &crate::optimizer::OptimizerConfig) -> Result<RelationF> {
    let relationships: Vec<(Name, Arc<RelationshipF>)> = db
        .relationships()
        .map(|(n, r)| (n.clone(), r.clone()))
        .collect();
    if relationships.is_empty() {
        return Err(FdmError::Other(
            "join: database has no relationship functions; use join_on with explicit conditions"
                .to_string(),
        ));
    }

    let mut rows: Vec<JoinRow> = vec![JoinRow {
        bound: Vec::new(),
        attrs: Vec::new(),
    }];
    let mut pending: Vec<(Name, Arc<RelationshipF>)> = relationships;
    // Process relationships, preferring ones that share a participant with
    // what is already bound (so chains connect instead of going cartesian),
    // and among those the one with the smallest **estimated output rows**
    // (working rows × average fan-out of the bound side, from the
    // relationship's maintained `fdm_core::stats`) — joining the cheapest
    // relationship first keeps the working row set small for every later
    // probe. `JoinCostModel::Entries` (config, or `FDM_JOIN_COST=entries`
    // as the env fallback) selects the PR 2 raw-entry-count heuristic (the
    // pinning tests drive both and prove the produced rows are identical
    // either way). Ties keep declaration order (`min_by` returns the first
    // minimum).
    let cost_by_entries = config.join_cost() == crate::optimizer::JoinCostModel::Entries;
    while !pending.is_empty() {
        let bound_rels: std::collections::BTreeSet<Name> = rows
            .first()
            .map(|r| r.bound.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        let connected = |rsf: &RelationshipF| {
            rsf.participants()
                .iter()
                .any(|p| bound_rels.contains(&p.function))
        };
        // Estimated rows after binding this relationship: bound positions
        // are the participants backed by an already-bound relation. With
        // nothing bound the estimate degenerates to rows × entries, so the
        // disconnected fallback still starts from the smallest relationship.
        let estimate = |rsf: &RelationshipF| -> f64 {
            if cost_by_entries {
                return rsf.len() as f64;
            }
            let bound_positions: Vec<usize> = rsf
                .participants()
                .iter()
                .enumerate()
                .filter(|(_, p)| bound_rels.contains(&p.function))
                .map(|(i, _)| i)
                .collect();
            rsf.stats().estimate_join_rows(rows.len(), &bound_positions)
        };
        let cheapest = |candidates: &mut dyn Iterator<Item = (usize, f64)>| {
            candidates
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("estimates are finite"))
                .map(|(i, _)| i)
        };
        let idx = cheapest(
            &mut pending
                .iter()
                .enumerate()
                .filter(|(_, (_, rsf))| connected(rsf))
                .map(|(i, (_, rsf))| (i, estimate(rsf))),
        )
        .unwrap_or_else(|| {
            // nothing connects (the first pick, or a disconnected
            // component): start from the cheapest generator
            cheapest(
                &mut pending
                    .iter()
                    .enumerate()
                    .map(|(i, (_, rsf))| (i, estimate(rsf))),
            )
            .unwrap_or(0)
        });
        let (rname, rsf) = pending.remove(idx);
        // The bound set only exists to connect later relationships; the
        // last one can skip maintaining it.
        let need_bound = !pending.is_empty();
        rows = join_one_relationship(db, &rname, &rsf, rows, need_bound)?;
    }

    rows_to_relation(rows.into_iter().map(|r| r.attrs))
}

/// Extends each working row with the matching entries of one relationship.
///
/// Entries are indexed by the participants the rows have already bound
/// (hash build over the relationship side), so each row probes once instead
/// of scanning every entry; unbound participants are then bound by key
/// lookup into their relations (inner join: a dangling key drops the
/// entry).
fn join_one_relationship(
    db: &DatabaseF,
    rname: &str,
    rsf: &RelationshipF,
    rows: Vec<JoinRow>,
    need_bound: bool,
) -> Result<Vec<JoinRow>> {
    // Resolve participant relations.
    let mut parts: Vec<(Name, Arc<RelationF>)> = Vec::with_capacity(rsf.participants().len());
    for p in rsf.participants() {
        let rel = db.relation(&p.function).map_err(|_| {
            FdmError::Other(format!(
                "join: relationship '{rname}' references '{}' which is not a relation in the database",
                p.function
            ))
        })?;
        parts.push((p.function.clone(), rel));
    }
    if rows.is_empty() {
        return Ok(rows);
    }

    // Which participant positions are already bound in the working rows?
    // All rows share one bound set (they are built through the same
    // relationship sequence), so the first row decides.
    let bound_positions: Vec<usize> = parts
        .iter()
        .enumerate()
        .filter(|(_, (pname, _))| rows[0].bound_key(pname).is_some())
        .map(|(i, _)| i)
        .collect();
    // Each relation binds once: a second participant position backed by an
    // already-seen relation contributes no further binding (matching the
    // insert-era semantics) — resolving it again would emit duplicate
    // qualified names that shadow each other in the output tuple.
    let mut unbound_positions: Vec<usize> = Vec::new();
    for i in 0..parts.len() {
        if bound_positions.contains(&i) {
            continue;
        }
        if unbound_positions.iter().any(|&j| parts[j].0 == parts[i].0) {
            continue;
        }
        unbound_positions.push(i);
    }

    // One `Value` per probe: the single bound key directly, or a key list —
    // both hash without a per-probe `Vec` allocation for the common
    // single-shared-participant chain.
    let probe_key = |keys: &mut dyn Iterator<Item = Value>| -> Value {
        let first = keys.next().unwrap_or(Value::Unit);
        match keys.next() {
            None => first,
            Some(second) => {
                Value::list([first, second].into_iter().chain(keys.collect::<Vec<_>>()))
            }
        }
    };

    // Hash-index the relationship entries by their bound-position keys.
    // With nothing bound yet (the first relationship) every row matches
    // every entry, so the index would be one giant bucket — skip it.
    let entries: Vec<(&[Value], &Arc<TupleF>)> = rsf.iter_entries().collect();
    let all_entries: Vec<usize> = if bound_positions.is_empty() {
        (0..entries.len()).collect()
    } else {
        Vec::new()
    };
    let mut index: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
    if !bound_positions.is_empty() {
        index.reserve(entries.len());
        for (ei, (args, _)) in entries.iter().enumerate() {
            let probe = probe_key(&mut bound_positions.iter().map(|&i| args[i].clone()));
            index.entry(probe).or_default().push(ei);
        }
    }

    // Participant key names (`customers.cid`) formatted once, not per row.
    let key_names: Vec<Name> = rsf
        .participants()
        .iter()
        .map(|p| Name::from(format!("{}.{}", p.function, p.key).as_str()))
        .collect();

    /// Per-worker mutable state: one qualifier per participant (interned
    /// qualified names) and the participant-tuple attribute-run cache
    /// (participant tuples repeat across many output rows; `None` caches a
    /// dangling key). Each thread owns its own — the caches are pure
    /// memoization, so duplicating them across chunks changes cost, never
    /// content.
    struct Worker {
        part_quals: Vec<Qualifier>,
        part_cache: Vec<FxHashMap<Value, Option<AttrRun>>>,
        scratch: Vec<AttrRun>,
    }

    impl Worker {
        fn new(parts: &[(Name, Arc<RelationF>)]) -> Worker {
            Worker {
                part_quals: parts.iter().map(|(p, _)| Qualifier::new(p)).collect(),
                part_cache: parts.iter().map(|_| FxHashMap::default()).collect(),
                scratch: Vec::new(),
            }
        }
    }

    /// Extends one working row with its matching entries — the shared body
    /// of the sequential and parallel paths. `entry_attrs` supplies the
    /// relationship's own qualified attributes per entry index (lazy in the
    /// sequential path, precomputed in the parallel one).
    #[allow(clippy::too_many_arguments)]
    fn emit_rows_for(
        row: &JoinRow,
        matches: &[usize],
        entries: &[(&[Value], &Arc<TupleF>)],
        parts: &[(Name, Arc<RelationF>)],
        unbound_positions: &[usize],
        key_names: &[Name],
        need_bound: bool,
        entry_attrs: &mut dyn FnMut(usize) -> Result<AttrRun>,
        w: &mut Worker,
        next: &mut Vec<JoinRow>,
    ) -> Result<()> {
        'entry: for &ei in matches {
            let (args, _) = &entries[ei];
            // Resolve every unbound participant to its cached qualified
            // attribute run first (inner join: a dangling key drops the
            // entry before any row is allocated).
            w.scratch.clear();
            for &i in unbound_positions {
                let arg = &args[i];
                let cached = match w.part_cache[i].get(arg) {
                    Some(c) => c.clone(),
                    None => {
                        let computed = match parts[i].1.lookup(arg) {
                            Some(tuple) => {
                                let mut attrs = vec![(key_names[i].clone(), arg.clone())];
                                w.part_quals[i].qualify(&tuple, &mut attrs)?;
                                Some(AttrRun::from(attrs.into_boxed_slice()))
                            }
                            None => None,
                        };
                        w.part_cache[i].insert(arg.clone(), computed.clone());
                        computed
                    }
                };
                match cached {
                    Some(attrs) => w.scratch.push(attrs),
                    None => continue 'entry,
                }
            }
            let rel_attrs = entry_attrs(ei)?;
            // Assemble the output row in one exact-capacity allocation.
            let cap = row.attrs.len()
                + w.scratch.iter().map(|r| r.len()).sum::<usize>()
                + rel_attrs.len();
            let mut attrs = Vec::with_capacity(cap);
            attrs.extend_from_slice(&row.attrs);
            for run in &w.scratch {
                attrs.extend(run.iter().cloned());
            }
            attrs.extend(rel_attrs.iter().cloned());
            let bound = if need_bound {
                let mut bound = Vec::with_capacity(row.bound.len() + unbound_positions.len());
                bound.extend_from_slice(&row.bound);
                for &i in unbound_positions {
                    bound.push((parts[i].0.clone(), args[i].clone()));
                }
                bound
            } else {
                Vec::new()
            };
            next.push(JoinRow { bound, attrs });
        }
        Ok(())
    }

    /// Which entries does a working row match? With nothing bound, all of
    /// them; otherwise the hash index filters by the bound keys.
    fn matches_for<'a>(
        row: &JoinRow,
        bound_positions: &[usize],
        parts: &[(Name, Arc<RelationF>)],
        all_entries: &'a [usize],
        index: &'a FxHashMap<Value, Vec<usize>>,
        probe_key: &dyn Fn(&mut dyn Iterator<Item = Value>) -> Value,
    ) -> Option<&'a [usize]> {
        if bound_positions.is_empty() {
            Some(all_entries)
        } else {
            let probe = probe_key(&mut bound_positions.iter().map(|&i| {
                row.bound_key(&parts[i].0)
                    .expect("position is bound")
                    .clone()
            }));
            index.get(&probe).map(Vec::as_slice)
        }
    }

    // The relationship's own attributes are qualified once per entry —
    // eagerly in one cache-friendly pass when every entry will be visited,
    // lazily when an index filters them.
    let mut rel_qual = Qualifier::new(rname);
    let mut entry_attrs: Vec<Option<AttrRun>> = vec![None; entries.len()];
    if bound_positions.is_empty() {
        for (ei, (_, rattrs)) in entries.iter().enumerate() {
            let mut attrs = Vec::new();
            rel_qual.qualify(rattrs, &mut attrs)?;
            entry_attrs[ei] = Some(Arc::from(attrs.into_boxed_slice()));
        }
    }

    let cfg = ParConfig::from_env();
    if cfg.should_parallelize(rows.len()) {
        // Probing is pure per-row work over read-only state (index, entry
        // table, participant relations), so chunk the working rows across
        // threads; concatenating the chunk outputs in order reproduces the
        // sequential row order exactly. Entry attrs pre-qualified in the
        // visit-everything case are shared read-only; when an index
        // filters, each chunk memoizes lazily (like the sequential path —
        // unmatched entries are never qualified, just at worst once per
        // chunk instead of once).
        let entry_attrs = entry_attrs; // frozen, shared across chunks
        let chunk_outputs = par_map_chunks(&rows, cfg.threads, |chunk| -> Result<Vec<JoinRow>> {
            let mut w = Worker::new(&parts);
            let mut out = Vec::with_capacity(chunk.len());
            let mut rel_qual = Qualifier::new(rname);
            let mut local_attrs: FxHashMap<usize, AttrRun> = FxHashMap::default();
            let mut get_attrs = |ei: usize| -> Result<AttrRun> {
                if let Some(a) = &entry_attrs[ei] {
                    return Ok(a.clone());
                }
                if let Some(a) = local_attrs.get(&ei) {
                    return Ok(a.clone());
                }
                let (_, rattrs) = &entries[ei];
                let mut attrs = Vec::new();
                rel_qual.qualify(rattrs, &mut attrs)?;
                let a: AttrRun = Arc::from(attrs.into_boxed_slice());
                local_attrs.insert(ei, a.clone());
                Ok(a)
            };
            for row in chunk {
                let Some(matches) = matches_for(
                    row,
                    &bound_positions,
                    &parts,
                    &all_entries,
                    &index,
                    &probe_key,
                ) else {
                    continue;
                };
                emit_rows_for(
                    row,
                    matches,
                    &entries,
                    &parts,
                    &unbound_positions,
                    &key_names,
                    need_bound,
                    &mut get_attrs,
                    &mut w,
                    &mut out,
                )?;
            }
            Ok(out)
        });
        let mut next = Vec::new();
        for out in chunk_outputs {
            next.extend(out?);
        }
        return Ok(next);
    }

    // Sequential path. Upper bound for the unfiltered case; later
    // relationships grow on demand.
    let mut next = Vec::with_capacity(if bound_positions.is_empty() {
        entries.len()
    } else {
        rows.len()
    });
    let mut w = Worker::new(&parts);
    for row in &rows {
        let Some(matches) = matches_for(
            row,
            &bound_positions,
            &parts,
            &all_entries,
            &index,
            &probe_key,
        ) else {
            continue;
        };
        let mut get_attrs = |ei: usize| -> Result<AttrRun> {
            match &entry_attrs[ei] {
                Some(a) => Ok(a.clone()),
                None => {
                    let (_, rattrs) = &entries[ei];
                    let mut attrs = Vec::new();
                    rel_qual.qualify(rattrs, &mut attrs)?;
                    let a: AttrRun = Arc::from(attrs.into_boxed_slice());
                    entry_attrs[ei] = Some(a.clone());
                    Ok(a)
                }
            }
        };
        emit_rows_for(
            row,
            matches,
            &entries,
            &parts,
            &unbound_positions,
            &key_names,
            need_bound,
            &mut get_attrs,
            &mut w,
            &mut next,
        )?;
    }
    Ok(next)
}

/// Joins relations by explicit equi-conditions (Fig. 6, second costume),
/// left-to-right with a `HashMap` index built over each newly joined side's
/// attribute.
pub fn join_on(db: &DatabaseF, conditions: &[JoinOn]) -> Result<RelationF> {
    if conditions.is_empty() {
        return Err(FdmError::Other("join_on: no conditions given".to_string()));
    }
    // working rows: qualified attrs + set of bound relation names
    let mut bound: Vec<Name> = Vec::new();
    let mut rows: Vec<Vec<(Name, Value)>> = Vec::new();

    // seed with the first condition's left relation (keys inlined so
    // conditions may reference key attributes like `customers.cid`)
    let first = &conditions[0];
    let left = crate::filter::with_inlined_keys(db.relation(&first.left_rel)?.as_ref())?;
    let mut left_qual = Qualifier::new(&first.left_rel);
    for (_, t) in left.tuples()? {
        let mut attrs = Vec::new();
        left_qual.qualify(&t, &mut attrs)?;
        rows.push(attrs);
    }
    bound.push(Name::from(first.left_rel.as_str()));

    for cond in conditions {
        let (probe_rel, probe_attr, build_rel, build_attr) =
            if bound.iter().any(|b| b.as_ref() == cond.left_rel) {
                (
                    &cond.left_rel,
                    &cond.left_attr,
                    &cond.right_rel,
                    &cond.right_attr,
                )
            } else if bound.iter().any(|b| b.as_ref() == cond.right_rel) {
                (
                    &cond.right_rel,
                    &cond.right_attr,
                    &cond.left_rel,
                    &cond.left_attr,
                )
            } else {
                return Err(FdmError::Other(format!(
                    "join_on: condition {}.{} = {}.{} is disconnected from the join so far",
                    cond.left_rel, cond.left_attr, cond.right_rel, cond.right_attr
                )));
            };
        if bound.iter().any(|b| b.as_ref() == build_rel.as_str()) {
            // both sides already bound: apply as a post-filter
            let lq = Name::from(format!("{}.{}", cond.left_rel, cond.left_attr).as_str());
            let rq = Name::from(format!("{}.{}", cond.right_rel, cond.right_attr).as_str());
            rows.retain(|attrs| {
                let l = attrs.iter().find(|(n, _)| *n == lq).map(|(_, v)| v);
                let r = attrs.iter().find(|(n, _)| *n == rq).map(|(_, v)| v);
                matches!((l, r), (Some(a), Some(b)) if a == b)
            });
            continue;
        }
        // hash-build the new side by its join attribute (keys inlined),
        // qualifying each build tuple once — probe hits just clone the
        // prepared attribute run
        let build_src = db.relation(build_rel)?;
        let build = crate::filter::with_inlined_keys(build_src.as_ref())?;
        let mut build_qual = Qualifier::new(build_rel);
        // pre-size the hash table from the stats layer's distinct-count
        // *hint* — the table holds one entry per distinct join-attribute
        // value, not one per row (exact for key/unique attrs). The hint
        // is read off the database's own relation value (same rows, same
        // distinct counts as the inlined working copy — whose caches are
        // always fresh-empty) so it can see sketches a planner already
        // computed there; it never triggers the O(n) sketch build itself,
        // because a capacity guess is not worth an analyze scan per join.
        let mut table: FxHashMap<Value, Vec<AttrRun>> = FxHashMap::with_capacity_and_hasher(
            fdm_core::distinct_hint(&build_src, build_attr),
            Default::default(),
        );
        for (_, t) in build.tuples()? {
            let mut attrs = Vec::new();
            build_qual.qualify(&t, &mut attrs)?;
            table
                .entry(t.get(build_attr)?)
                .or_default()
                .push(Arc::from(attrs.into_boxed_slice()));
        }
        let probe_q = Name::from(format!("{probe_rel}.{probe_attr}").as_str());
        let probe_rows = |chunk: &[Vec<(Name, Value)>]| {
            let mut out = Vec::with_capacity(chunk.len());
            for attrs in chunk {
                let Some((_, pv)) = attrs.iter().find(|(n, _)| *n == probe_q) else {
                    continue;
                };
                if let Some(matches) = table.get(pv) {
                    for t in matches {
                        let mut merged = attrs.clone();
                        merged.extend(t.iter().cloned());
                        out.push(merged);
                    }
                }
            }
            out
        };
        // The probe side is pure per-row work against the read-only hash
        // table — chunk it across threads on large inputs; chunk outputs
        // concatenate back in row order.
        let cfg = ParConfig::from_env();
        rows = if cfg.should_parallelize(rows.len()) {
            par_map_chunks(&rows, cfg.threads, probe_rows)
                .into_iter()
                .flatten()
                .collect()
        } else {
            probe_rows(&rows)
        };
        bound.push(Name::from(build_rel.as_str()));
    }

    rows_to_relation(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::retail_db;

    #[test]
    fn fig6_schema_driven_join() {
        let db = retail_db();
        let joined = join(&db).unwrap();
        // orders: (1,10),(1,11),(2,10) → 3 denormalized rows
        assert_eq!(joined.len(), 3);
        let (_, t) = joined.tuples().unwrap().remove(0);
        assert!(t.has_attr("customers.name"));
        assert!(t.has_attr("products.name"));
        assert!(t.has_attr("order.date"));
        assert!(t.has_attr("customers.cid"));
        // denormalization duplicates Alice (cid=1) across her two orders
        let alice_rows = joined
            .tuples()
            .unwrap()
            .into_iter()
            .filter(|(_, t)| t.get("customers.name").unwrap() == Value::str("Alice"))
            .count();
        assert_eq!(alice_rows, 2);
    }

    #[test]
    fn schema_join_skips_dangling_entries() {
        // add an order pointing at a product that does not exist
        let db = retail_db();
        let order = db.relationship("order").unwrap();
        let order2 = order
            .insert_link(&[Value::Int(2), Value::Int(999)])
            .unwrap();
        let db = db.with_relationship(order2);
        let joined = join(&db).unwrap();
        assert_eq!(joined.len(), 3, "dangling entry contributes nothing");
    }

    #[test]
    fn fig6_explicit_on_join_matches_schema_join() {
        let db = retail_db();
        // express the order relationship as a plain relation and join on it
        let order_rel = db.relationship("order").unwrap().to_relation();
        let db2 = db.with_relation(order_rel.renamed("order_rel"));
        let joined = join_on(
            &db2,
            &[
                JoinOn::new("customers", "cid", "order_rel", "cid"),
                JoinOn::new("order_rel", "pid", "products", "pid"),
            ],
        )
        .unwrap();
        assert_eq!(joined.len(), 3);
        let schema_joined = join(&db).unwrap();
        assert_eq!(schema_joined.len(), joined.len());
    }

    #[test]
    fn join_on_detects_disconnected_conditions() {
        let db = retail_db();
        let err = join_on(&db, &[JoinOn::new("products", "pid", "nonexistent", "x")]).unwrap_err();
        assert!(err.to_string().contains("nonexistent"), "{err}");
    }

    #[test]
    fn join_without_relationships_errors() {
        let db = DatabaseF::new("empty").with_relation(RelationF::new("r", &["id"]));
        assert!(join(&db).is_err());
    }

    #[test]
    fn customers_cid_key_is_in_output() {
        let db = retail_db();
        let joined = join(&db).unwrap();
        for (_, t) in joined.tuples().unwrap() {
            let cid = t.get("customers.cid").unwrap();
            assert!(matches!(cid, Value::Int(_)));
            let pid = t.get("products.pid").unwrap();
            assert!(matches!(pid, Value::Int(_)));
        }
    }

    #[test]
    fn self_relationship_binds_each_relation_once() {
        // manages(employee: people, manager: people) — both participants
        // share one relation. The join must bind `people` once per entry:
        // no duplicate `people.*` attribute names shadowing each other.
        use fdm_core::{Domain, Participant, RelationshipF, SharedDomain, ValueType};
        let people = RelationF::new("people", &["pid"])
            .insert(
                Value::Int(1),
                fdm_core::TupleF::builder("p1")
                    .attr("name", "Alice")
                    .build(),
            )
            .unwrap()
            .insert(
                Value::Int(2),
                fdm_core::TupleF::builder("p2").attr("name", "Bob").build(),
            )
            .unwrap();
        let dom = SharedDomain::new("pid", Domain::Typed(ValueType::Int));
        let manages = RelationshipF::new(
            "manages",
            vec![
                Participant::new("people", "eid", dom.clone()),
                Participant::new("people", "mid", dom.clone()),
            ],
        )
        .insert_link(&[Value::Int(2), Value::Int(1)])
        .unwrap();
        let db = DatabaseF::new("org")
            .with_domain(dom)
            .with_relation(people)
            .with_relationship(manages);
        let joined = join(&db).unwrap();
        assert_eq!(joined.len(), 1);
        let (_, t) = joined.tuples().unwrap().remove(0);
        // exactly one people.name — the bound (first) participant's tuple
        let name_count = t
            .attr_names()
            .filter(|n| n.as_ref() == "people.name")
            .count();
        assert_eq!(name_count, 1, "no shadowed duplicate names: {t:?}");
        assert_eq!(t.get("people.eid").unwrap(), Value::Int(2));
        assert_eq!(t.get("people.name").unwrap(), Value::str("Bob"));
    }

    #[test]
    fn qualifier_interns_names() {
        let mut q = Qualifier::new("r");
        let a1 = q.name(&Name::from("x"));
        let a2 = q.name(&Name::from("x"));
        assert_eq!(a1.as_ref(), "r.x");
        // same Arc, not merely equal strings
        assert!(Arc::ptr_eq(&a1, &a2));
    }
}
