//! The n-ary `join` operator (paper Fig. 6).
//!
//! `join(subdatabase)` joins the relations of a database function **along
//! the relationship functions in its schema** — the FDM analogue of
//! "along the foreign key constraints" — and returns a single denormalized
//! relation function. The paper notes the optimizer may choose any join
//! strategy "including n-ary joins"; this implementation walks relationship
//! entries and binds participant tuples hash-style, chaining relationships
//! that share participants.
//!
//! Output attributes are qualified `relation.attr` (and
//! `relationship.attr` for the relationship's own attributes) so that a
//! denormalized row never has ambiguous names.

use fdm_core::{
    DatabaseF, FdmError, Name, RelationF, RelationshipF, Result, TupleF, Value,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One explicit equi-join condition between two relations' attributes
/// (the `on=[[customers.id, order.c_id], ...]` costume of Fig. 6).
#[derive(Debug, Clone)]
pub struct JoinOn {
    /// Left relation name.
    pub left_rel: String,
    /// Left attribute.
    pub left_attr: String,
    /// Right relation name.
    pub right_rel: String,
    /// Right attribute.
    pub right_attr: String,
}

impl JoinOn {
    /// Convenience constructor: `JoinOn::new("customers", "id", "order", "c_id")`.
    pub fn new(left_rel: &str, left_attr: &str, right_rel: &str, right_attr: &str) -> Self {
        JoinOn {
            left_rel: left_rel.to_string(),
            left_attr: left_attr.to_string(),
            right_rel: right_rel.to_string(),
            right_attr: right_attr.to_string(),
        }
    }
}

/// A partially joined row: which relation keys are bound, and the merged
/// attribute list accumulated so far.
#[derive(Clone)]
struct JoinRow {
    /// relation name → bound key
    bound: BTreeMap<Name, Value>,
    /// qualified attribute values accumulated so far
    attrs: Vec<(Name, Value)>,
}

fn qualify(tuple: &TupleF, rel_name: &str, out: &mut Vec<(Name, Value)>) -> Result<()> {
    for (attr, v) in tuple.materialize()? {
        out.push((Name::from(format!("{rel_name}.{attr}").as_str()), v));
    }
    Ok(())
}

/// Joins the subdatabase along its relationship functions, producing one
/// denormalized relation function (Fig. 6, first costume).
///
/// Every relationship function in `db` whose participants are all present
/// as relations contributes; relationships sharing a participant chain
/// (their bound keys must agree). Relations not reachable from any
/// relationship are ignored (a join has nothing to say about them).
pub fn join(db: &DatabaseF) -> Result<RelationF> {
    let relationships: Vec<(Name, Arc<RelationshipF>)> = db
        .relationships()
        .map(|(n, r)| (n.clone(), r.clone()))
        .collect();
    if relationships.is_empty() {
        return Err(FdmError::Other(
            "join: database has no relationship functions; use join_on with explicit conditions"
                .to_string(),
        ));
    }

    let mut rows: Vec<JoinRow> = vec![JoinRow { bound: BTreeMap::new(), attrs: Vec::new() }];
    let mut pending: Vec<(Name, Arc<RelationshipF>)> = relationships;
    // Process relationships, preferring ones that share a participant with
    // what is already bound (so chains connect instead of going cartesian).
    while !pending.is_empty() {
        let bound_rels: std::collections::BTreeSet<Name> = rows
            .first()
            .map(|r| r.bound.keys().cloned().collect())
            .unwrap_or_default();
        let idx = pending
            .iter()
            .position(|(_, rsf)| {
                rsf.participants()
                    .iter()
                    .any(|p| bound_rels.contains(&p.function))
            })
            .unwrap_or(0);
        let (rname, rsf) = pending.remove(idx);
        rows = join_one_relationship(db, &rname, &rsf, rows)?;
    }

    let mut out = RelationF::new("join_result", &["row"]);
    for (i, row) in rows.into_iter().enumerate() {
        let mut b = TupleF::builder(format!("j{i}"));
        for (n, v) in row.attrs {
            b = b.attr(n.as_ref(), v);
        }
        out = out.insert(Value::Int(i as i64), b.build())?;
    }
    Ok(out)
}

fn join_one_relationship(
    db: &DatabaseF,
    rname: &str,
    rsf: &RelationshipF,
    rows: Vec<JoinRow>,
) -> Result<Vec<JoinRow>> {
    // Resolve participant relations.
    let mut parts: Vec<(Name, Arc<RelationF>)> = Vec::with_capacity(rsf.participants().len());
    for p in rsf.participants() {
        let rel = db.relation(&p.function).map_err(|_| {
            FdmError::Other(format!(
                "join: relationship '{rname}' references '{}' which is not a relation in the database",
                p.function
            ))
        })?;
        parts.push((p.function.clone(), rel));
    }

    let mut next = Vec::new();
    for row in &rows {
        for (args, rattrs) in rsf.iter() {
            // Shared participants must agree with already-bound keys.
            let mut compatible = true;
            for ((pname, _), arg) in parts.iter().zip(&args) {
                if let Some(bound_key) = row.bound.get(pname) {
                    if bound_key != arg {
                        compatible = false;
                        break;
                    }
                }
            }
            if !compatible {
                continue;
            }
            // Bind the unbound participants (inner join: skip the entry if
            // a participant tuple is missing).
            let mut new_row = row.clone();
            let mut ok = true;
            for ((pname, prel), arg) in parts.iter().zip(&args) {
                if new_row.bound.contains_key(pname) {
                    continue;
                }
                match prel.lookup(arg) {
                    Some(tuple) => {
                        new_row.bound.insert(pname.clone(), arg.clone());
                        // include the key itself under its participant name
                        if let Some(p) = rsf.participants().iter().find(|p| &p.function == pname) {
                            new_row
                                .attrs
                                .push((Name::from(format!("{pname}.{}", p.key).as_str()), arg.clone()));
                        }
                        qualify(&tuple, pname, &mut new_row.attrs)?;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            // The relationship's own attributes.
            for (attr, v) in rattrs.materialize()? {
                new_row
                    .attrs
                    .push((Name::from(format!("{rname}.{attr}").as_str()), v));
            }
            next.push(new_row);
        }
    }
    Ok(next)
}

/// Joins relations by explicit equi-conditions (Fig. 6, second costume),
/// left-to-right with hash lookups on the right side's attribute.
pub fn join_on(db: &DatabaseF, conditions: &[JoinOn]) -> Result<RelationF> {
    if conditions.is_empty() {
        return Err(FdmError::Other("join_on: no conditions given".to_string()));
    }
    // working rows: qualified attrs + set of bound relation names
    let mut bound: Vec<Name> = Vec::new();
    let mut rows: Vec<Vec<(Name, Value)>> = Vec::new();

    // seed with the first condition's left relation (keys inlined so
    // conditions may reference key attributes like `customers.cid`)
    let first = &conditions[0];
    let left = crate::filter::with_inlined_keys(db.relation(&first.left_rel)?.as_ref())?;
    for (_, t) in left.tuples()? {
        let mut attrs = Vec::new();
        qualify(&t, &first.left_rel, &mut attrs)?;
        rows.push(attrs);
    }
    bound.push(Name::from(first.left_rel.as_str()));

    for cond in conditions {
        let (probe_rel, probe_attr, build_rel, build_attr) =
            if bound.iter().any(|b| b.as_ref() == cond.left_rel) {
                (&cond.left_rel, &cond.left_attr, &cond.right_rel, &cond.right_attr)
            } else if bound.iter().any(|b| b.as_ref() == cond.right_rel) {
                (&cond.right_rel, &cond.right_attr, &cond.left_rel, &cond.left_attr)
            } else {
                return Err(FdmError::Other(format!(
                    "join_on: condition {}.{} = {}.{} is disconnected from the join so far",
                    cond.left_rel, cond.left_attr, cond.right_rel, cond.right_attr
                )));
            };
        if bound.iter().any(|b| b.as_ref() == build_rel.as_str()) {
            // both sides already bound: apply as a post-filter
            let lq = Name::from(format!("{}.{}", cond.left_rel, cond.left_attr).as_str());
            let rq = Name::from(format!("{}.{}", cond.right_rel, cond.right_attr).as_str());
            rows.retain(|attrs| {
                let l = attrs.iter().find(|(n, _)| *n == lq).map(|(_, v)| v);
                let r = attrs.iter().find(|(n, _)| *n == rq).map(|(_, v)| v);
                matches!((l, r), (Some(a), Some(b)) if a == b)
            });
            continue;
        }
        // hash-build the new side by its join attribute (keys inlined)
        let build = crate::filter::with_inlined_keys(db.relation(build_rel)?.as_ref())?;
        let mut table: BTreeMap<Value, Vec<Arc<TupleF>>> = BTreeMap::new();
        for (_, t) in build.tuples()? {
            table.entry(t.get(build_attr)?).or_default().push(t);
        }
        let probe_q = Name::from(format!("{probe_rel}.{probe_attr}").as_str());
        let mut next = Vec::new();
        for attrs in &rows {
            let Some((_, pv)) = attrs.iter().find(|(n, _)| *n == probe_q) else {
                continue;
            };
            if let Some(matches) = table.get(pv) {
                for t in matches {
                    let mut merged = attrs.clone();
                    qualify(t, build_rel, &mut merged)?;
                    next.push(merged);
                }
            }
        }
        rows = next;
        bound.push(Name::from(build_rel.as_str()));
    }

    let mut out = RelationF::new("join_result", &["row"]);
    for (i, attrs) in rows.into_iter().enumerate() {
        let mut b = TupleF::builder(format!("j{i}"));
        for (n, v) in attrs {
            b = b.attr(n.as_ref(), v);
        }
        out = out.insert(Value::Int(i as i64), b.build())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::retail_db;

    #[test]
    fn fig6_schema_driven_join() {
        let db = retail_db();
        let joined = join(&db).unwrap();
        // orders: (1,10),(1,11),(2,10) → 3 denormalized rows
        assert_eq!(joined.len(), 3);
        let (_, t) = joined.tuples().unwrap().remove(0);
        assert!(t.has_attr("customers.name"));
        assert!(t.has_attr("products.name"));
        assert!(t.has_attr("order.date"));
        assert!(t.has_attr("customers.cid"));
        // denormalization duplicates Alice (cid=1) across her two orders
        let alice_rows = joined
            .tuples()
            .unwrap()
            .into_iter()
            .filter(|(_, t)| t.get("customers.name").unwrap() == Value::str("Alice"))
            .count();
        assert_eq!(alice_rows, 2);
    }

    #[test]
    fn schema_join_skips_dangling_entries() {
        // add an order pointing at a product that does not exist
        let db = retail_db();
        let order = db.relationship("order").unwrap();
        let order2 = order
            .insert_link(&[Value::Int(2), Value::Int(999)])
            .unwrap();
        let db = db.with_relationship(order2);
        let joined = join(&db).unwrap();
        assert_eq!(joined.len(), 3, "dangling entry contributes nothing");
    }

    #[test]
    fn fig6_explicit_on_join_matches_schema_join() {
        let db = retail_db();
        // express the order relationship as a plain relation and join on it
        let order_rel = db.relationship("order").unwrap().to_relation();
        let db2 = db.with_relation(order_rel.renamed("order_rel"));
        let joined = join_on(
            &db2,
            &[
                JoinOn::new("customers", "cid", "order_rel", "cid"),
                JoinOn::new("order_rel", "pid", "products", "pid"),
            ],
        )
        .unwrap();
        assert_eq!(joined.len(), 3);
        let schema_joined = join(&db).unwrap();
        assert_eq!(schema_joined.len(), joined.len());
    }

    #[test]
    fn join_on_detects_disconnected_conditions() {
        let db = retail_db();
        let err = join_on(
            &db,
            &[JoinOn::new("products", "pid", "nonexistent", "x")],
        )
        .unwrap_err();
        assert!(err.to_string().contains("nonexistent"), "{err}");
    }

    #[test]
    fn join_without_relationships_errors() {
        let db = DatabaseF::new("empty").with_relation(RelationF::new("r", &["id"]));
        assert!(join(&db).is_err());
    }

    #[test]
    fn customers_cid_key_is_in_output() {
        let db = retail_db();
        let joined = join(&db).unwrap();
        for (_, t) in joined.tuples().unwrap() {
            let cid = t.get("customers.cid").unwrap();
            assert!(matches!(cid, Value::Int(_)));
            let pid = t.get("products.pid").unwrap();
            assert!(matches!(pid, Value::Int(_)));
        }
    }
}
