//! Shared fixtures: the paper's running retail example (Fig. 1) in FDM
//! form. Public so examples, integration tests, and benches can reuse it.

use fdm_core::{
    DatabaseF, Domain, Participant, RelationF, RelationshipF, SharedDomain, TupleF, Value,
    ValueType,
};

/// The customers relation of the running example: Alice, Bob, Carol.
pub fn customers_relation() -> RelationF {
    let mut rel = RelationF::new("customers", &["cid"]);
    for (cid, name, age) in [(1, "Alice", 43), (2, "Bob", 30), (3, "Carol", 55)] {
        rel = rel
            .insert(
                Value::Int(cid),
                TupleF::builder(format!("c{cid}"))
                    .attr("name", name)
                    .attr("age", age)
                    .build(),
            )
            .expect("unique cids");
    }
    rel
}

/// The products relation: three products, one of which (pid 12) is never
/// ordered.
pub fn products_relation() -> RelationF {
    let mut rel = RelationF::new("products", &["pid"]);
    for (pid, name, price) in [
        (10, "keyboard", 49.0),
        (11, "mouse", 19.0),
        (12, "webcam", 89.0),
    ] {
        rel = rel
            .insert(
                Value::Int(pid),
                TupleF::builder(format!("p{pid}"))
                    .attr("name", name)
                    .attr("price", price)
                    .build(),
            )
            .expect("unique pids");
    }
    rel
}

/// The Fig. 1 retail database: customers, products, and the `order(cid,
/// pid)` relationship function over shared domains, with orders
/// (1,10), (1,11), (2,10) — leaving Carol and the webcam unmatched.
pub fn retail_db() -> DatabaseF {
    let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
    let pid = SharedDomain::new("pid", Domain::Typed(ValueType::Int));
    let mut order = RelationshipF::new(
        "order",
        vec![
            Participant::new("customers", "cid", cid.clone()),
            Participant::new("products", "pid", pid.clone()),
        ],
    );
    for (c, p, date) in [
        (1, 10, "2026-01-05"),
        (1, 11, "2026-02-11"),
        (2, 10, "2026-03-02"),
    ] {
        order = order
            .insert(
                &[Value::Int(c), Value::Int(p)],
                TupleF::builder("o").attr("date", date).build(),
            )
            .expect("unique order keys");
    }
    DatabaseF::new("shop")
        .with_domain(cid)
        .with_domain(pid)
        .with_relation(customers_relation())
        .with_relation(products_relation())
        .with_relationship(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        let db = retail_db();
        assert_eq!(db.relation("customers").unwrap().len(), 3);
        assert_eq!(db.relation("products").unwrap().len(), 3);
        assert_eq!(db.relationship("order").unwrap().len(), 3);
        assert!(db.shared_domain("cid").is_some());
    }
}
