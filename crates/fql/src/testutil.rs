//! Shared fixtures: the paper's running retail example (Fig. 1) in FDM
//! form. Public so examples, integration tests, and benches can reuse it.

use fdm_core::{
    DatabaseF, Domain, Participant, RelationF, RelationshipF, SharedDomain, TupleF, Value,
    ValueType,
};

/// The customers relation of the running example: Alice, Bob, Carol.
pub fn customers_relation() -> RelationF {
    let mut rel = RelationF::new("customers", &["cid"]);
    for (cid, name, age) in [(1, "Alice", 43), (2, "Bob", 30), (3, "Carol", 55)] {
        rel = rel
            .insert(
                Value::Int(cid),
                TupleF::builder(format!("c{cid}"))
                    .attr("name", name)
                    .attr("age", age)
                    .build(),
            )
            .expect("unique cids");
    }
    rel
}

/// The products relation: three products, one of which (pid 12) is never
/// ordered.
pub fn products_relation() -> RelationF {
    let mut rel = RelationF::new("products", &["pid"]);
    for (pid, name, price) in [
        (10, "keyboard", 49.0),
        (11, "mouse", 19.0),
        (12, "webcam", 89.0),
    ] {
        rel = rel
            .insert(
                Value::Int(pid),
                TupleF::builder(format!("p{pid}"))
                    .attr("name", name)
                    .attr("price", price)
                    .build(),
            )
            .expect("unique pids");
    }
    rel
}

/// The Fig. 1 retail database: customers, products, and the `order(cid,
/// pid)` relationship function over shared domains, with orders
/// (1,10), (1,11), (2,10) — leaving Carol and the webcam unmatched.
pub fn retail_db() -> DatabaseF {
    let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
    let pid = SharedDomain::new("pid", Domain::Typed(ValueType::Int));
    let mut order = RelationshipF::new(
        "order",
        vec![
            Participant::new("customers", "cid", cid.clone()),
            Participant::new("products", "pid", pid.clone()),
        ],
    );
    for (c, p, date) in [
        (1, 10, "2026-01-05"),
        (1, 11, "2026-02-11"),
        (2, 10, "2026-03-02"),
    ] {
        order = order
            .insert(
                &[Value::Int(c), Value::Int(p)],
                TupleF::builder("o").attr("date", date).build(),
            )
            .expect("unique order keys");
    }
    DatabaseF::new("shop")
        .with_domain(cid)
        .with_domain(pid)
        .with_relation(customers_relation())
        .with_relation(products_relation())
        .with_relationship(order)
}

/// A database where the declared join order is the expensive one: `base`
/// rows fan out 4× into `wide.k` but exactly 1× into `narrow.k2` — the
/// fixture behind the join-reordering tests and
/// `docs/OPTIMIZER.md`'s worked example.
pub fn skewed_db() -> DatabaseF {
    let mut base = fdm_core::RelationBuilder::new("base", &["id"]);
    for i in 1..=6i64 {
        base.push(
            Value::Int(i),
            TupleF::builder("b").attr("wk", i).attr("nk", i).build(),
        );
    }
    let mut wide = fdm_core::RelationBuilder::new("wide", &["wid"]);
    let mut w = 0i64;
    for k in 1..=6i64 {
        for _ in 0..4 {
            w += 1;
            wide.push(
                Value::Int(w),
                TupleF::builder("w").attr("k", k).attr("wv", w).build(),
            );
        }
    }
    let mut narrow = fdm_core::RelationBuilder::new("narrow", &["nid"]);
    for k in 1..=6i64 {
        narrow.push(
            Value::Int(k),
            TupleF::builder("n")
                .attr("k2", k)
                .attr("nv", k * 10)
                .build(),
        );
    }
    DatabaseF::new("skewed")
        .with_relation(base.build().unwrap())
        .with_relation(wide.build().unwrap())
        .with_relation(narrow.build().unwrap())
}

/// A three-join fixture where only *whole-chain* reordering helps: `a`
/// fans out `fanout`× per base row, `b` depends on `a`'s output
/// (`a.av`), and `c` is independent with fan-out 1. Declared as
/// `a, b, c`, no adjacent swap improves the plan — `(a, b)` is pinned
/// dependent and `(b, c)` is a fan-out tie — but the greedy enumerator's
/// `c, a, b` runs the whole pipeline on `fanout`× smaller intermediates.
/// Used by the `GreedyJoinOrder` tests and the `fig13_rule_optimizer`
/// bench series.
pub fn chain_db(fanout: usize) -> DatabaseF {
    chain_db_scaled(6, fanout)
}

/// [`chain_db`] with a configurable base-row count (the bench series
/// scales it; tests use the small default).
pub fn chain_db_scaled(base_rows: usize, fanout: usize) -> DatabaseF {
    let mut base = fdm_core::RelationBuilder::new("base", &["id"]);
    for i in 1..=base_rows as i64 {
        base.push(
            Value::Int(i),
            TupleF::builder("b").attr("ak", i).attr("ck", i).build(),
        );
    }
    let mut a = fdm_core::RelationBuilder::new("a", &["aid"]);
    let mut av = 0i64;
    for k in 1..=base_rows as i64 {
        for _ in 0..fanout {
            av += 1;
            a.push(
                Value::Int(av),
                TupleF::builder("a").attr("k", k).attr("av", av).build(),
            );
        }
    }
    // b and c are *keyed* by their join attributes so their distinct
    // counts are schema-exact (no sketch noise): both are true fan-out-1
    // joins, making (b, c) an exact cost tie for the adjacent pass.
    let mut b = fdm_core::RelationBuilder::new("b", &["k2"]);
    for v in 1..=(base_rows * fanout) as i64 {
        b.push(
            Value::Int(v),
            TupleF::builder("bb").attr("bv", v * 2).build(),
        );
    }
    let mut c = fdm_core::RelationBuilder::new("c", &["k3"]);
    for k in 1..=base_rows as i64 {
        c.push(
            Value::Int(k),
            TupleF::builder("cc").attr("cv", k * 7).build(),
        );
    }
    DatabaseF::new("chain")
        .with_relation(base.build().unwrap())
        .with_relation(a.build().unwrap())
        .with_relation(b.build().unwrap())
        .with_relation(c.build().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        let db = retail_db();
        assert_eq!(db.relation("customers").unwrap().len(), 3);
        assert_eq!(db.relation("products").unwrap().len(), 3);
        assert_eq!(db.relationship("order").unwrap().len(), 3);
        assert!(db.shared_domain("cid").is_some());
    }
}
