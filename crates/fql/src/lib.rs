//! # fdm-fql — the Functional Query Language
//!
//! FQL is an algebra on FDM functions (paper Definitions 4–5): every
//! operator takes functions in and gives functions out, at any granularity
//! — tuples, relations, databases. Nothing is ever forced into a single
//! output table.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Fig. 4a — six filter costumes | [`filter`] |
//! | Fig. 4b/4c — grouping & aggregation | [`group`](mod@group), [`aggregate`](mod@aggregate) |
//! | Fig. 5 — subdatabase / ResultDB | [`subdb`] |
//! | Fig. 6 — n-ary join | [`join`](mod@join) |
//! | Fig. 7 — generalized outer join | [`subdb::outer`] |
//! | Fig. 8 — grouping sets as separate relations | [`aggregate::grouping_sets`] |
//! | Fig. 9 — set operations on databases | [`setops`] |
//! | Fig. 10 — inserts/updates/deletes | [`update`] |
//! | §4.2 — lazy plans, pushdown optimization | [`plan`] |
//! | §4.4 — views (dynamic & materialized) | [`view`] |
//!
//! ```
//! use fdm_fql::prelude::*;
//! use fdm_fql::testutil::retail_db;
//!
//! let db = retail_db();
//! // the paper's Fig. 4a: customers older than 42
//! let customers = db.relation("customers").unwrap();
//! let older = filter_expr(&customers, "age>$foo", Params::new().set("foo", 42)).unwrap();
//! assert_eq!(older.len(), 2);
//!
//! // the paper's Fig. 5: reduce to the participating subdatabase
//! let reduced = reduce_db(&db).unwrap();
//! assert_eq!(reduced.relation("customers").unwrap().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod filter;
pub mod group;
pub mod ivm;
pub mod join;
pub mod optimizer;
pub mod pivot;
pub mod plan;
pub mod setops;
pub mod subdb;
pub mod testutil;
pub mod transform;
pub mod update;
pub mod view;

pub use aggregate::{
    aggregate, aggregate_all, cube, group_and_aggregate, grouping_sets, rollup, AggSpec,
    GroupingSpec,
};
pub use filter::{
    filter_attr, filter_bound, filter_db, filter_expr, filter_fn, filter_kwargs, filter_tuple,
};
pub use group::{group, group_fn, Groups};
pub use ivm::{IvmStats, MaintainedView};
pub use join::{join, join_on, join_with, JoinOn};
pub use optimizer::{
    AdjacentJoinReorder, ConstantFoldingExpr, GreedyJoinOrder, JoinCostModel, OptimizationRule,
    OptimizeTrace, Optimizer, OptimizerConfig, PlanContext, PredicatePushdown, ProjectionPruning,
    ReorderStrategy, TraceEntry,
};
pub use pivot::pivot;
pub use plan::{Query, QueryStats};
pub use setops::{deep_copy, deep_copy_relation, difference, intersect, minus, union};
pub use subdb::{outer, reduce_db, subdatabase};
pub use transform::{
    antijoin, distinct, extend, extend_stored, limit, order_by, rename_attrs, semijoin,
    semijoin_keys, top_k, Order,
};
pub use update::{
    db_add, db_assign, db_delete, db_insert, db_modify_attr, db_rewrite, db_update_attr, db_upsert,
};
pub use view::{materialize_view, DynamicView};

/// Convenient glob-import surface: `use fdm_fql::prelude::*;`.
pub mod prelude {
    pub use crate::aggregate::{
        aggregate, aggregate_all, group_and_aggregate, grouping_sets, AggSpec, GroupingSpec,
    };
    pub use crate::filter::{
        filter_attr, filter_bound, filter_db, filter_expr, filter_fn, filter_kwargs,
    };
    pub use crate::group::{group, group_fn};
    pub use crate::ivm::{IvmStats, MaintainedView};
    pub use crate::join::{join, join_on, JoinOn};
    pub use crate::optimizer::{Optimizer, OptimizerConfig};
    pub use crate::pivot::pivot;
    pub use crate::plan::Query;
    pub use crate::setops::{deep_copy, deep_copy_relation, difference, intersect, minus, union};
    pub use crate::subdb::{outer, reduce_db, subdatabase};
    pub use crate::transform::{
        antijoin, extend, extend_stored, limit, order_by, rename_attrs, semijoin, top_k, Order,
    };
    pub use crate::update::{
        db_add, db_assign, db_delete, db_insert, db_modify_attr, db_rewrite, db_update_attr,
        db_upsert,
    };
    pub use crate::view::{materialize_view, DynamicView};
    pub use fdm_core::{DatabaseF, FnValue, RelationF, TupleF, Value};
    pub use fdm_expr::{Params, EQ, GE, GT, LE, LT, NE};
}
