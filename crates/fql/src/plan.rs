//! Lazy FQL expressions: logical plans and a small optimizer.
//!
//! Paper §4.2: "the entire FQL expression or any suitable part of it may
//! be pushed down to the database system which can then optimize the
//! expression". [`Query`] is that deferred expression: a tree of operators
//! that *looks* like eager host-language calls but is only executed on
//! [`Query::eval`] — and [`Query::optimize`] / [`Query::optimize_for`]
//! may rewrite it first. Since PR 8 both are thin wrappers over the
//! [`crate::optimizer`] rule engine: constant folding, filter fusion,
//! predicate pushdown, projection pruning, and — with database
//! statistics in hand — join reordering, each an independent
//! [`crate::optimizer::OptimizationRule`] run to fixpoint.
//!
//! The executor is deliberately simple (left-deep hash joins); the point
//! is the *optimization space*, which the `fig6` ablation bench and the
//! `bench_bulk` `fig6_plan_reorder` / `fig13_rule_optimizer` series
//! measure (optimized vs. declared order).
//!
//! # Canonical row ids
//!
//! What makes join reordering *legal* here is the canonical-row-id
//! scheme: a [`Query::Join`] keys each output row by its tuple's cached
//! `DataKey` fingerprint — `[hash, rank]`, where `rank` disambiguates
//! hash collisions by canonical data-key order — instead of by emission
//! order. Row identity is then a function of the row's **data**, not of
//! the order the executor happened to produce it in, so two join orders
//! that produce the same data produce the same keyed relation. The
//! pinned contract (`tests/tests/plan_reordering.rs`): an optimized plan
//! yields the **same keys** mapping to **data-identical tuples** as the
//! declared plan; only attribute declaration order (and therefore
//! nothing [`fdm_core::TupleF::eq_data`] can see) may reflect the
//! executed order. `FDM_PLAN_REORDER=off` pins the declared left-deep
//! order for A/B runs, exactly like `FDM_JOIN_COST=entries` does for the
//! schema-level join (both knobs now live in
//! [`crate::optimizer::OptimizerConfig`], with the environment as
//! fallback). See `docs/OPTIMIZER.md` for the full cost model.

use crate::aggregate::{group_and_aggregate, AggSpec};
use crate::filter::filter_bound;
use crate::optimizer::Optimizer;
use fdm_core::{DatabaseF, FdmError, RelationF, Result, TupleF, Value};
use fdm_expr::{Expr, Params};
use std::sync::Arc;

/// A lazy, optimizable FQL expression producing a relation function.
///
/// # Examples
///
/// ```
/// use fdm_fql::plan::Query;
/// use fdm_fql::testutil::retail_db;
/// use fdm_expr::Params;
///
/// let q = Query::scan("customers")
///     .filter("age > $min", Params::new().set("min", 42))
///     .project(&["name"]);
/// let out = q.optimize().eval(&retail_db()).unwrap();
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub enum Query {
    /// Scan a relation entry of the database.
    Scan {
        /// Entry name in the database function.
        rel: String,
    },
    /// Keep tuples satisfying a bound predicate expression.
    Filter {
        /// Input plan.
        input: Box<Query>,
        /// Bound (parameter-free) predicate.
        pred: Expr,
    },
    /// Keep only the named attributes.
    Project {
        /// Input plan.
        input: Box<Query>,
        /// Attributes to keep, in order.
        attrs: Vec<String>,
    },
    /// Left-deep equi-join: extend each input tuple with the matching
    /// tuples of `rel` (attributes prefixed `rel.`).
    ///
    /// Output rows are keyed **canonically**: `[fingerprint hash, rank]`
    /// derived from each row's cached `DataKey`, never from emission
    /// order — the invariant that lets the optimizer reorder adjacent
    /// joins without changing observable results (see the module docs).
    Join {
        /// Input plan (left side).
        input: Box<Query>,
        /// Relation to join in (right side; must be a database entry).
        rel: String,
        /// Attribute of the input's output tuples.
        input_attr: String,
        /// Attribute of `rel`'s tuples.
        rel_attr: String,
    },
    /// Group by attributes and aggregate.
    GroupAgg {
        /// Input plan.
        input: Box<Query>,
        /// Grouping attributes.
        by: Vec<String>,
        /// `(output name, aggregate)` pairs.
        aggs: Vec<(String, AggSpec)>,
    },
    /// Order by an attribute; output is keyed by rank.
    OrderBy {
        /// Input plan.
        input: Box<Query>,
        /// Sort attribute.
        attr: String,
        /// Direction.
        order: crate::transform::Order,
    },
    /// Keep the first k tuples (by key order; compose with [`Query::OrderBy`]
    /// for top-k).
    Limit {
        /// Input plan.
        input: Box<Query>,
        /// Number of tuples to keep.
        k: usize,
    },
    /// A plan-construction error captured for deferred reporting: built
    /// when a builder like [`Query::filter`] is handed an unparsable or
    /// unbindable predicate, and surfaced as that error by
    /// [`Query::eval`] / [`Query::estimated_rows`]. Lets builder chains
    /// compose without `?` mid-pipeline; use [`Query::try_filter`] for
    /// eager validation.
    Invalid {
        /// The deferred error's message.
        message: String,
    },
}

impl Query {
    /// Starts a plan scanning a relation.
    pub fn scan(rel: &str) -> Query {
        Query::Scan {
            rel: rel.to_string(),
        }
    }

    /// Adds a filter from a textual predicate with parameters. The
    /// predicate is parsed and bound now, but a parse/bind *error* is
    /// deferred: the chain keeps composing (every builder returns
    /// `Query`) and the error surfaces at [`Self::eval`], carried by a
    /// [`Query::Invalid`] node. Use [`Self::try_filter`] to validate
    /// eagerly instead.
    pub fn filter(self, src: &str, params: Params) -> Query {
        match Self::parse_bound(src, &params) {
            Ok(pred) => self.filter_expr(pred),
            Err(e) => Query::Invalid {
                message: e.to_string(),
            },
        }
    }

    /// [`Self::filter`] with **eager** validation: a predicate that fails
    /// to parse or bind errors here, at plan-construction time, exactly
    /// like the pre-PR 8 `filter` did.
    pub fn try_filter(self, src: &str, params: Params) -> Result<Query> {
        Ok(self.filter_expr(Self::parse_bound(src, &params).map_err(FdmError::from)?))
    }

    fn parse_bound(src: &str, params: &Params) -> std::result::Result<Expr, fdm_expr::ExprError> {
        params.bind(&fdm_expr::parse(src)?)
    }

    /// Adds a filter from an already-bound expression.
    pub fn filter_expr(self, pred: Expr) -> Query {
        Query::Filter {
            input: Box::new(self),
            pred,
        }
    }

    /// Adds a projection.
    pub fn project(self, attrs: &[&str]) -> Query {
        Query::Project {
            input: Box::new(self),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Adds a left-deep equi-join with a base relation.
    pub fn join(self, rel: &str, input_attr: &str, rel_attr: &str) -> Query {
        Query::Join {
            input: Box::new(self),
            rel: rel.to_string(),
            input_attr: input_attr.to_string(),
            rel_attr: rel_attr.to_string(),
        }
    }

    /// Adds grouping + aggregation.
    pub fn group_agg(self, by: &[&str], aggs: &[(&str, AggSpec)]) -> Query {
        Query::GroupAgg {
            input: Box::new(self),
            by: by.iter().map(|s| s.to_string()).collect(),
            aggs: aggs
                .iter()
                .map(|(n, a)| (n.to_string(), a.clone()))
                .collect(),
        }
    }

    /// Adds an order-by (rank-keyed output).
    pub fn order_by(self, attr: &str, order: crate::transform::Order) -> Query {
        Query::OrderBy {
            input: Box::new(self),
            attr: attr.to_string(),
            order,
        }
    }

    /// Adds a limit.
    pub fn limit(self, k: usize) -> Query {
        Query::Limit {
            input: Box::new(self),
            k,
        }
    }

    /// Rewrites the plan without database statistics: constant folding,
    /// filter fusion, predicate pushdown, and projection pruning to
    /// fixpoint ([`Optimizer::statistics_free`]). Join order is left
    /// exactly as declared — reordering needs cardinality estimates,
    /// which need a database; use [`Self::optimize_for`] when one is at
    /// hand.
    pub fn optimize(self) -> Query {
        Optimizer::statistics_free().optimize_without_stats(self)
    }

    /// The full optimizer: [`Self::optimize`]'s statistics-free rewrites
    /// plus **join reordering** against `db`'s statistics. Since PR 8
    /// this is a thin back-compat wrapper over
    /// [`Optimizer::default`] — the rule-engine fixpoint driver with the
    /// built-in rule set (pinned by `optimize_for_is_default_optimizer`
    /// in `tests/tests/optimizer_rules.rs`); build an
    /// [`Optimizer`] directly for custom rules, a pinned
    /// [`crate::optimizer::OptimizerConfig`], or the rewrite trace.
    ///
    /// The default reordering strategy is the greedy n-way enumerator
    /// ([`crate::optimizer::GreedyJoinOrder`]); `FDM_PLAN_REORDER=off`
    /// keeps the declared left-deep order and `=adjacent` selects the
    /// PR 5 bubble pass, unless a config pins the strategy explicitly.
    /// The equivalence tests drive all strategies and prove the produced
    /// relations are key- and data-identical.
    ///
    /// # Examples
    ///
    /// ```
    /// use fdm_fql::plan::Query;
    /// use fdm_fql::testutil::retail_db;
    ///
    /// let db = retail_db();
    /// let q = Query::scan("customers").project(&["name"]);
    /// // no joins to reorder: optimize_for degenerates to optimize
    /// assert_eq!(q.clone().optimize_for(&db).explain(), q.optimize().explain());
    /// ```
    pub fn optimize_for(self, db: &DatabaseF) -> Query {
        Optimizer::default().optimize(self, db)
    }

    /// Executes the plan against a database function.
    pub fn eval(&self, db: &DatabaseF) -> Result<RelationF> {
        self.eval_with_stats(db).map(|(r, _)| r)
    }

    /// Executes the plan, also reporting per-operator output cardinalities
    /// (innermost first) — the EXPLAIN ANALYZE of this engine.
    pub fn eval_with_stats(&self, db: &DatabaseF) -> Result<(RelationF, QueryStats)> {
        let mut stats = QueryStats::default();
        let rel = self.run(db, &mut stats)?;
        Ok((rel, stats))
    }

    fn run(&self, db: &DatabaseF, stats: &mut QueryStats) -> Result<RelationF> {
        let out = match self {
            // Scans inline the key as an attribute so downstream operators
            // can filter/project/join on it (`cid` etc.).
            Query::Scan { rel } => crate::filter::with_inlined_keys(db.relation(rel)?.as_ref())?,
            Query::Filter { input, pred } => {
                let rel = input.run(db, stats)?;
                filter_bound(&rel, pred)?
            }
            Query::Project { input, attrs } => {
                let rel = input.run(db, stats)?;
                let keep: Vec<&str> = attrs.iter().map(String::as_str).collect();
                let entries = rel.tuples()?;
                let cfg = fdm_core::ParConfig::from_env();
                if cfg.should_parallelize(entries.len()) {
                    // per-tuple projection is pure — chunk it across threads
                    let runs = fdm_core::par_map_chunks(
                        &entries,
                        cfg.threads,
                        |chunk| -> Result<Vec<_>> {
                            chunk
                                .iter()
                                .map(|(key, tuple)| {
                                    Ok((key.clone(), Arc::new(tuple.project(&keep)?)))
                                })
                                .collect()
                        },
                    );
                    let mut out = fdm_core::ParallelBuilder::for_relation(&rel);
                    for run in runs {
                        out.push_run(run?);
                    }
                    out.build()?
                } else {
                    let mut out = rel.builder_like();
                    for (key, tuple) in entries {
                        out.push(key, tuple.project(&keep)?);
                    }
                    out.build()?
                }
            }
            Query::Join {
                input,
                rel,
                input_attr,
                rel_attr,
            } => {
                let left = input.run(db, stats)?;
                let right = crate::filter::with_inlined_keys(db.relation(rel)?.as_ref())?;
                // hash-build the right side
                let mut table: fdm_core::FxHashMap<Value, Vec<Arc<TupleF>>> =
                    fdm_core::FxHashMap::default();
                for (_, t) in right.tuples()? {
                    table.entry(t.get(rel_attr)?).or_default().push(t);
                }
                // qualified right-side names interned once per attribute
                let mut qual = crate::join::Qualifier::new(rel);
                let mut rows: Vec<TupleF> = Vec::new();
                for (_, lt) in left.tuples()? {
                    let key = lt.get(input_attr)?;
                    if let Some(matches) = table.get(&key) {
                        for rt in matches {
                            let mut attrs = lt.materialize()?;
                            for (n, v) in rt.materialize()? {
                                attrs.push((qual.name(&n), v));
                            }
                            rows.push(TupleF::from_parts("j", attrs));
                        }
                    }
                }
                canonical_keyed(rows)?
            }
            Query::GroupAgg { input, by, aggs } => {
                let rel = input.run(db, stats)?;
                let by_refs: Vec<&str> = by.iter().map(String::as_str).collect();
                let agg_refs: Vec<(&str, AggSpec)> =
                    aggs.iter().map(|(n, a)| (n.as_str(), a.clone())).collect();
                group_and_aggregate(&rel, &by_refs, &agg_refs)?
            }
            Query::OrderBy { input, attr, order } => {
                let rel = input.run(db, stats)?;
                crate::transform::order_by(&rel, attr, *order)?
            }
            Query::Limit { input, k } => {
                let rel = input.run(db, stats)?;
                crate::transform::limit(&rel, *k)?
            }
            // a deferred plan-construction error surfaces here, as the
            // expression error `filter` would have reported eagerly
            Query::Invalid { message } => return Err(FdmError::Expr(message.clone())),
        };
        stats.produced.push((self.describe(), out.len()));
        Ok(out)
    }

    fn describe(&self) -> String {
        match self {
            Query::Scan { rel } => format!("scan({rel})"),
            Query::Filter { pred, .. } => format!("filter({pred})"),
            Query::Project { attrs, .. } => format!("project({})", attrs.join(", ")),
            Query::Join {
                rel,
                input_attr,
                rel_attr,
                ..
            } => {
                format!("join({rel} on {input_attr}={rel_attr})")
            }
            Query::GroupAgg { by, aggs, .. } => {
                format!("group_agg(by [{}], {} agg(s))", by.join(", "), aggs.len())
            }
            Query::OrderBy { attr, order, .. } => format!("order_by({attr}, {order:?})"),
            Query::Limit { k, .. } => format!("limit({k})"),
            Query::Invalid { message } => format!("invalid({message})"),
        }
    }

    /// Estimated output cardinality of this plan against `db`, from
    /// [`fdm_core::stats`] — O(plan size), never touching a tuple beyond
    /// the amortized once-per-relation-value sketch build:
    ///
    /// * `Scan` — the relation's stored cardinality;
    /// * `Filter` — input × [`fdm_core::stats::DEFAULT_FILTER_SELECTIVITY`];
    /// * `Project` / `OrderBy` — pass-through;
    /// * `Join` — input × right rows / distinct(right attr), with the
    ///   distinct count from [`fdm_core::estimate_distinct`]: exact for
    ///   key and uniquely constrained attributes, a
    ///   [`fdm_core::DistinctSketch`] estimate for every other stored
    ///   attribute — no magic fraction on this path anymore;
    /// * `GroupAgg` — one row per estimated distinct grouping key: when
    ///   the input chain bottoms out in a `Scan` (through
    ///   filters/projections/sorts/limits), the product of the base
    ///   relation's per-attribute distinct estimates, capped at the input
    ///   estimate. Only when the input is itself a join or aggregation —
    ///   an intermediate no maintained statistic describes — does the
    ///   documented [`fdm_core::stats::DEFAULT_DISTINCT_FRACTION`]
    ///   fallback apply;
    /// * `Limit` — min(k, input).
    ///
    /// Estimates steer cost comparisons ([`Self::explain_with_cost`],
    /// [`Self::optimize_for`]'s join reordering); they never change what
    /// a plan produces.
    pub fn estimated_rows(&self, db: &DatabaseF) -> Result<f64> {
        use fdm_core::stats::{DEFAULT_DISTINCT_FRACTION, DEFAULT_FILTER_SELECTIVITY};
        Ok(match self {
            Query::Scan { rel } => {
                fdm_core::RelationStats::of(db.relation(rel)?.as_ref()).rows as f64
            }
            Query::Filter { input, .. } => input.estimated_rows(db)? * DEFAULT_FILTER_SELECTIVITY,
            Query::Project { input, .. } | Query::OrderBy { input, .. } => {
                input.estimated_rows(db)?
            }
            Query::Join {
                input,
                rel,
                rel_attr,
                ..
            } => {
                let left = input.estimated_rows(db)?;
                let right = db.relation(rel)?;
                let rows = fdm_core::RelationStats::of(&right).rows;
                let distinct = fdm_core::estimate_distinct(&right, rel_attr).max(1);
                left * rows as f64 / distinct as f64
            }
            Query::GroupAgg { input, by, .. } => {
                let rows = input.estimated_rows(db)?;
                if rows <= 1.0 {
                    rows
                } else if let Some(base) = input.base_scan() {
                    // distinct keys of the base relation bound the group
                    // count: independence-assumption product of the
                    // per-attribute estimates, capped at the input rows
                    let rel = db.relation(base)?;
                    let mut groups = 1.0f64;
                    for attr in by {
                        groups *= fdm_core::estimate_distinct(&rel, attr).max(1) as f64;
                    }
                    groups.min(rows).max(1.0)
                } else {
                    // the input is an intermediate (join/aggregation
                    // output) no maintained statistic describes — the one
                    // place the System-R magic fraction still stands in
                    (rows / DEFAULT_DISTINCT_FRACTION as f64).max(1.0)
                }
            }
            Query::Limit { input, k } => input.estimated_rows(db)?.min(*k as f64),
            Query::Invalid { message } => return Err(FdmError::Expr(message.clone())),
        })
    }

    /// The base relation this plan scans, if the chain down to the leaf
    /// preserves rows' attribute values (filters, projections, sorts,
    /// limits — not joins or aggregations, whose outputs are new shapes).
    /// Lets `GroupAgg` estimates consult the base relation's sketches.
    fn base_scan(&self) -> Option<&str> {
        match self {
            Query::Scan { rel } => Some(rel),
            Query::Filter { input, .. }
            | Query::Project { input, .. }
            | Query::OrderBy { input, .. }
            | Query::Limit { input, .. } => input.base_scan(),
            Query::Join { .. } | Query::GroupAgg { .. } | Query::Invalid { .. } => None,
        }
    }

    /// [`Self::explain`] with the estimated cardinality annotated per
    /// operator (`~N rows`) — the cost-model view of the plan, next to
    /// [`Self::eval_with_stats`]'s measured one.
    pub fn explain_with_cost(&self, db: &DatabaseF) -> Result<String> {
        fn go(q: &Query, db: &DatabaseF, depth: usize, out: &mut String) -> Result<()> {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&q.describe());
            out.push_str(&format!("  ~{:.0} rows\n", q.estimated_rows(db)?));
            match q {
                Query::Scan { .. } | Query::Invalid { .. } => {}
                Query::Filter { input, .. }
                | Query::Project { input, .. }
                | Query::Join { input, .. }
                | Query::GroupAgg { input, .. }
                | Query::OrderBy { input, .. }
                | Query::Limit { input, .. } => go(input, db, depth + 1, out)?,
            }
            Ok(())
        }
        let mut s = String::new();
        go(self, db, 0, &mut s)?;
        Ok(s)
    }

    /// Pretty-prints the plan tree, one operator per line, leaves deepest.
    pub fn explain(&self) -> String {
        fn go(q: &Query, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&q.describe());
            out.push('\n');
            match q {
                Query::Scan { .. } | Query::Invalid { .. } => {}
                Query::Filter { input, .. }
                | Query::Project { input, .. }
                | Query::Join { input, .. }
                | Query::GroupAgg { input, .. }
                | Query::OrderBy { input, .. }
                | Query::Limit { input, .. } => go(input, depth + 1, out),
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

/// Keys join output rows by their **canonical row id** and bulk-builds
/// the result relation.
///
/// The id of a row is `[hash, rank]`: the 64-bit hash of the tuple's
/// cached `DataKey` fingerprint, plus a rank that disambiguates rows
/// whose hashes collide — assigned by canonical data-key order within
/// the collision group, so it too is independent of emission order (rows
/// with *identical* data are interchangeable by definition; rows with
/// merely colliding hashes order by their full canonical keys). Ids are
/// therefore a pure function of the produced row **data**: every join
/// order that yields the same rows yields the same keyed relation, which
/// is the contract `Query::optimize_for`'s reordering relies on.
fn canonical_keyed(rows: Vec<TupleF>) -> Result<RelationF> {
    // group row indices by fingerprint hash (computing — and caching on
    // the tuple — each fingerprint exactly once)
    let mut groups: fdm_core::FxHashMap<u64, Vec<usize>> = fdm_core::FxHashMap::default();
    groups.reserve(rows.len());
    for (i, t) in rows.iter().enumerate() {
        groups.entry(t.fingerprint()?.hash()).or_default().push(i);
    }
    let mut ranks: Vec<i64> = vec![0; rows.len()];
    for bucket in groups.values_mut() {
        if bucket.len() > 1 {
            bucket.sort_by(|&a, &b| {
                let ka = rows[a].fingerprint().expect("cached above").value();
                let kb = rows[b].fingerprint().expect("cached above").value();
                ka.cmp(kb)
            });
            for (rank, &i) in bucket.iter().enumerate() {
                ranks[i] = rank as i64;
            }
        }
    }
    // sort by the native (hash, rank) pair — the same order the
    // `[Int, Int]` list keys compare in — so the builder sees strictly
    // ascending keys and takes its presorted O(n) bulk path instead of
    // re-sorting n Value::List keys with the generic comparator
    let mut keyed: Vec<(i64, i64, TupleF)> = Vec::with_capacity(rows.len());
    for (i, t) in rows.into_iter().enumerate() {
        let hash = t.fingerprint()?.hash() as i64;
        keyed.push((hash, ranks[i], t));
    }
    keyed.sort_unstable_by_key(|(hash, rank, _)| (*hash, *rank));
    let mut out = fdm_core::RelationBuilder::new("join", &["row"]).with_capacity(keyed.len());
    for (hash, rank, t) in keyed {
        out.push(Value::list([Value::Int(hash), Value::Int(rank)]), t);
    }
    out.build()
}

/// Per-operator output cardinalities from [`Query::eval_with_stats`],
/// innermost operator first.
#[derive(Debug, Default, Clone)]
pub struct QueryStats {
    /// `(operator description, rows produced)` in execution order.
    pub produced: Vec<(String, usize)>,
}

impl QueryStats {
    /// Total intermediate rows produced across all operators — the
    /// quantity predicate pushdown minimizes.
    pub fn total_intermediate(&self) -> usize {
        self.produced.iter().map(|(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{retail_db, skewed_db};

    fn order_rel_db() -> DatabaseF {
        // retail db with the order relationship flattened to a relation so
        // the left-deep Join node can use it
        let db = retail_db();
        let order_rel = db
            .relationship("order")
            .unwrap()
            .to_relation()
            .renamed("orders");
        db.with_relation(order_rel)
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let q = Query::scan("customers")
            .filter("age > $min", Params::new().set("min", 40))
            .project(&["name"]);
        let out = q.eval(&retail_db()).unwrap();
        assert_eq!(out.len(), 2);
        let (_, t) = out.tuples().unwrap().remove(0);
        assert_eq!(t.attr_count(), 1);
    }

    #[test]
    fn join_node_qualifies_right_side() {
        let q = Query::scan("orders").join("customers", "cid", "cid");
        let out = q.eval(&order_rel_db()).unwrap();
        assert_eq!(out.len(), 3);
        let (_, t) = out.tuples().unwrap().remove(0);
        assert!(t.has_attr("customers.name"));
        assert!(t.has_attr("date"), "left side unprefixed");
    }

    #[test]
    fn optimize_fuses_filters() {
        let q = Query::scan("customers")
            .filter("age > 30", Params::new())
            .filter("age < 50", Params::new());
        let opt = q.clone().optimize();
        let plan = opt.explain();
        assert_eq!(plan.matches("filter").count(), 1, "fused: {plan}");
        assert_eq!(
            q.eval(&retail_db()).unwrap().len(),
            opt.eval(&retail_db()).unwrap().len()
        );
    }

    #[test]
    fn optimize_pushes_filter_below_join() {
        let q = Query::scan("orders")
            .join("customers", "cid", "cid")
            .filter("date == '2026-01-05'", Params::new());
        let opt = q.clone().optimize();
        let plan = opt.explain();
        // filter mentions only the left side ("date") → below the join
        let filter_line = plan.lines().position(|l| l.contains("filter")).unwrap();
        let join_line = plan.lines().position(|l| l.contains("join")).unwrap();
        assert!(filter_line > join_line, "filter pushed below join:\n{plan}");

        let db = order_rel_db();
        let (r1, s1) = q.eval_with_stats(&db).unwrap();
        let (r2, s2) = opt.eval_with_stats(&db).unwrap();
        assert_eq!(r1.len(), r2.len(), "same result");
        assert!(
            s2.total_intermediate() < s1.total_intermediate(),
            "pushdown reduces intermediates: {} vs {}",
            s2.total_intermediate(),
            s1.total_intermediate()
        );
    }

    #[test]
    fn filter_on_joined_attrs_stays_above_expr() {
        use fdm_expr::{BinOp, Expr};
        let pred = Expr::bin(
            BinOp::Gt,
            Expr::Attr(Arc::from("customers.age")),
            Expr::lit(40),
        );
        let q = Query::scan("orders")
            .join("customers", "cid", "cid")
            .filter_expr(pred);
        let opt = q.clone().optimize();
        let plan = opt.explain();
        let filter_line = plan.lines().position(|l| l.contains("filter")).unwrap();
        let join_line = plan.lines().position(|l| l.contains("join")).unwrap();
        assert!(filter_line < join_line, "filter must stay above:\n{plan}");
        let out = opt.eval(&order_rel_db()).unwrap();
        assert_eq!(out.len(), 2, "only Alice's orders");
    }

    #[test]
    fn optimize_pushes_filter_below_project() {
        let q = Query::scan("customers")
            .project(&["name", "age"])
            .filter("age > 40", Params::new());
        let opt = q.clone().optimize();
        let plan = opt.explain();
        let filter_line = plan.lines().position(|l| l.contains("filter")).unwrap();
        let project_line = plan.lines().position(|l| l.contains("project")).unwrap();
        assert!(filter_line > project_line, "{plan}");
        assert_eq!(opt.eval(&retail_db()).unwrap().len(), 2);
    }

    #[test]
    fn group_agg_node() {
        let q = Query::scan("orders")
            .join("products", "pid", "pid")
            .group_agg(&["cid"], &[("n", AggSpec::Count)]);
        let out = q.eval(&order_rel_db()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out.lookup(&Value::Int(1)).unwrap().get("n").unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn order_by_and_limit_nodes() {
        use crate::transform::Order;
        let q = Query::scan("customers")
            .order_by("age", Order::Desc)
            .limit(2);
        let out = q.eval(&retail_db()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out.lookup(&Value::Int(0)).unwrap().get("age").unwrap(),
            Value::Int(55)
        );
        assert_eq!(
            out.lookup(&Value::Int(1)).unwrap().get("age").unwrap(),
            Value::Int(43)
        );
    }

    #[test]
    fn filter_stays_above_order_by() {
        // Pushing a filter below a sort would change the observable rank
        // keys (gapped vs contiguous) — the optimizer must not do it.
        use crate::transform::Order;
        let q = Query::scan("customers")
            .order_by("age", Order::Asc)
            .filter("age > 30", Params::new());
        let opt = q.clone().optimize();
        let plan = opt.explain();
        let filter_line = plan.lines().position(|l| l.contains("filter")).unwrap();
        let sort_line = plan.lines().position(|l| l.contains("order_by")).unwrap();
        assert!(filter_line < sort_line, "filter must stay above:\n{plan}");
        // optimized and declared plans produce IDENTICAL keyed results:
        // ages 30, 43, 55 rank as 0, 1, 2; the filter keeps ranks 1 and 2.
        let a = q.eval(&retail_db()).unwrap();
        let b = opt.eval(&retail_db()).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.stored_keys(), b.stored_keys());
        assert_eq!(a.stored_keys(), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn cost_estimates_from_stats() {
        let db = order_rel_db();
        // scan estimate is the exact cardinality
        let scan = Query::scan("customers");
        assert_eq!(scan.estimated_rows(&db).unwrap(), 3.0);
        // joining through a key attribute has fan-out 1: estimate equals
        // the left side
        let join = Query::scan("orders").join("customers", "cid", "cid");
        assert_eq!(join.estimated_rows(&db).unwrap(), 3.0);
        // a filter shrinks the estimate; pushdown therefore estimates
        // cheaper intermediate work than the declared order measures
        let q = join.clone().filter("date == '2026-01-05'", Params::new());
        let opt = q.clone().optimize();
        let declared_join_est = join.estimated_rows(&db).unwrap();
        // in the optimized plan the join sits above the filter
        let Query::Join { input, .. } = &opt else {
            panic!("optimized plan should be a join on top: {}", opt.explain());
        };
        assert!(
            input.estimated_rows(&db).unwrap() < declared_join_est,
            "filter below the join shrinks its input estimate"
        );
        // estimation never changes results
        assert_eq!(q.eval(&db).unwrap().len(), opt.eval(&db).unwrap().len());
        let annotated = opt.explain_with_cost(&db).unwrap();
        assert!(annotated.contains("~"), "{annotated}");
        assert!(annotated.contains("rows"), "{annotated}");
    }

    #[test]
    fn optimize_for_reorders_joins_without_changing_results() {
        let db = skewed_db();
        // declared: the fan-out-4 join first — the expensive order
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2");
        let opt = q.clone().optimize_for(&db);
        let plan = opt.explain();
        let wide_line = plan.lines().position(|l| l.contains("wide")).unwrap();
        let narrow_line = plan.lines().position(|l| l.contains("narrow")).unwrap();
        // deeper line = executed earlier; narrow must now run first
        assert!(narrow_line > wide_line, "narrow joined first:\n{plan}");

        // ...and the keyed results are identical: same canonical row ids
        // mapping to data-identical tuples
        let declared = q.eval(&db).unwrap();
        let reordered = opt.eval(&db).unwrap();
        assert_eq!(declared.len(), 24, "6 base rows × 4 wide × 1 narrow");
        assert_eq!(declared.stored_keys(), reordered.stored_keys());
        for (key, t) in declared.tuples().unwrap() {
            assert!(
                t.eq_data(&reordered.lookup(&key).unwrap()),
                "row {key} diverges"
            );
        }
    }

    #[test]
    fn reorder_pins_dependent_and_self_joins() {
        let db = skewed_db();
        // the upper join keys off the lower join's output ("wide.wv"):
        // swapping would orphan the attribute — pinned
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "wide.wv", "k2");
        let opt = q.clone().optimize_for(&db);
        assert_eq!(opt.explain(), q.explain(), "dependent joins keep order");
        // two joins against the same relation are pinned too (duplicate
        // qualified names would tie data keys to executed order)
        let q = Query::scan("base")
            .join("wide", "wk", "k")
            .join("wide", "nk", "k");
        let opt = q.clone().optimize_for(&db);
        assert_eq!(opt.explain(), q.explain(), "self-join pair keeps order");
    }

    #[test]
    fn join_row_ids_are_canonical() {
        let db = order_rel_db();
        let q = Query::scan("orders").join("customers", "cid", "cid");
        let out = q.eval(&db).unwrap();
        // ids are [hash, rank] lists derived from row data, so re-running
        // the identical plan reproduces them exactly
        let again = q.eval(&db).unwrap();
        assert_eq!(out.stored_keys(), again.stored_keys());
        for key in out.stored_keys() {
            assert!(matches!(key, Value::List(ref items) if items.len() == 2));
        }
        // each id's hash component is the tuple's own fingerprint hash
        for (key, t) in out.tuples().unwrap() {
            let Value::List(items) = key else {
                panic!("list id")
            };
            let Value::Int(h) = items[0] else {
                panic!("hash id")
            };
            assert_eq!(h, t.fingerprint().unwrap().hash() as i64);
        }
    }

    #[test]
    fn explain_shows_tree() {
        let q = Query::scan("customers").filter("age > 1", Params::new());
        let s = q.explain();
        assert!(s.contains("filter"));
        assert!(s.contains("scan(customers)"));
    }

    #[test]
    fn bad_filter_defers_its_error_to_eval() {
        // the chain composes without `?`...
        let q = Query::scan("customers")
            .filter("age >", Params::new())
            .project(&["name"])
            .limit(1);
        assert!(q.explain().contains("invalid("), "{}", q.explain());
        // ...and eval reports the parse error the old eager filter threw
        let err = q.eval(&retail_db()).unwrap_err();
        assert!(matches!(err, FdmError::Expr(_)), "{err}");
        assert!(q.estimated_rows(&retail_db()).is_err());
        // the optimizer passes the poisoned plan through untouched
        let opt = Query::scan("customers")
            .filter("age >", Params::new())
            .optimize_for(&retail_db());
        assert!(opt.eval(&retail_db()).is_err());
        // try_filter keeps the eager behavior
        assert!(Query::scan("customers")
            .try_filter("age >", Params::new())
            .is_err());
        assert!(Query::scan("customers")
            .try_filter("age > 1", Params::new())
            .is_ok());
        // an unbound parameter is a bind error, deferred the same way
        let q = Query::scan("customers").filter("age > $min", Params::new());
        assert!(q.eval(&retail_db()).is_err());
    }
}
