//! Fig. 1 — compiling the same ER schema to FDM vs to the relational
//! model, and running the same point query against both compilations.

use criterion::{criterion_group, criterion_main, Criterion};
use fdm_bench::{both, standard_config};
use fdm_core::Value;
use fdm_relational::{col_eq, select, Cell};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_erm_compile");
    g.sample_size(30);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    let schema = fdm_erm::retail_schema();
    g.bench_function("compile_to_fdm", |b| {
        b.iter(|| black_box(fdm_erm::compile_to_fdm(black_box(&schema))))
    });
    g.bench_function("compile_to_relational", |b| {
        b.iter(|| black_box(fdm_erm::compile_to_relational(black_box(&schema))))
    });

    // the same point query on both compiled-and-loaded targets
    let e = both(&standard_config(5_000));
    let customers_fdm = e.fdm.relation("customers").unwrap();
    g.bench_function("point_lookup_fdm", |b| {
        b.iter(|| black_box(customers_fdm.lookup(black_box(&Value::Int(500)))))
    });
    g.bench_function("point_lookup_relational_scan", |b| {
        b.iter(|| black_box(select(&e.rel.customers, col_eq("cid", Cell::Int(500)))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
