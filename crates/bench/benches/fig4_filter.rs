//! Fig. 4a — the six filter costumes vs the relational baseline: same
//! query, costume overhead measured. Expectation (recorded in
//! EXPERIMENTS.md): all FDM costumes within a small constant factor of
//! each other; the parsed textual costume pays parse+bind once per query,
//! which amortizes away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_bench::{both, standard_config};
use fdm_core::Value;
use fdm_expr::{parse, Params, GT};
use fdm_fql::prelude::*;
use fdm_relational::{select, Cell};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_filter");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for orders in fdm_bench::SCALES {
        let e = both(&standard_config(orders));
        let customers = e.fdm.relation("customers").unwrap();
        let n = customers.len();

        g.bench_with_input(BenchmarkId::new("costume1_closure", n), &n, |b, _| {
            b.iter(|| {
                black_box(filter_fn(&customers, |t| Ok(t.get("age")?.as_int("age")? > 42)).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("costume3_kwargs", n), &n, |b, _| {
            b.iter(|| black_box(filter_kwargs(&customers, &[("age__gt", Value::Int(42))]).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("costume4_attr_op", n), &n, |b, _| {
            b.iter(|| black_box(filter_attr(&customers, "age", GT, 42).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("costume5_textual", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    filter_expr(&customers, "age>$foo", Params::new().set("foo", 42)).unwrap(),
                )
            })
        });
        let bound = Params::new()
            .set("foo", 42)
            .bind(&parse("age>$foo").unwrap())
            .unwrap();
        g.bench_with_input(BenchmarkId::new("costume6_prebound", n), &n, |b, _| {
            b.iter(|| black_box(filter_bound(&customers, &bound).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("relational_select", n), &n, |b, _| {
            b.iter(|| {
                black_box(select(&e.rel.customers, |s, r| {
                    let i = s.index_of("age")?;
                    r[i].sql_cmp(&Cell::Int(42))
                        .map(|o| o == std::cmp::Ordering::Greater)
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
