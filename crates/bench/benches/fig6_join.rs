//! Fig. 6 — the n-ary schema-driven FDM join vs the relational chain of
//! binary hash joins, plus the plan-optimizer ablation (declared order vs
//! pushdown).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_bench::{both, standard_config};
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_fql::Query;
use fdm_relational::hash_join;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_join");
    g.sample_size(15);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for orders in fdm_bench::SCALES {
        let e = both(&standard_config(orders));
        let n = e.data.orders.len();
        g.bench_with_input(BenchmarkId::new("fdm_schema_join", n), &n, |b, _| {
            b.iter(|| black_box(join(&e.fdm).unwrap()))
        });
        // explicit-conditions costume
        let order_rel = e
            .fdm
            .relationship("order")
            .unwrap()
            .to_relation()
            .renamed("orders_rel");
        let db2 = e.fdm.with_relation(order_rel);
        g.bench_with_input(BenchmarkId::new("fdm_join_on", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    join_on(
                        &db2,
                        &[
                            JoinOn::new("customers", "cid", "orders_rel", "cid"),
                            JoinOn::new("orders_rel", "pid", "products", "pid"),
                        ],
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_with_input(
            BenchmarkId::new("relational_binary_joins", n),
            &n,
            |b, _| {
                b.iter(|| {
                    black_box(hash_join(
                        &hash_join(&e.rel.orders, &e.rel.customers, "cid", "cid"),
                        &e.rel.products,
                        "pid",
                        "pid",
                    ))
                })
            },
        );

        // ablation: pushdown vs declared order on a selective filter
        let q = Query::scan("orders_rel")
            .join("customers", "cid", "cid")
            .filter("date > $d", Params::new().set("d", "2026-11"));
        let declared = q.clone();
        let optimized = q.optimize();
        g.bench_with_input(BenchmarkId::new("plan_declared_order", n), &n, |b, _| {
            b.iter(|| black_box(declared.eval(&db2).unwrap()))
        });
        g.bench_with_input(
            BenchmarkId::new("plan_optimized_pushdown", n),
            &n,
            |b, _| b.iter(|| black_box(optimized.eval(&db2).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
