//! Fig. 9 — set operations on whole databases vs the per-relation loop
//! an application writes against the relational engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_bench::{both, standard_config};
use fdm_core::{TupleF, Value};
use fdm_fql::prelude::*;
use fdm_relational::{except, union as rel_union};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_db_setops");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for orders in fdm_bench::SCALES {
        let e = both(&standard_config(orders));
        let n = e.fdm.total_tuples();

        // a changed copy: 50 extra customers
        let mut changed = deep_copy(&e.fdm).unwrap();
        for i in 0..50i64 {
            changed = db_upsert(
                &changed,
                "customers",
                Value::Int(1_000_000 + i),
                TupleF::builder("c")
                    .attr("name", format!("new{i}"))
                    .attr("age", 20 + i)
                    .attr("state", "NV")
                    .build(),
            )
            .unwrap();
        }
        let mut rel_changed = e.rel.clone();
        for i in 0..50i64 {
            rel_changed.customers.push(vec![
                fdm_relational::Cell::Int(1_000_000 + i),
                fdm_relational::Cell::str(format!("new{i}")),
                fdm_relational::Cell::Int(20 + i),
                fdm_relational::Cell::str("NV"),
            ]);
        }

        g.bench_with_input(BenchmarkId::new("fdm_deep_copy", n), &n, |b, _| {
            b.iter(|| black_box(deep_copy(&e.fdm).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("fdm_difference_db", n), &n, |b, _| {
            b.iter(|| black_box(difference(&e.fdm, &changed).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("fdm_union_db", n), &n, |b, _| {
            b.iter(|| black_box(union(&e.fdm, &changed).unwrap()))
        });
        g.bench_with_input(
            BenchmarkId::new("relational_per_relation_loop", n),
            &n,
            |b, _| {
                b.iter(|| {
                    // what the application must write by hand: one set op
                    // per table, in both directions, plus the union
                    let added_c = except(&rel_changed.customers, &e.rel.customers);
                    let removed_c = except(&e.rel.customers, &rel_changed.customers);
                    let added_p = except(&rel_changed.products, &e.rel.products);
                    let removed_p = except(&e.rel.products, &rel_changed.products);
                    let added_o = except(&rel_changed.orders, &e.rel.orders);
                    let removed_o = except(&e.rel.orders, &rel_changed.orders);
                    let u = rel_union(&e.rel.customers, &rel_changed.customers);
                    black_box((
                        added_c, removed_c, added_p, removed_p, added_o, removed_o, u,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
