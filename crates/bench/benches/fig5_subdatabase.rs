//! Fig. 5 — subdatabase (reduce_DB) vs the denormalized join, swept over
//! N:M fan-out. The paper's claim: the subdatabase result avoids the
//! multiplicative blow-up of the single-table join; expect the reduce
//! path to win increasingly with fan-out (crossover recorded in
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_bench::{both, fanout_config};
use fdm_fql::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_subdatabase");
    g.sample_size(15);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for fanout in [1usize, 4, 16] {
        let e = both(&fanout_config(500, fanout));
        g.bench_with_input(
            BenchmarkId::new("denormalized_join", fanout),
            &fanout,
            |b, _| b.iter(|| black_box(join(&e.fdm).unwrap())),
        );
        g.bench_with_input(BenchmarkId::new("reduce_db", fanout), &fanout, |b, _| {
            b.iter(|| black_box(reduce_db(&e.fdm).unwrap()))
        });
        g.bench_with_input(
            BenchmarkId::new("subdatabase_then_reduce", fanout),
            &fanout,
            |b, _| {
                b.iter(|| {
                    let sub = subdatabase(&e.fdm, &["customers", "products", "order"]);
                    black_box(reduce_db(&sub).unwrap())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
