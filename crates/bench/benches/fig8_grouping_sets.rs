//! Fig. 8 — grouping sets: FDM's separate relation functions vs SQL's
//! single NULL-filled output (plus rollup and cube variants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_bench::{both, standard_config};
use fdm_fql::prelude::*;
use fdm_fql::{cube as fdm_cube, rollup as fdm_rollup};
use fdm_relational::{
    cube as rel_cube, grouping_sets as rel_gsets, rollup as rel_rollup, Agg, GroupingSet,
};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_grouping_sets");
    g.sample_size(15);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for orders in fdm_bench::SCALES {
        let e = both(&standard_config(orders));
        let customers = e.fdm.relation("customers").unwrap();
        let n = customers.len();

        g.bench_with_input(BenchmarkId::new("fdm_grouping_sets", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    grouping_sets(
                        &customers,
                        &[
                            GroupingSpec::new("age_cc", &["age"], &[("count", AggSpec::Count)]),
                            GroupingSpec::new(
                                "state_age_cc",
                                &["state", "age"],
                                &[("count", AggSpec::Count)],
                            ),
                            GroupingSpec::new(
                                "global_min",
                                &[],
                                &[("min", AggSpec::Min("age".into()))],
                            ),
                        ],
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("sql_grouping_sets", n), &n, |b, _| {
            b.iter(|| {
                black_box(rel_gsets(
                    &e.rel.customers,
                    &[
                        GroupingSet {
                            by: vec!["age".into()],
                            aggs: vec![Agg::CountStar],
                        },
                        GroupingSet {
                            by: vec!["state".into(), "age".into()],
                            aggs: vec![Agg::CountStar],
                        },
                        GroupingSet {
                            by: vec![],
                            aggs: vec![Agg::Min("age".into())],
                        },
                    ],
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("fdm_rollup", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    fdm_rollup(&customers, &["state", "age"], &[("c", AggSpec::Count)]).unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("sql_rollup", n), &n, |b, _| {
            b.iter(|| {
                black_box(rel_rollup(
                    &e.rel.customers,
                    &["state", "age"],
                    &[Agg::CountStar],
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("fdm_cube", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    fdm_cube(&customers, &["state", "age"], &[("c", AggSpec::Count)]).unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("sql_cube", n), &n, |b, _| {
            b.iter(|| {
                black_box(rel_cube(
                    &e.rel.customers,
                    &["state", "age"],
                    &[Agg::CountStar],
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
