//! Fig. 4b/c — unrolled (group; aggregate; filter) vs fused
//! (group_and_aggregate) vs the relational GROUP BY.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_bench::{both, standard_config};
use fdm_expr::GT;
use fdm_fql::prelude::*;
use fdm_fql::{aggregate, group};
use fdm_relational::{group_by, Agg};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_groupby");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for orders in fdm_bench::SCALES {
        let e = both(&standard_config(orders));
        let customers = e.fdm.relation("customers").unwrap();
        let n = customers.len();

        g.bench_with_input(BenchmarkId::new("fdm_unrolled", n), &n, |b, _| {
            b.iter(|| {
                let groups = group(&customers, &["age"]).unwrap();
                let aggs = aggregate(&groups, &[("count", AggSpec::Count)]).unwrap();
                black_box(filter_attr(&aggs, "count", GT, 9).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("fdm_fused", n), &n, |b, _| {
            b.iter(|| {
                let aggs = group_and_aggregate(&customers, &["age"], &[("count", AggSpec::Count)])
                    .unwrap();
                black_box(filter_attr(&aggs, "count", GT, 9).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("fdm_groups_as_database", n), &n, |b, _| {
            b.iter(|| {
                // the paper's DB-of-relation-functions costume
                let groups = group(&customers, &["age"]).unwrap();
                black_box(groups.to_database())
            })
        });
        g.bench_with_input(BenchmarkId::new("relational_group_by", n), &n, |b, _| {
            b.iter(|| black_box(group_by(&e.rel.customers, &["age"], &[Agg::CountStar])))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
