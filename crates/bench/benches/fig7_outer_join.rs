//! Fig. 7 — generalized outer join: FDM inner/outer split vs relational
//! LEFT OUTER JOIN followed by the NULL post-scan an application needs to
//! separate the two semantics again.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_bench::{both, fanout_config};
use fdm_fql::prelude::*;
use fdm_relational::{outer_join, OuterSide};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_outer_join");
    g.sample_size(15);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for fanout in [1usize, 4, 16] {
        let e = both(&fanout_config(500, fanout));
        g.bench_with_input(
            BenchmarkId::new("fdm_outer_split", fanout),
            &fanout,
            |b, _| b.iter(|| black_box(outer(&e.fdm, &["customers", "products"]).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("relational_outer_plus_scan", fanout),
            &fanout,
            |b, _| {
                b.iter(|| {
                    let joined = outer_join(
                        &e.rel.customers,
                        &e.rel.orders,
                        "cid",
                        "cid",
                        OuterSide::Left,
                    );
                    // the post-scan to recover the two streams
                    let date_col = joined.schema().index_of("date").unwrap();
                    let mut matched = 0usize;
                    let mut unmatched = 0usize;
                    for row in joined.rows() {
                        if row[date_col].is_null() {
                            unmatched += 1;
                        } else {
                            matched += 1;
                        }
                    }
                    black_box((joined, matched, unmatched))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
