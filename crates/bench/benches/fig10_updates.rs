//! Fig. 10 — change operations: persistent FDM updates (structural
//! sharing) vs the copy-the-world strawman, plus the in-place mutable
//! baseline, at several relation sizes. This is also the DESIGN.md
//! ablation for the persistent-AVL storage substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::{DatabaseF, RelationF, TupleF, Value};
use fdm_fql::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn fdm_db(n: usize) -> DatabaseF {
    let mut rel = RelationF::new("accounts", &["id"]);
    for i in 0..n as i64 {
        rel = rel
            .insert(
                Value::Int(i),
                TupleF::builder("a").attr("balance", 100i64).build(),
            )
            .unwrap();
    }
    DatabaseF::new("bank").with_relation(rel)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_updates");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for n in [1_000usize, 10_000, 100_000] {
        let db = fdm_db(n);

        // persistent update: O(log n) structural sharing
        g.bench_with_input(BenchmarkId::new("fdm_persistent_update", n), &n, |b, &n| {
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 7) % n as i64;
                black_box(db_update_attr(&db, "accounts", &Value::Int(i), "balance", i).unwrap())
            })
        });

        // insert + delete round trip
        g.bench_with_input(BenchmarkId::new("fdm_insert_delete", n), &n, |b, &n| {
            b.iter(|| {
                let db2 = db_upsert(
                    &db,
                    "accounts",
                    Value::Int(n as i64 + 1),
                    TupleF::builder("a").attr("balance", 0i64).build(),
                )
                .unwrap();
                black_box(db_delete(&db2, "accounts", &Value::Int(n as i64 + 1)).unwrap())
            })
        });

        // copy-the-world: what immutability costs WITHOUT structural
        // sharing (the ablation's strawman)
        if n <= 10_000 {
            g.bench_with_input(BenchmarkId::new("copy_the_world_update", n), &n, |b, &n| {
                let mut i = 0i64;
                b.iter(|| {
                    i = (i + 7) % n as i64;
                    let copied = deep_copy(&db).unwrap();
                    black_box(
                        db_update_attr(&copied, "accounts", &Value::Int(i), "balance", i).unwrap(),
                    )
                })
            });
        }

        // in-place mutable baseline: a plain Vec of rows
        g.bench_with_input(BenchmarkId::new("mutable_vec_update", n), &n, |b, &n| {
            let mut rows: Vec<(i64, i64)> = (0..n as i64).map(|i| (i, 100)).collect();
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 7) % n as i64;
                rows[i as usize].1 = i;
                black_box(rows[i as usize].1)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
