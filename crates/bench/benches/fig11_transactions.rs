//! Fig. 11 — transactional transfers: explicit begin/commit vs
//! per-statement autocommit, snapshot cost, and commit under a
//! conflicting history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm_core::{DatabaseF, RelationF, TupleF, Value};
use fdm_txn::Store;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn store_with(n: usize) -> Arc<Store> {
    let mut rel = RelationF::new("accounts", &["id"]);
    for i in 0..n as i64 {
        rel = rel
            .insert(
                Value::Int(i),
                TupleF::builder("a").attr("balance", 1_000i64).build(),
            )
            .unwrap();
    }
    Store::new(DatabaseF::new("bank").with_relation(rel))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_transactions");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    for n in [1_000usize, 10_000] {
        let store = store_with(n);

        g.bench_with_input(BenchmarkId::new("begin_snapshot", n), &n, |b, _| {
            b.iter(|| black_box(store.begin().base_version()))
        });

        g.bench_with_input(BenchmarkId::new("transfer_txn", n), &n, |b, &n| {
            let mut i = 0i64;
            b.iter(|| {
                i = (i + 13) % (n as i64 - 1);
                let mut txn = store.begin();
                txn.modify_attr("accounts", &Value::Int(i), "balance", |v| {
                    v.sub(&Value::Int(1))
                })
                .unwrap();
                txn.modify_attr("accounts", &Value::Int(i + 1), "balance", |v| {
                    v.add(&Value::Int(1))
                })
                .unwrap();
                black_box(txn.commit().unwrap())
            })
        });

        g.bench_with_input(
            BenchmarkId::new("autocommit_two_statements", n),
            &n,
            |b, &n| {
                let mut i = 0i64;
                b.iter(|| {
                    i = (i + 13) % (n as i64 - 1);
                    store
                        .autocommit(3, |txn| {
                            txn.modify_attr("accounts", &Value::Int(i), "balance", |v| {
                                v.sub(&Value::Int(1))
                            })
                        })
                        .unwrap();
                    store
                        .autocommit(3, |txn| {
                            txn.modify_attr("accounts", &Value::Int(i + 1), "balance", |v| {
                                v.add(&Value::Int(1))
                            })
                        })
                        .unwrap();
                    black_box(store.version())
                })
            },
        );

        // commit validation with a non-trivial concurrent history: the
        // transaction must scan the commit log since its snapshot
        g.bench_with_input(BenchmarkId::new("commit_after_history", n), &n, |b, &n| {
            let mut i = 0i64;
            b.iter(|| {
                let mut txn = store.begin();
                // 16 disjoint commits land after our snapshot
                for k in 0..16i64 {
                    store
                        .upsert_one(
                            "accounts",
                            Value::Int((n as i64 / 2 + k) % n as i64),
                            TupleF::builder("a").attr("balance", k).build(),
                        )
                        .unwrap();
                }
                i = (i + 1) % (n as i64 / 4);
                txn.update_attr("accounts", &Value::Int(i), "balance", 5i64)
                    .unwrap();
                black_box(txn.commit().unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
