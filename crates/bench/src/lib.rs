//! # fdm-bench — the reproduction's measurement harness
//!
//! One Criterion bench per paper figure (see `benches/`), all running the
//! FDM/FQL engine and the from-scratch relational baseline on identical
//! generated data, plus the [`report`] helpers used by the `repro` binary
//! to print the EXPERIMENTS.md series (result footprints, NULL counts,
//! crossover sweeps).

#![warn(missing_docs)]

pub mod report;

use fdm_workload::{generate, to_fdm, to_relational, RetailConfig, RetailData, RetailRelational};

/// The standard benchmark dataset sizes, smallest to largest.
pub const SCALES: [usize; 3] = [1_000, 5_000, 20_000];

/// Builds the standard retail workload at a given number of orders
/// (customers = orders / 5, products = orders / 25, mild skew).
pub fn standard_config(orders: usize) -> RetailConfig {
    RetailConfig {
        customers: (orders / 5).max(10),
        products: (orders / 25).max(5),
        orders,
        product_skew: 1.0,
        inactive_customers: 0.2,
        seed: 0xFD17,
    }
}

/// A fan-out-controlled config: `fanout` orders per active customer on
/// average (the Fig. 5/6 sweep parameter).
pub fn fanout_config(customers: usize, fanout: usize) -> RetailConfig {
    RetailConfig {
        customers,
        products: (customers / 4).max(5),
        orders: customers * fanout * 4 / 5, // active customers = 80%
        product_skew: 1.0,
        inactive_customers: 0.2,
        seed: 0xFA0,
    }
}

/// Generated data in both engine forms.
pub struct BothEngines {
    /// The raw rows.
    pub data: RetailData,
    /// FDM database function.
    pub fdm: fdm_core::DatabaseF,
    /// Relational tables.
    pub rel: RetailRelational,
}

/// Generates a config in both forms.
pub fn both(cfg: &RetailConfig) -> BothEngines {
    let data = generate(cfg);
    let fdm = to_fdm(&data);
    let rel = to_relational(&data);
    BothEngines { data, fdm, rel }
}
