//! The `repro` report: per-figure measured series, printed as text
//! tables. `cargo run -p fdm-bench --bin repro --release` regenerates
//! everything EXPERIMENTS.md records.
//!
//! The paper is a vision paper and reports no absolute numbers; what each
//! figure *claims* is a shape (separate streams avoid duplication and
//! NULLs; updates are as expressive as reads; costumes are skins over one
//! semantics). Each function here measures that shape.

use crate::{both, fanout_config, standard_config};
use fdm_core::{DatabaseF, RelationF, TupleF, Value};
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_fql::Query;
use fdm_relational::{
    cube as rel_cube, group_by, grouping_sets as rel_gsets, outer_join, select, Agg, Cell,
    GroupingSet, OuterSide,
};
use fdm_txn::Store;
use std::time::Instant;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Prints one table header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n## {title}");
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Fig. 1: schema compilation — same ER schema to both targets.
pub fn fig1() {
    header(
        "Fig. 1 — one ER schema, two targets",
        &["target", "artifacts", "fk mechanism"],
    );
    let schema = fdm_erm::retail_schema();
    let fdm = fdm_erm::compile_to_fdm(&schema);
    let rel = fdm_erm::compile_to_relational(&schema);
    println!(
        "| FDM | {} entries ({} relations, {} relationship fns), {} shared domains | shared domains (by construction) |",
        fdm.len(),
        fdm.relations().count(),
        fdm.relationships().count(),
        fdm.shared_domains().count()
    );
    println!(
        "| relational | {} tables | {} FK constraints (separate metadata) |",
        rel.tables.len(),
        rel.foreign_keys.len()
    );
}

/// Fig. 4a: the six filter costumes — identical results, costume
/// overhead measured.
pub fn fig4_filter(orders: usize) {
    let e = both(&standard_config(orders));
    let customers = e.fdm.relation("customers").unwrap();
    header(
        &format!(
            "Fig. 4a — filter costumes (customers = {})",
            customers.len()
        ),
        &["costume", "result", "time (ms)"],
    );
    let t = Instant::now();
    let r1 = filter_fn(&customers, |t| Ok(t.get("age")?.as_int("age")? > 42)).unwrap();
    println!("| closure | {} | {:.3} |", r1.len(), ms(t));
    let t = Instant::now();
    let r3 = filter_kwargs(&customers, &[("age__gt", Value::Int(42))]).unwrap();
    println!("| kwargs (age__gt) | {} | {:.3} |", r3.len(), ms(t));
    let t = Instant::now();
    let r4 = filter_attr(&customers, "age", fdm_expr::GT, 42).unwrap();
    println!("| attr+op+const | {} | {:.3} |", r4.len(), ms(t));
    let t = Instant::now();
    let r5 = filter_expr(&customers, "age>$foo", Params::new().set("foo", 42)).unwrap();
    println!("| textual + $param | {} | {:.3} |", r5.len(), ms(t));
    let t = Instant::now();
    let sql = select(&e.rel.customers, |s, r| {
        let i = s.index_of("age")?;
        r[i].sql_cmp(&Cell::Int(42))
            .map(|o| o == std::cmp::Ordering::Greater)
    });
    println!("| relational σ | {} | {:.3} |", sql.len(), ms(t));
    assert_eq!(r1.len(), sql.len());
}

/// Fig. 4b/c: unrolled vs fused grouping+aggregation vs SQL GROUP BY.
pub fn fig4_groupby(orders: usize) {
    let e = both(&standard_config(orders));
    let customers = e.fdm.relation("customers").unwrap();
    header(
        &format!("Fig. 4b/c — grouping (customers = {})", customers.len()),
        &["variant", "groups", "time (ms)"],
    );
    let t = Instant::now();
    let groups = fdm_fql::group(&customers, &["age"]).unwrap();
    let aggs = fdm_fql::aggregate(&groups, &[("count", AggSpec::Count)]).unwrap();
    println!(
        "| FDM unrolled (group; aggregate) | {} | {:.3} |",
        aggs.len(),
        ms(t)
    );
    let t = Instant::now();
    let fused = group_and_aggregate(&customers, &["age"], &[("count", AggSpec::Count)]).unwrap();
    println!(
        "| FDM fused (group_and_aggregate) | {} | {:.3} |",
        fused.len(),
        ms(t)
    );
    let t = Instant::now();
    let sql = group_by(&e.rel.customers, &["age"], &[Agg::CountStar]);
    println!("| SQL GROUP BY | {} | {:.3} |", sql.len(), ms(t));
    assert_eq!(fused.len(), sql.len());
}

/// Fig. 5 + Fig. 6: the central contrast — denormalized single-table
/// join vs subdatabase, swept over fan-out.
pub fn fig5_fig6(customers: usize, fanouts: &[usize]) {
    header(
        &format!(
            "Fig. 5/6 — denormalized join vs subdatabase (customers = {customers}, fan-out sweep)"
        ),
        &[
            "fan-out",
            "orders",
            "join rows",
            "join values",
            "subDB tuples",
            "subDB values",
            "blowup ×",
            "join (ms)",
            "reduce (ms)",
        ],
    );
    for &f in fanouts {
        let e = both(&fanout_config(customers, f));
        let t = Instant::now();
        let joined = join(&e.fdm).unwrap();
        let t_join = ms(t);
        let join_values: usize = joined
            .tuples()
            .unwrap()
            .iter()
            .map(|(_, t)| t.attr_count())
            .sum();
        let t = Instant::now();
        let reduced = reduce_db(&e.fdm).unwrap();
        let t_reduce = ms(t);
        let sub_tuples = reduced.total_tuples();
        // footprint: customers carry 3 attrs, products 3, orders 2 (+2 keys)
        let c = reduced.relation("customers").unwrap().len();
        let p = reduced.relation("products").unwrap().len();
        let o = reduced.relationship("order").unwrap().len();
        let sub_values = c * 4 + p * 4 + o * 4;
        let blowup = join_values as f64 / sub_values.max(1) as f64;
        println!(
            "| {f} | {} | {} | {} | {} | {} | {:.2} | {:.2} | {:.2} |",
            e.data.orders.len(),
            joined.len(),
            join_values,
            sub_tuples,
            sub_values,
            blowup,
            t_join,
            t_reduce
        );
    }
}

/// Fig. 6 ablation: optimizer pushdown on the planned join.
pub fn fig6_ablation(orders: usize) {
    let e = both(&standard_config(orders));
    // flatten the relationship so the left-deep plan can scan it
    let order_rel = e
        .fdm
        .relationship("order")
        .unwrap()
        .to_relation()
        .renamed("orders_rel");
    let db = e.fdm.with_relation(order_rel);
    let q = Query::scan("orders_rel")
        .join("customers", "cid", "cid")
        .filter("date > $d", Params::new().set("d", "2026-09"));
    header(
        &format!(
            "Fig. 6 ablation — predicate pushdown (orders = {})",
            e.data.orders.len()
        ),
        &["plan", "intermediate rows", "time (ms)"],
    );
    let t = Instant::now();
    let (r1, s1) = q.clone().eval_with_stats(&db).unwrap();
    println!(
        "| declared order | {} | {:.2} |",
        s1.total_intermediate(),
        ms(t)
    );
    let t = Instant::now();
    let (r2, s2) = q.optimize().eval_with_stats(&db).unwrap();
    println!(
        "| optimized (pushdown) | {} | {:.2} |",
        s2.total_intermediate(),
        ms(t)
    );
    assert_eq!(r1.len(), r2.len());
}

/// Fig. 7: outer join — NULL-padded single stream vs inner/outer split.
pub fn fig7(customers: usize, fanouts: &[usize]) {
    header(
        &format!("Fig. 7 — outer join shapes (customers = {customers})"),
        &[
            "fan-out",
            "SQL rows",
            "SQL NULLs",
            "post-scan (ms)",
            "FDM inner",
            "FDM outer",
            "FDM NULLs",
            "FDM (ms)",
        ],
    );
    for &f in fanouts {
        let e = both(&fanout_config(customers, f));
        // relational: LEFT OUTER JOIN then a second scan to separate the
        // unmatched customers back out (what an application must do)
        let t = Instant::now();
        let sql = outer_join(
            &e.rel.customers,
            &e.rel.orders,
            "cid",
            "cid",
            OuterSide::Left,
        );
        let date_col = sql.schema().index_of("date").unwrap();
        let (mut matched, mut unmatched) = (0usize, 0usize);
        for row in sql.rows() {
            if row[date_col].is_null() {
                unmatched += 1;
            } else {
                matched += 1;
            }
        }
        let t_sql = ms(t);
        let _ = matched;
        let t = Instant::now();
        let out = outer(&e.fdm, &["customers"]).unwrap();
        let inner_n = out.relation("customers.inner").unwrap().len();
        let outer_n = out.relation("customers.outer").unwrap().len();
        let t_fdm = ms(t);
        assert_eq!(outer_n, unmatched);
        println!(
            "| {f} | {} | {} | {:.2} | {inner_n} | {outer_n} | 0 | {:.2} |",
            sql.len(),
            sql.null_count(),
            t_sql,
            t_fdm
        );
    }
}

/// Fig. 8: grouping sets — single NULL-filled relation vs separate
/// relation functions.
pub fn fig8(orders: usize) {
    let e = both(&standard_config(orders));
    let customers = e.fdm.relation("customers").unwrap();
    header(
        &format!("Fig. 8 — grouping sets (customers = {})", customers.len()),
        &[
            "engine",
            "output",
            "rows",
            "cells",
            "NULL cells",
            "time (ms)",
        ],
    );
    let t = Instant::now();
    let gset = grouping_sets(
        &customers,
        &[
            GroupingSpec::new("age_cc", &["age"], &[("count", AggSpec::Count)]),
            GroupingSpec::new(
                "state_age_cc",
                &["state", "age"],
                &[("count", AggSpec::Count)],
            ),
            GroupingSpec::new("global_min", &[], &[("min", AggSpec::Min("age".into()))]),
        ],
    )
    .unwrap();
    let t_fdm = ms(t);
    let mut rows = 0usize;
    let mut cells = 0usize;
    for (_, entry) in gset.iter() {
        let r = entry.as_relation().unwrap();
        rows += r.len();
        cells += r
            .tuples()
            .unwrap()
            .iter()
            .map(|(_, t)| t.attr_count())
            .sum::<usize>();
    }
    println!(
        "| FDM | {} separate relation fns | {rows} | {cells} | 0 | {t_fdm:.2} |",
        gset.len()
    );
    let t = Instant::now();
    let sql = rel_gsets(
        &e.rel.customers,
        &[
            GroupingSet {
                by: vec!["age".into()],
                aggs: vec![Agg::CountStar],
            },
            GroupingSet {
                by: vec!["state".into(), "age".into()],
                aggs: vec![Agg::CountStar],
            },
            GroupingSet {
                by: vec![],
                aggs: vec![Agg::Min("age".into())],
            },
        ],
    );
    let t_sql = ms(t);
    println!(
        "| SQL | 1 relation | {} | {} | {} | {t_sql:.2} |",
        sql.len(),
        sql.cell_count(),
        sql.null_count()
    );
    let t = Instant::now();
    let sql_cube = rel_cube(&e.rel.customers, &["state", "age"], &[Agg::CountStar]);
    let t_cube = ms(t);
    let t = Instant::now();
    let fdm_cube = fdm_fql::cube(&customers, &["state", "age"], &[("c", AggSpec::Count)]).unwrap();
    let t_fcube = ms(t);
    println!(
        "| SQL CUBE | 1 relation | {} | {} | {} | {t_cube:.2} |",
        sql_cube.len(),
        sql_cube.cell_count(),
        sql_cube.null_count()
    );
    let fdm_cube_rows: usize = fdm_cube
        .iter()
        .map(|(_, e)| e.as_relation().map(|r| r.len()).unwrap_or(0))
        .sum();
    println!(
        "| FDM cube | {} separate relation fns | {fdm_cube_rows} | — | 0 | {t_fcube:.2} |",
        fdm_cube.len()
    );
}

/// Fig. 9: database-level set operations.
pub fn fig9(orders: usize) {
    let e = both(&standard_config(orders));
    header(
        &format!(
            "Fig. 9 — DB-level set operations (tuples = {})",
            e.fdm.total_tuples()
        ),
        &["operation", "result", "time (ms)"],
    );
    let t = Instant::now();
    let copy = deep_copy(&e.fdm).unwrap();
    println!(
        "| deep_copy(DB) | {} tuples | {:.2} |",
        copy.total_tuples(),
        ms(t)
    );
    // mutate the copy a bit
    let mut changed = copy.clone();
    for i in 0..50i64 {
        changed = db_upsert(
            &changed,
            "customers",
            Value::Int(1_000_000 + i),
            TupleF::builder("c")
                .attr("name", format!("new{i}"))
                .attr("age", 20 + i)
                .attr("state", "NV")
                .build(),
        )
        .unwrap();
    }
    let t = Instant::now();
    let diff = difference(&e.fdm, &changed).unwrap();
    println!(
        "| difference(DB, DB') | {} changed relation(s), {} added tuples | {:.2} |",
        diff.len(),
        diff.relation("customers.added")
            .map(|r| r.len())
            .unwrap_or(0),
        ms(t)
    );
    let t = Instant::now();
    let u = union(&e.fdm, &changed).unwrap();
    println!(
        "| union(DB, DB') | {} tuples | {:.2} |",
        u.total_tuples(),
        ms(t)
    );
    let t = Instant::now();
    let i = intersect(&e.fdm, &changed).unwrap();
    println!(
        "| intersect(DB, DB') | {} tuples | {:.2} |",
        i.total_tuples(),
        ms(t)
    );
    let t = Instant::now();
    let m = minus(&changed, &e.fdm).unwrap();
    println!(
        "| minus(DB', DB) | {} tuples | {:.2} |",
        m.total_tuples(),
        ms(t)
    );
}

/// Fig. 10 + ablation: update throughput — persistent FDM updates vs
/// copy-the-world, at several relation sizes.
pub fn fig10(sizes: &[usize]) {
    header(
        "Fig. 10 — update mechanisms (1000 single-attribute updates each)",
        &[
            "relation size",
            "persistent (ms)",
            "copy-the-world (ms)",
            "speedup ×",
        ],
    );
    for &n in sizes {
        let mut rel = RelationF::new("accounts", &["id"]);
        for i in 0..n as i64 {
            rel = rel
                .insert(
                    Value::Int(i),
                    TupleF::builder("a").attr("balance", 100i64).build(),
                )
                .unwrap();
        }
        let db = DatabaseF::new("bank").with_relation(rel);
        const UPDATES: usize = 1000;
        // persistent path (structural sharing)
        let t = Instant::now();
        let mut cur = db.clone();
        for i in 0..UPDATES {
            let key = Value::Int((i % n) as i64);
            cur = db_update_attr(&cur, "accounts", &key, "balance", i as i64).unwrap();
        }
        let t_persist = ms(t);
        // copy-the-world path: deep copy then update (what a naive
        // immutable implementation without structural sharing pays)
        let copies = (UPDATES / 50).max(1); // 50x fewer iterations, scaled
        let t = Instant::now();
        let mut cur = db.clone();
        for i in 0..copies {
            let key = Value::Int((i % n) as i64);
            let copied = deep_copy(&cur).unwrap();
            cur = db_update_attr(&copied, "accounts", &key, "balance", i as i64).unwrap();
        }
        let t_copy = ms(t) * (UPDATES as f64 / copies as f64);
        println!(
            "| {n} | {t_persist:.2} | {t_copy:.1} (extrapolated) | {:.0} |",
            t_copy / t_persist.max(0.001)
        );
    }
}

/// Fig. 11: transaction throughput and conflict-rate sweep.
pub fn fig11(accounts: usize, threads_list: &[usize]) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    header(
        &format!("Fig. 11 — concurrent transfers ({accounts} accounts, 2000 txns total)"),
        &[
            "threads",
            "committed",
            "conflicted",
            "throughput (txn/ms)",
            "money conserved",
        ],
    );
    for &threads in threads_list {
        let mut rel = RelationF::new("accounts", &["id"]);
        for i in 0..accounts as i64 {
            rel = rel
                .insert(
                    Value::Int(i),
                    TupleF::builder("a").attr("balance", 1000i64).build(),
                )
                .unwrap();
        }
        let store = Store::new(DatabaseF::new("bank").with_relation(rel));
        let total_txns = 2000usize;
        let per_thread = total_txns / threads;
        let committed = Arc::new(AtomicUsize::new(0));
        let conflicted = Arc::new(AtomicUsize::new(0));
        let t = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let store = Arc::clone(&store);
                let committed = Arc::clone(&committed);
                let conflicted = Arc::clone(&conflicted);
                s.spawn(move || {
                    let mut x = (tid as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    let mut next = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    for _ in 0..per_thread {
                        let from = (next() % accounts as u64) as i64;
                        let mut to = (next() % accounts as u64) as i64;
                        if to == from {
                            to = (to + 1) % accounts as i64;
                        }
                        let mut txn = store.begin();
                        txn.modify_attr("accounts", &Value::Int(from), "balance", |v| {
                            v.sub(&Value::Int(1))
                        })
                        .unwrap();
                        txn.modify_attr("accounts", &Value::Int(to), "balance", |v| {
                            v.add(&Value::Int(1))
                        })
                        .unwrap();
                        match txn.commit() {
                            Ok(_) => {
                                committed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                conflicted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let elapsed = ms(t);
        let total: i64 = store
            .snapshot()
            .relation("accounts")
            .unwrap()
            .tuples()
            .unwrap()
            .iter()
            .map(|(_, t)| t.get("balance").unwrap().as_int("b").unwrap())
            .sum();
        let conserved = total == (accounts as i64) * 1000;
        println!(
            "| {threads} | {} | {} | {:.1} | {conserved} |",
            committed.load(Ordering::Relaxed),
            conflicted.load(Ordering::Relaxed),
            committed.load(Ordering::Relaxed) as f64 / elapsed,
        );
        assert!(conserved);
    }
}
