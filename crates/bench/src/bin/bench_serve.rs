//! The million-entity serving-path benchmark (`fig15_serving`): a 1M+
//! entity retail database served through the PR 10 stack — key-range
//! sharded relation bodies (`fdm_core::shard`), group-committed write
//! batches (`fdm_txn::BatchPolicy`), and the fingerprint-keyed hot-tuple
//! cache — under Zipf-skewed concurrent clients.
//!
//! Three kinds of numbers come out, with different gating fates:
//!
//! * **Throughput and p50/p99 latency** of the concurrent mixed run
//!   (point reads / range scans / batched transactional writes) —
//!   *absolute*, machine-dependent figures: the served-request analogue
//!   of `fig11_txn_commit`. Recorded for trend visibility, **never
//!   gated** — `bench_gate` explains why next to `RECORDED_METRICS`.
//! * **`serve_read_speedup`** — the same Zipf point-read sequence served
//!   through the hot-tuple cache vs the naive per-request path (resolve
//!   the relation from a fresh snapshot, walk the persistent tree).
//!   Both sides run in this process on this machine, so the ratio is
//!   algorithmic; it follows the record-then-arm arc in `bench_gate`.
//! * **`serve_write_speedup`** — the same write stream committed one
//!   transaction per request vs folded into group commits
//!   (`Store::commit_batch`, writes coalesced per hot customer), both on
//!   a durable store with fsync elided so the ratio counts amortized
//!   work (encode, WAL append, install, record) rather than medium
//!   latency. Also a same-process ratio; same record-then-arm arc.
//!
//! The sharded-relation series (bulk split, range scans, per-shard
//! parallel operators at `THREADS=1/4`) is recorded inside the entry
//! only: on the 1-CPU CI runner thread counts measure scheduling
//! overhead, not the algorithm (see ROADMAP).
//!
//! Every path is differentially checked before numbers are published:
//! cached reads must serve the exact tuple the tree holds, batched and
//! sequential stores must agree on the audit sum, and the sharded
//! relation must merge back byte-identical. The deeper guarantees
//! (as-of equivalence at every committed version, boundary-key routing)
//! are pinned by `tests/tests/serve_equivalence.rs`,
//! `shard_equivalence.rs`, and `cache_invalidation.rs`.
//!
//! ```text
//! cargo run -p fdm-bench --bin bench_serve --release            # full: 1M+
//! #   entities, appends the pr10_serving_path entry to BENCH_fig4_fig6.json
//! cargo run -p fdm-bench --bin bench_serve --release -- --quick \
//!     --merge bench_quick.json                                  # CI smoke:
//! #   merges the serve metrics into the bench_bulk quick summary so
//! #   bench_gate sees one flat file
//! ```

use fdm_core::{ShardMap, ShardedRelation, Value};
use fdm_txn::{BatchPolicy, CommitPolicy, DurabilityConfig, Store, StoreConfig, SyncPolicy};
use fdm_workload::{
    commit_serve_write, commit_serve_writes_batched, retail_store_with, serve_ops, total_credit,
    writes_of, RetailConfig, ServeConfig, ServeOp,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Criterion-style median: `samples` timed runs, median per-run nanos
/// (one warm-up run outside the timings).
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Interleaved A/B medians: one warm-up of each side, then `samples`
/// rounds timing both, alternating which goes first (`a b`, `b a`, …).
/// Measuring one side to completion before starting the other lets the
/// first loop page in tuples the second then reads warm — at the
/// million-entity scale that ordering bias was larger than the effect
/// being measured.
fn interleaved_median_ns(samples: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_nanos() as f64
    };
    a();
    b();
    let mut ta: Vec<f64> = Vec::with_capacity(samples);
    let mut tb: Vec<f64> = Vec::with_capacity(samples);
    for round in 0..samples {
        if round % 2 == 0 {
            ta.push(time(&mut a));
            tb.push(time(&mut b));
        } else {
            tb.push(time(&mut b));
            ta.push(time(&mut a));
        }
    }
    ta.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    tb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    (ta[ta.len() / 2], tb[tb.len() / 2])
}

/// Runs `f` with `THREADS` and `FDM_PAR_CUTOFF` pinned (the parallel
/// layer reads both per call), restoring previous values afterwards. The
/// cutoff is pinned low so the chunked path is exercised even at the CI
/// smoke scale.
fn with_threads_cutoff<T>(n: &str, cutoff: &str, f: impl FnOnce() -> T) -> T {
    let saved_t = std::env::var("THREADS").ok();
    let saved_c = std::env::var("FDM_PAR_CUTOFF").ok();
    std::env::set_var("THREADS", n);
    std::env::set_var("FDM_PAR_CUTOFF", cutoff);
    let out = f();
    match saved_t {
        Some(v) => std::env::set_var("THREADS", v),
        None => std::env::remove_var("THREADS"),
    }
    match saved_c {
        Some(v) => std::env::set_var("FDM_PAR_CUTOFF", v),
        None => std::env::remove_var("FDM_PAR_CUTOFF"),
    }
    out
}

/// `pct`-th percentile of an ascending latency series, in microseconds.
fn percentile_us(sorted_ns: &[u64], pct: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// What one serving client observed.
#[derive(Default)]
struct ClientReport {
    read_ns: Vec<u64>,
    scan_ns: Vec<u64>,
    flush_ns: Vec<u64>,
    delta_sum: i64,
    ops: usize,
}

/// The concurrent mixed run: every client replays its deterministic
/// Zipf stream — point reads through the cache front, range scans off
/// fresh snapshots, writes buffered and flushed through the batched
/// group-commit path every `flush_every` writes.
fn run_clients(
    store: &Arc<Store>,
    cfg: &ServeConfig,
    n_customers: usize,
    flush_every: usize,
) -> Vec<ClientReport> {
    let policy = BatchPolicy::default().with_commit(CommitPolicy::default().with_max_attempts(256));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let store = Arc::clone(store);
                let policy = policy.clone();
                let ops = serve_ops(cfg, n_customers, client);
                s.spawn(move || {
                    let mut rep = ClientReport::default();
                    let mut pending: Vec<(i64, i64)> = Vec::new();
                    let flush = |pending: &mut Vec<(i64, i64)>, rep: &mut ClientReport| {
                        if pending.is_empty() {
                            return;
                        }
                        let t0 = Instant::now();
                        commit_serve_writes_batched(&store, pending, flush_every, &policy);
                        rep.flush_ns.push(t0.elapsed().as_nanos() as u64);
                        pending.clear();
                    };
                    for op in &ops {
                        rep.ops += 1;
                        match op {
                            ServeOp::PointRead { customer } => {
                                let t0 = Instant::now();
                                let got = store
                                    .read_point("customers", &Value::Int(*customer))
                                    .expect("customers relation exists");
                                rep.read_ns.push(t0.elapsed().as_nanos() as u64);
                                assert!(got.is_some(), "generated cids are dense");
                            }
                            ServeOp::RangeScan { start, len } => {
                                let t0 = Instant::now();
                                let db = store.snapshot();
                                let rel =
                                    db.relation("customers").expect("customers relation exists");
                                let hi = Value::Int(start + len - 1);
                                let rows = rel.range(Some(&Value::Int(*start)), Some(&hi));
                                black_box(rows.len());
                                rep.scan_ns.push(t0.elapsed().as_nanos() as u64);
                            }
                            ServeOp::Write { customer, delta } => {
                                pending.push((*customer, *delta));
                                rep.delta_sum += delta;
                                if pending.len() >= flush_every {
                                    flush(&mut pending, &mut rep);
                                }
                            }
                        }
                    }
                    flush(&mut pending, &mut rep);
                    rep
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving client panicked"))
            .collect()
    })
}

/// One scale's complete `fig15_serving` object. The two `*_speedup` keys
/// come **last**: `bench_gate` scans for the last occurrence of each
/// key, and in the full entry this object's quick-scale twin
/// (`quick_gate_baseline`) is appended after the full-scale one so the
/// committed baseline is measured at exactly the scale CI reproduces.
fn measure_serving(scale: &RetailConfig, samples: usize, quick: bool) -> String {
    // The cache is deliberately *small* relative to the database: a
    // serving cache earns its keep by keeping the Zipf head resident in
    // a compact, always-warm table. Sizing it toward the working set
    // (64k+ slots) made every probe a cold-memory walk at the full scale
    // and cost more than the tree it was fronting.
    let store = retail_store_with(
        scale,
        StoreConfig {
            hot_cache: Some(4_096),
            ..StoreConfig::default()
        },
    );
    let base_db = store.snapshot();
    let customers = scale.customers;
    let products = base_db.relation("products").expect("retail schema").len();
    let orders = base_db.relationship("order").expect("retail schema").len();
    let entities = customers + products + orders;
    println!(
        "bench_serve: {entities} entities ({customers} customers, {products} products, {orders} orders)"
    );
    if !quick {
        assert!(
            entities >= 1_000_000,
            "the full serving benchmark must cover a million-entity database"
        );
    }

    // ── concurrent mixed run: throughput + latency percentiles ──
    let mixed = ServeConfig {
        clients: 4,
        ops_per_client: if quick { 500 } else { 5_000 },
        seed: 0xFD10,
        skew: 1.1,
        read_pct: 80,
        scan_pct: 10,
        scan_len: 64,
    };
    let wall = Instant::now();
    let reports = run_clients(&store, &mixed, customers, 16);
    let elapsed = wall.elapsed().as_secs_f64();
    let total_ops: usize = reports.iter().map(|r| r.ops).sum();
    let serve_ops_per_sec = total_ops as f64 / elapsed;
    let mut read_ns: Vec<u64> = reports.iter().flat_map(|r| r.read_ns.clone()).collect();
    let mut scan_ns: Vec<u64> = reports.iter().flat_map(|r| r.scan_ns.clone()).collect();
    let mut flush_ns: Vec<u64> = reports.iter().flat_map(|r| r.flush_ns.clone()).collect();
    read_ns.sort_unstable();
    scan_ns.sort_unstable();
    flush_ns.sort_unstable();
    // audit: every client's deltas landed exactly once
    let expected: i64 = reports.iter().map(|r| r.delta_sum).sum();
    assert_eq!(
        total_credit(&store.snapshot()),
        expected,
        "concurrent batched writes conserve the audit sum"
    );
    let stats = store.cache_stats().expect("hot cache is on");
    let probes = stats.hits + stats.misses + stats.stale_misses;
    let hit_rate = stats.hits as f64 / probes.max(1) as f64;
    println!(
        "bench_serve: {total_ops} ops in {elapsed:.2}s ({serve_ops_per_sec:.0}/s), cache hit rate {hit_rate:.2}"
    );

    // ── serve_read_speedup: cache front vs naive per-request tree walk ──
    let read_only = ServeConfig {
        read_pct: 100,
        scan_pct: 0,
        ops_per_client: if quick { 2_000 } else { 10_000 },
        ..mixed.clone()
    };
    let reads: Vec<i64> = serve_ops(&read_only, customers, 0)
        .iter()
        .map(|op| match op {
            ServeOp::PointRead { customer } => *customer,
            _ => unreachable!("read_pct is 100"),
        })
        .collect();
    // sanity: the cached path serves the exact Arc the tree holds (the
    // invalidation contract makes anything else impossible)
    for &c in reads.iter().take(50) {
        let key = Value::Int(c);
        let cached = store
            .read_point("customers", &key)
            .expect("customers relation exists")
            .expect("dense cids");
        let db = store.snapshot();
        let naive = db
            .relation("customers")
            .expect("customers relation exists")
            .lookup(&key)
            .expect("dense cids");
        assert!(
            Arc::ptr_eq(&cached, &naive),
            "cached read diverges from the tree for cid {c}"
        );
    }
    let (read_cached, read_naive) = interleaved_median_ns(
        samples,
        || {
            for &c in &reads {
                black_box(
                    store
                        .read_point("customers", &Value::Int(c))
                        .expect("customers relation exists"),
                );
            }
        },
        || {
            for &c in &reads {
                let db = store.snapshot();
                let rel = db.relation("customers").expect("customers relation exists");
                black_box(rel.lookup(&Value::Int(c)));
            }
        },
    );
    let serve_read_speedup = read_naive / read_cached;

    // ── serve_write_speedup: one commit per request vs group commit ──
    //
    // Both sides run on a *durable* store so the ratio covers what group
    // commit actually amortizes: one writeset encode + WAL append + log
    // insert + history record + CAS install per group instead of per
    // request. The sync policy is `Never` on both sides — fsync latency
    // is medium-dependent and would not cancel in the ratio (the fig12
    // series records the fsync axis separately); buffered appends keep
    // this an algorithmic count-of-work comparison.
    let write_only = ServeConfig {
        read_pct: 0,
        scan_pct: 0,
        ops_per_client: if quick { 400 } else { 2_000 },
        ..mixed.clone()
    };
    let writes = writes_of(&serve_ops(&write_only, customers, 1));
    let durable_store = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("fdm-bench-serve-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DurabilityConfig::new(&dir)
            .with_sync(SyncPolicy::Never)
            .with_checkpoint_every(None);
        let store = Store::create(
            base_db.clone(),
            StoreConfig {
                durability: Some(dcfg),
                hot_cache: Some(4_096),
                ..StoreConfig::default()
            },
        )
        .expect("fresh scratch dir");
        (store, dir)
    };
    let (seq_store, seq_dir) = durable_store("seq");
    let write_sequential = median_ns(samples, || {
        for (c, d) in &writes {
            commit_serve_write(&seq_store, *c, *d);
        }
    });
    let (batch_store, batch_dir) = durable_store("batch");
    let policy = BatchPolicy::default().with_max_txns(128);
    let write_batched = median_ns(samples, || {
        commit_serve_writes_batched(&batch_store, &writes, 128, &policy);
    });
    let serve_write_speedup = write_sequential / write_batched;
    // both stores replayed the identical stream the same number of times
    assert_eq!(
        total_credit(&seq_store.snapshot()),
        total_credit(&batch_store.snapshot()),
        "batched writes diverge from sequential"
    );
    assert!(
        batch_store.version() < seq_store.version(),
        "group commit installs fewer versions"
    );
    drop(seq_store);
    drop(batch_store);
    let _ = std::fs::remove_dir_all(&seq_dir);
    let _ = std::fs::remove_dir_all(&batch_dir);

    // ── sharded relation series (recorded-only: 1-CPU runner) ──
    let rel = base_db
        .relation("customers")
        .expect("customers relation exists");
    let shard_count = 8;
    let map = ShardMap::for_relation(&rel, shard_count).expect("ascending stored keys");
    let sharded = ShardedRelation::from_relation(&rel, map.clone()).expect("clean split");
    assert_eq!(sharded.len(), rel.len());
    assert_eq!(
        sharded.to_relation().stored_keys(),
        rel.stored_keys(),
        "shard merge must be byte-identical"
    );
    let shard_build = median_ns(samples, || {
        black_box(ShardedRelation::from_relation(&rel, map.clone()).expect("clean split"));
    });
    let scans: Vec<(i64, i64)> = serve_ops(&mixed, customers, 2)
        .iter()
        .filter_map(|op| match op {
            ServeOp::RangeScan { start, len } => Some((*start, *len)),
            _ => None,
        })
        .collect();
    for (lo, len) in scans.iter().take(10) {
        let (lo, hi) = (Value::Int(*lo), Value::Int(lo + len - 1));
        let a: Vec<Value> = sharded
            .range(Some(&lo), Some(&hi))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let b: Vec<Value> = rel
            .range(Some(&lo), Some(&hi))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(a, b, "sharded range scan diverges");
    }
    let scan_sharded = median_ns(samples, || {
        for (lo, len) in &scans {
            let hi = Value::Int(lo + len - 1);
            black_box(sharded.range(Some(&Value::Int(*lo)), Some(&hi)).len());
        }
    });
    let scan_unsharded = median_ns(samples, || {
        for (lo, len) in &scans {
            let hi = Value::Int(lo + len - 1);
            black_box(rel.range(Some(&Value::Int(*lo)), Some(&hi)).len());
        }
    });
    let shard_filter = |shard: &fdm_core::RelationF| {
        fdm_fql::filter_fn(shard, |t| Ok(t.get("age")?.as_int("age")? > 42))
    };
    let map_shards_t1 = with_threads_cutoff("1", "64", || {
        median_ns(samples, || {
            black_box(sharded.map_shards(shard_filter).expect("filter per shard"));
        })
    });
    let map_shards_t4 = with_threads_cutoff("4", "64", || {
        median_ns(samples, || {
            black_box(sharded.map_shards(shard_filter).expect("filter per shard"));
        })
    });

    format!(
        "{{\n      \"entities\": {entities},\n      \"customers\": {customers},\n      \"products\": {products},\n      \"orders\": {orders},\n      \"clients\": {},\n      \"ops\": {total_ops},\n      \"cache_hit_rate\": {hit_rate:.3},\n      \"serve_ops_per_sec\": {serve_ops_per_sec:.0},\n      \"serve_read_p50_us\": {:.2},\n      \"serve_read_p99_us\": {:.2},\n      \"serve_scan_p50_us\": {:.2},\n      \"serve_scan_p99_us\": {:.2},\n      \"serve_flush_p50_us\": {:.2},\n      \"serve_flush_p99_us\": {:.2},\n      \"fig15_shards\": {{ \"shard_count\": {shard_count}, \"build_median_ns\": {shard_build}, \"sharded_scan_median_ns\": {scan_sharded}, \"unsharded_scan_median_ns\": {scan_unsharded}, \"map_shards_t1_median_ns\": {map_shards_t1}, \"map_shards_t4_median_ns\": {map_shards_t4} }},\n      \"fig15_reads\": {{ \"naive_median_ns\": {read_naive}, \"cached_median_ns\": {read_cached} }},\n      \"fig15_writes\": {{ \"sequential_median_ns\": {write_sequential}, \"batched_median_ns\": {write_batched} }},\n      \"serve_read_speedup\": {serve_read_speedup:.3},\n      \"serve_write_speedup\": {serve_write_speedup:.3}\n    }}",
        mixed.clients,
        percentile_us(&read_ns, 50.0),
        percentile_us(&read_ns, 99.0),
        percentile_us(&scan_ns, 50.0),
        percentile_us(&scan_ns, 99.0),
        percentile_us(&flush_ns, 50.0),
        percentile_us(&flush_ns, 99.0),
    )
}

fn quick_scale() -> RetailConfig {
    RetailConfig {
        customers: 10_000,
        products: 2_000,
        orders: 20_000,
        product_skew: 1.0,
        inactive_customers: 0.2,
        seed: 0xFD17,
    }
}

fn full_scale() -> RetailConfig {
    RetailConfig {
        customers: 400_000,
        products: 100_000,
        orders: 520_000,
        product_skew: 1.0,
        inactive_customers: 0.2,
        seed: 0xFD17,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let merge_path = args
        .iter()
        .position(|a| a == "--merge")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "serve_quick.json".into());

    if quick {
        let obj = measure_serving(&quick_scale(), 5, true);
        let standalone =
            format!("{{\n  \"entry\": \"serve_quick\",\n  \"fig15_serving\":\n    {obj}\n}}\n");
        match merge_path {
            // merge into the bench_bulk quick summary so bench_gate reads
            // one flat file (it text-scans for the last key occurrence,
            // so a nested object merges cleanly)
            Some(path) => {
                let existing = std::fs::read_to_string(&path).unwrap_or_default();
                let trimmed = existing.trim_end();
                match trimmed.strip_suffix('}') {
                    Some(body) if !trimmed.is_empty() => {
                        let merged = format!(
                            "{},\n  \"fig15_serving\":\n    {obj}\n}}\n",
                            body.trim_end().trim_end_matches(',')
                        );
                        std::fs::write(&path, merged).expect("merge quick summary");
                        println!("merged serve metrics into {path}");
                    }
                    _ => {
                        std::fs::write(&path, standalone).expect("write quick summary");
                        println!("wrote {path} (no existing summary to merge into)");
                    }
                }
            }
            None => {
                std::fs::write(&out_path, standalone).expect("write quick summary");
                println!("wrote {out_path}");
            }
        }
        return;
    }

    // Full run: the million-entity measurement, plus the quick-scale
    // baseline appended last — bench_gate compares CI's quick run against
    // the last occurrence of each key, which must be the same scale.
    let full_obj = measure_serving(&full_scale(), 7, false);
    let baseline_obj = measure_serving(&quick_scale(), 5, true);
    let entry = format!(
        "{{\n  \"entry\": \"pr10_serving_path\",\n  \"fig15_serving\":\n    {full_obj},\n  \"quick_gate_baseline\": {{\n    \"fig15_serving\":\n    {baseline_obj}\n  }}\n}}"
    );
    println!("{entry}");

    let path = "BENCH_fig4_fig6.json";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim();
    let combined = if trimmed.is_empty() {
        format!("[\n{entry}\n]\n")
    } else if let Some(body) = trimmed.strip_prefix('[') {
        let body = body.strip_suffix(']').expect("well-formed JSON array");
        format!("[{},\n{entry}\n]\n", body.trim_end().trim_end_matches(','))
    } else {
        format!("[\n{trimmed},\n{entry}\n]\n")
    };
    std::fs::write(path, combined).expect("write BENCH_fig4_fig6.json");
    println!("wrote {path}");
}
