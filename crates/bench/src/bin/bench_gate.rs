//! CI bench-regression gate.
//!
//! Compares the speedup ratios of a fresh `bench_bulk --quick` run (the
//! flat `bench_quick.json` summary) against the **last committed entry**
//! of the `BENCH_fig4_fig6.json` trajectory and fails the job when any
//! gated ratio regressed by more than the tolerance (default 25%).
//!
//! Ratios — not absolute times — are gated: both sides of every ratio are
//! measured in the same process on the same machine, so host speed
//! cancels out and the gate tracks *algorithmic* regressions (a lost fast
//! path, an accidentally uncached data key), not runner weather.
//!
//! ```text
//! bench_gate <quick_summary.json> <trajectory.json> [--tolerance 0.25]
//! ```
//!
//! Parsing note: both inputs are written by `bench_bulk` with one
//! `"<metric>_speedup": <number>` pair per gated metric, so the gate
//! scans for the **last occurrence** of each key instead of dragging a
//! JSON dependency into the workspace. In the trajectory that last
//! occurrence is the `quick_gate_baseline` object a full `bench_bulk`
//! run deliberately appends after its scales — measured at the *quick*
//! scale (2k orders), i.e. exactly the configuration the CI quick run
//! reproduces.

use std::process::ExitCode;

/// The ratios the gate tracks, matching the `*_speedup` keys `bench_bulk`
/// emits. `group_speedup` (BTreeMap vs fingerprint-hash bucketing) joined
/// in PR 4; `join_order_speedup` is recorded but not gated — it measures a
/// plan-choice win whose magnitude depends on the synthetic fan-out skew,
/// too scenario-shaped for a hard regression ratio. `txn_commit_throughput`
/// (PR 6) is likewise recorded-only, for a stronger reason: it is an
/// *absolute* commits/second figure, not a same-process before/after
/// ratio, so host speed does not cancel out and gating it would fail CI
/// on runner weather rather than algorithmic regressions.
const METRICS: [&str; 5] = [
    "union_speedup",
    "minus_speedup",
    "intersect_speedup",
    "deep_copy_speedup",
    "group_speedup",
];

/// Ratios gated only once the committed trajectory has **two or more
/// entries** recording them: a single entry is the ratio's own birth
/// measurement, with no independent baseline to regress against.
/// `plan_reorder_speedup` (declared vs `optimize_for` join order, PR 5)
/// is recorded in its introducing PR and arms — under the same tolerance
/// as everything else — the first time a later full run re-records it
/// (which the PR 6 entry did, so it is live). `rule_optimizer_speedup`
/// (declared vs the PR 8 rule-engine default set on the chain fixture)
/// follows the same arc: recorded by its introducing entry, armed by
/// the next full run. `view_refresh_speedup` (incremental view
/// maintenance vs from-scratch recompute for a single-row delta, PR 9)
/// is the third to walk it. The PR 10 serving ratios
/// (`serve_read_speedup`: hot-tuple cache vs per-request tree walk;
/// `serve_write_speedup`: group commit vs one-commit-per-request, both
/// from `bench_serve`) are the fourth and fifth — same-process ratios,
/// recorded by their introducing entry, armed when the next full run
/// re-records them.
const ARMED_METRICS: [&str; 5] = [
    "plan_reorder_speedup",
    "rule_optimizer_speedup",
    "view_refresh_speedup",
    "serve_read_speedup",
    "serve_write_speedup",
];

/// Metrics printed for trend visibility but **never** gated, whatever the
/// trajectory depth: `join_order_speedup` is too scenario-shaped for a
/// hard ratio; `txn_commit_throughput` (PR 6) and the PR 7 durability
/// figures (`wal_commit_overhead`, `recovery_replay_per_sec`) are
/// medium-dependent — fsync latency and page-cache state do not cancel
/// out across runners. The PR 10 serving figures (`serve_ops_per_sec`,
/// `serve_read_p50_us`, `serve_read_p99_us` from `bench_serve`'s
/// concurrent mixed run) are absolute throughput/latency numbers for the
/// same reason: wall-clock per request is runner weather, so only the
/// cache-vs-naive and batched-vs-sequential *ratios* above are ever
/// gated. The CI log still shows them side by side with the committed
/// numbers so a drift is visible before anyone thinks to gate it.
const RECORDED_METRICS: [&str; 7] = [
    "join_order_speedup",
    "txn_commit_throughput",
    "wal_commit_overhead",
    "recovery_replay_per_sec",
    "serve_ops_per_sec",
    "serve_read_p50_us",
    "serve_read_p99_us",
];

/// Number of trajectory entries (objects carrying an `"entry"` tag) that
/// record `key`. An entry's `quick_gate_baseline` counts toward the same
/// entry, not a separate one.
fn entries_recording(trajectory: &str, key: &str) -> usize {
    let needle = format!("\"{key}\"");
    trajectory
        .split("\"entry\"")
        .skip(1)
        .filter(|segment| segment.contains(&needle))
        .count()
}

/// Finds the number following the last `"key":` occurrence in `text`.
fn last_value(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.rfind(&needle)?;
    let rest = &text[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (quick_path, trajectory_path) = match (args.get(1), args.get(2)) {
        (Some(q), Some(t)) => (q.clone(), t.clone()),
        _ => {
            eprintln!(
                "usage: bench_gate <quick_summary.json> <trajectory.json> [--tolerance 0.25]"
            );
            return ExitCode::FAILURE;
        }
    };
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    let quick = match std::fs::read_to_string(&quick_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read {quick_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trajectory = match std::fs::read_to_string(&trajectory_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read {trajectory_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_gate: current ({quick_path}) vs committed ({trajectory_path}), tolerance {:.0}%",
        tolerance * 100.0
    );
    println!(
        "{:<20} {:>10} {:>10} {:>8}  verdict",
        "metric", "committed", "current", "ratio"
    );
    let mut failed = false;
    for metric in METRICS {
        let (Some(committed), Some(current)) =
            (last_value(&trajectory, metric), last_value(&quick, metric))
        else {
            println!("{metric:<20} {:>10} {:>10} {:>8}  MISSING", "-", "-", "-");
            failed = true;
            continue;
        };
        let ratio = current / committed;
        let ok = ratio >= 1.0 - tolerance;
        println!(
            "{metric:<20} {committed:>9.2}x {current:>9.2}x {ratio:>8.2}  {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failed = true;
        }
    }
    for metric in ARMED_METRICS {
        let recorded = entries_recording(&trajectory, metric);
        if recorded < 2 {
            println!(
                "{metric:<20} {:>10} {:>10} {:>8}  recorded ({recorded}/2 entries; gate arms at 2)",
                "-", "-", "-"
            );
            continue;
        }
        let (Some(committed), Some(current)) =
            (last_value(&trajectory, metric), last_value(&quick, metric))
        else {
            println!("{metric:<20} {:>10} {:>10} {:>8}  MISSING", "-", "-", "-");
            failed = true;
            continue;
        };
        let ratio = current / committed;
        let ok = ratio >= 1.0 - tolerance;
        println!(
            "{metric:<20} {committed:>9.2}x {current:>9.2}x {ratio:>8.2}  {} (armed)",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failed = true;
        }
    }
    for metric in RECORDED_METRICS {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.2}"));
        println!(
            "{metric:<20} {:>10} {:>10} {:>8}  recorded-only (never gated)",
            fmt(last_value(&trajectory, metric)),
            fmt(last_value(&quick, metric)),
            "-"
        );
    }
    println!(
        "bench_gate: {} gated, {} armed-when-re-recorded, {} recorded-only",
        METRICS.len(),
        ARMED_METRICS.len(),
        RECORDED_METRICS.len()
    );
    if failed {
        eprintln!(
            "bench_gate: FAILED — a gated speedup regressed by more than {:.0}% \
             (or a metric is missing from an input)",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: ok");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_finds_the_newest_entry() {
        let text = r#"[
  { "union_speedup": 2.0, "scales": [ { "minus_speedup": 1.1 } ] },
  { "scales": [ { "union_speedup": 13.55 }, { "minus_speedup": 4.5, "union_speedup": 12.0 } ] }
]"#;
        assert_eq!(last_value(text, "union_speedup"), Some(12.0));
        assert_eq!(last_value(text, "minus_speedup"), Some(4.5));
        assert_eq!(last_value(text, "missing"), None);
    }

    #[test]
    fn last_value_parses_number_shapes() {
        assert_eq!(last_value(r#"{"x": 1.5}"#, "x"), Some(1.5));
        assert_eq!(last_value(r#"{"x":3}"#, "x"), Some(3.0));
        assert_eq!(last_value(r#"{"x": 0.73, "y": 2}"#, "x"), Some(0.73));
    }

    #[test]
    fn metric_classes_are_disjoint() {
        for m in RECORDED_METRICS {
            assert!(
                !METRICS.contains(&m) && !ARMED_METRICS.contains(&m),
                "{m} cannot be both recorded-only and gated"
            );
        }
        for m in ARMED_METRICS {
            assert!(
                !METRICS.contains(&m),
                "{m} cannot be both armed and always-gated"
            );
        }
    }

    #[test]
    fn armed_metrics_count_recording_entries() {
        // one entry records the metric (its quick_gate_baseline repeats it
        // inside the *same* entry) → not yet armed
        let one = r#"[
  { "entry": "pr4", "scales": [ { "union_speedup": 2.0 } ] },
  { "entry": "pr5", "scales": [ { "plan_reorder_speedup": 1.4 } ],
    "quick_gate_baseline": { "plan_reorder_speedup": 1.5 } }
]"#;
        assert_eq!(entries_recording(one, "plan_reorder_speedup"), 1);
        assert_eq!(entries_recording(one, "union_speedup"), 1);
        // a second full run re-records it → armed
        let two = format!(
            "{},\n{}",
            one.trim_end_matches(']'),
            r#"{ "entry": "pr6", "scales": [ { "plan_reorder_speedup": 1.6 } ] } ]"#
        );
        assert_eq!(entries_recording(&two, "plan_reorder_speedup"), 2);
        assert_eq!(entries_recording(&two, "missing"), 0);
    }
}
