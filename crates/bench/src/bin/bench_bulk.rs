//! Before/after measurements of the engine's fast paths, recorded as the
//! `BENCH_fig4_fig6.json` trajectory (one entry per PR that moved them):
//!
//! * **PR 1 (bulk construction)** — the pre-builder idiom preserved
//!   verbatim below: output assembled with per-tuple persistent `insert`
//!   (O(log n) time and `Arc` allocation each), `format!`-per-tuple
//!   attribute qualification, and the nested row × entry relationship
//!   scan; vs the shipped `RelationBuilder` operators.
//! * **PR 2 (parallel operators + merge setops)** — the PR 1 sequential
//!   operators vs the thread-chunked path (`THREADS` env toggles it), and
//!   the PR 1 per-element `by_data`/`BTreeMap` DB setops (preserved
//!   verbatim below) vs the O(n) sorted-merge setops. Measured at the 20k
//!   scale *and* at 1k, where the sequential cutoff must keep the
//!   parallel path disabled (no small-input regression).
//! * **PR 3 (fingerprint cache + parallel differential path)** — the PR 2
//!   merge `minus`/`intersect` (data keys recomputed per shared key;
//!   preserved verbatim below via `TupleF::compute_data_key`) vs the
//!   shipped setops on **cached** per-tuple fingerprints, and `deep_copy`
//!   sequential vs thread-chunked. The cached series reports the
//!   steady-state cost — caches warmed by the warm-up run — which is the
//!   differential-database usage pattern (§4.4: the same base DB diffed
//!   again and again).
//! * **PR 4 (cost-modeled join planning + hash grouping)** — the PR 3
//!   `BTreeMap` grouping (full-`Value` ordered compares per tuple;
//!   preserved verbatim below) vs the shipped fingerprint-hash bucketing,
//!   and the schema join on a fan-out-skewed multi-relationship database
//!   under the old raw-entry-count ordering (`FDM_JOIN_COST=entries`) vs
//!   the statistics-driven ordering (`fdm_core::stats`).
//! * **PR 5 (plan-level join reordering)** — a lazy `Query` with two
//!   chained joins on a fan-out-skewed relation database, executed in
//!   declared order vs the order `Query::optimize_for` picks from the
//!   distinct-count sketches (canonical row ids make the two plans
//!   produce identical keyed data; the sanity block asserts it).
//! * **PR 6 (hardened concurrent commit path)** — `fig11_txn_commit`:
//!   Zipf-contended writer threads committing read-modify-writes through
//!   `Store::run_with` (closure re-derivation on conflict, seeded-backoff
//!   retries on CAS races). Reported as absolute commits/second plus the
//!   mean attempts per commit. **Recorded, never gated** — it is an
//!   absolute machine-dependent number, unlike the before/after ratios
//!   above, so `bench_gate` ignores it by design.
//! * **PR 7 (durability subsystem)** — `fig12_recovery`: commit
//!   throughput with the WAL off / group-commit (`EveryN(32)`) /
//!   fsync-per-commit, and recovery time (`Store::open`) as a function
//!   of WAL length. Both series are medium-dependent (fsync latency,
//!   page-cache state), so like `fig11` they are **recorded, never
//!   gated** — `bench_gate` prints them as recorded-only.
//! * **PR 8 (rule-engine optimizer)** — `fig13_rule_optimizer`: a
//!   three-join chain with a constant-foldable filter conjunct where
//!   only *whole-chain* reordering helps, evaluated as declared vs
//!   after the legacy PR 5 pass (pushdown + adjacent bubble, replayed
//!   as two rules under `ReorderStrategy::Adjacent`) vs the shipped
//!   default rule set (constant folding, pushdown, pruning, greedy
//!   n-way enumeration). `rule_optimizer_speedup` (declared /
//!   rule-engine) is recorded now and arms in `bench_gate` once a
//!   second trajectory entry carries it, like `plan_reorder_speedup`
//!   before it.
//! * **PR 9 (incremental view maintenance)** — `fig14_view_refresh`: a
//!   maintained filter→group view over the customers relation, refreshed
//!   by delta propagation vs from-scratch recompute, across delta batch
//!   sizes (1, 16, 128 changed rows). `view_refresh_speedup` is the
//!   single-row-delta ratio — the maintained path's headline case — and
//!   follows the record-then-arm arc in `bench_gate`.
//!
//! Medians are computed criterion-style (N timed samples, median reported).
//!
//! ```text
//! cargo run -p fdm-bench --bin bench_bulk --release            # full scales
//! cargo run -p fdm-bench --bin bench_bulk --release -- --quick # CI smoke:
//! #   writes the flat bench_quick.json summary consumed by bench_gate
//! #   (override the path with --out <file>)
//! ```

use fdm_bench::standard_config;
use fdm_core::{
    DatabaseF, FdmError, FnValue, Name, RelationF, RelationshipF, Result, TupleF, Value,
};
use fdm_storage::PMap;
use fdm_workload::{generate, to_fdm};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

// ───────────────────────── legacy (before) path ─────────────────────────

/// The old filter: per-tuple persistent inserts into a fresh relation.
fn legacy_filter_fn(rel: &RelationF, pred: impl Fn(&TupleF) -> Result<bool>) -> Result<RelationF> {
    let key_attrs: Vec<&str> = rel.key_attrs().iter().map(|n| n.as_ref()).collect();
    let mut out = RelationF::new(rel.name(), &key_attrs);
    for (key, tuple) in rel.tuples()? {
        if pred(&tuple)? {
            out = out.insert_arc(key, tuple)?;
        }
    }
    Ok(out)
}

#[derive(Clone)]
struct JoinRow {
    bound: BTreeMap<Name, Value>,
    attrs: Vec<(Name, Value)>,
}

/// The old qualification: one `format!` per attribute per tuple.
fn legacy_qualify(tuple: &TupleF, rel_name: &str, out: &mut Vec<(Name, Value)>) -> Result<()> {
    for (attr, v) in tuple.materialize()? {
        out.push((Name::from(format!("{rel_name}.{attr}").as_str()), v));
    }
    Ok(())
}

/// The old schema join: nested rows × entries scan with a compatibility
/// check per pair, outputs built insert-by-insert.
fn legacy_join(db: &DatabaseF) -> Result<RelationF> {
    let relationships: Vec<(Name, Arc<RelationshipF>)> = db
        .relationships()
        .map(|(n, r)| (n.clone(), r.clone()))
        .collect();
    if relationships.is_empty() {
        return Err(FdmError::Other("legacy_join: no relationships".into()));
    }
    let mut rows: Vec<JoinRow> = vec![JoinRow {
        bound: BTreeMap::new(),
        attrs: Vec::new(),
    }];
    for (rname, rsf) in relationships {
        let mut parts: Vec<(Name, Arc<RelationF>)> = Vec::new();
        for p in rsf.participants() {
            parts.push((p.function.clone(), db.relation(&p.function)?));
        }
        let mut next = Vec::new();
        for row in &rows {
            for (args, rattrs) in rsf.iter() {
                let mut compatible = true;
                for ((pname, _), arg) in parts.iter().zip(&args) {
                    if let Some(bound_key) = row.bound.get(pname) {
                        if bound_key != arg {
                            compatible = false;
                            break;
                        }
                    }
                }
                if !compatible {
                    continue;
                }
                let mut new_row = row.clone();
                let mut ok = true;
                for ((pname, prel), arg) in parts.iter().zip(&args) {
                    if new_row.bound.contains_key(pname) {
                        continue;
                    }
                    match prel.lookup(arg) {
                        Some(tuple) => {
                            new_row.bound.insert(pname.clone(), arg.clone());
                            if let Some(p) =
                                rsf.participants().iter().find(|p| &p.function == pname)
                            {
                                new_row.attrs.push((
                                    Name::from(format!("{pname}.{}", p.key).as_str()),
                                    arg.clone(),
                                ));
                            }
                            legacy_qualify(&tuple, pname, &mut new_row.attrs)?;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                for (attr, v) in rattrs.materialize()? {
                    new_row
                        .attrs
                        .push((Name::from(format!("{rname}.{attr}").as_str()), v));
                }
                next.push(new_row);
            }
        }
        rows = next;
    }
    let mut out = RelationF::new("join_result", &["row"]);
    for (i, row) in rows.into_iter().enumerate() {
        let mut b = TupleF::builder(format!("j{i}"));
        for (n, v) in row.attrs {
            b = b.attr(n.as_ref(), v);
        }
        out = out.insert(Value::Int(i as i64), b.build())?;
    }
    Ok(out)
}

// ─────────────────── legacy (PR 1) DB setops path ───────────────────
//
// The per-element idiom the merge setops replaced: index every relation's
// mappings into a `BTreeMap` keyed by primary key (computing every
// tuple's data key up front), merge/filter per element with point
// lookups, then rebuild the output relation entry by entry.

fn legacy_by_data(rel: &RelationF) -> Result<BTreeMap<Value, (Value, Arc<TupleF>)>> {
    let mut out = BTreeMap::new();
    for (key, tuple) in rel.tuples()? {
        // compute_data_key: the PR 1 idiom predates the fingerprint
        // cache, so the baseline must not benefit from it
        let dk = tuple.compute_data_key()?;
        out.insert(key, (dk, tuple));
    }
    Ok(out)
}

fn legacy_rebuild(
    name: &str,
    key_attrs: &[&str],
    entries: impl IntoIterator<Item = (Value, Arc<TupleF>)>,
) -> Result<RelationF> {
    let mut out = fdm_core::RelationBuilder::new(name, key_attrs);
    for (key, tuple) in entries {
        out.push_arc(key, tuple);
    }
    out.build()
}

fn key_attr_strs(rel: &RelationF) -> Vec<&str> {
    rel.key_attrs().iter().map(|n| n.as_ref()).collect()
}

fn legacy_union(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("({} union {})", a.name(), b.name()));
    let mut names: Vec<Name> = Vec::new();
    for (n, e) in a.iter() {
        if matches!(e, FnValue::Relation(_)) {
            names.push(n.clone());
        }
    }
    for (n, e) in b.iter() {
        if matches!(e, FnValue::Relation(_)) && !names.contains(n) {
            names.push(n.clone());
        }
    }
    for name in names {
        let da = match a.relation(&name) {
            Ok(r) => legacy_by_data(&r)?,
            Err(_) => BTreeMap::new(),
        };
        let db_ = match b.relation(&name) {
            Ok(r) => legacy_by_data(&r)?,
            Err(_) => BTreeMap::new(),
        };
        let template = a
            .relation(&name)
            .or_else(|_| b.relation(&name))
            .expect("name came from one of the inputs");
        let mut merged: BTreeMap<Value, (Value, Arc<TupleF>)> = da.clone();
        for (k, v) in &db_ {
            merged.entry(k.clone()).or_insert_with(|| v.clone());
        }
        out = out.with_entry(
            name.as_ref(),
            FnValue::from(legacy_rebuild(
                template.name(),
                &key_attr_strs(&template),
                merged.into_iter().map(|(k, (_, t))| (k, t)),
            )?),
        );
    }
    Ok(out)
}

fn legacy_minus(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("({} − {})", a.name(), b.name()));
    for (name, entry) in a.iter() {
        let FnValue::Relation(ra) = entry else {
            continue;
        };
        let da = legacy_by_data(ra)?;
        let db_ = match b.relation(name) {
            Ok(rb) => legacy_by_data(&rb)?,
            Err(_) => BTreeMap::new(),
        };
        let keep: Vec<(Value, Arc<TupleF>)> = da
            .iter()
            .filter(|(key, (dk, _))| db_.get(*key).is_none_or(|(dk2, _)| dk2 != dk))
            .map(|(key, (_, t))| (key.clone(), t.clone()))
            .collect();
        out = out.with_entry(
            name.as_ref(),
            FnValue::from(legacy_rebuild(ra.name(), &key_attr_strs(ra), keep)?),
        );
    }
    Ok(out)
}

// ─────────────────── legacy (PR 2) merge setops path ───────────────────
//
// The PR 2 implementation preserved verbatim: O(n+m) sorted merges, but
// the data key of every shared-key tuple recomputed from scratch on every
// call (materialize + sort + allocate) — exactly what the per-tuple
// fingerprint cache removed.

fn pr2_key_map(rel: &RelationF) -> Result<PMap<Value, Arc<TupleF>>> {
    if let Some(m) = rel.stored_map() {
        return Ok(m.clone());
    }
    let mut entries = rel.tuples()?;
    if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.reverse();
        entries.dedup_by(|a, b| a.0 == b.0);
        entries.reverse();
    }
    Ok(PMap::from_sorted_vec(entries))
}

fn pr2_data_equal(ta: &TupleF, tb: &TupleF, err: &mut Option<FdmError>) -> bool {
    if err.is_some() {
        return false;
    }
    match (ta.compute_data_key(), tb.compute_data_key()) {
        (Ok(da), Ok(db_)) => da == db_,
        (Err(e), _) | (_, Err(e)) => {
            *err = Some(e);
            false
        }
    }
}

fn pr2_minus(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("({} − {})", a.name(), b.name()));
    for (name, entry) in a.iter() {
        let FnValue::Relation(ra) = entry else {
            continue;
        };
        let ma = pr2_key_map(ra)?;
        let mb = match b.relation(name) {
            Ok(rb) => pr2_key_map(&rb)?,
            Err(_) => PMap::new(),
        };
        let mut err = None;
        let merged = ma.merge_difference_with(&mb, |_, ta, tb| {
            (!pr2_data_equal(ta, tb, &mut err) && err.is_none()).then(|| ta.clone())
        });
        if let Some(e) = err {
            return Err(e);
        }
        let key_attrs = key_attr_strs(ra);
        out = out.with_entry(
            name.as_ref(),
            FnValue::from(RelationF::from_stored_map(ra.name(), &key_attrs, merged)),
        );
    }
    Ok(out)
}

fn pr2_intersect(a: &DatabaseF, b: &DatabaseF) -> Result<DatabaseF> {
    let mut out = DatabaseF::new(format!("({} ∩ {})", a.name(), b.name()));
    for (name, entry) in a.iter() {
        let FnValue::Relation(ra) = entry else {
            continue;
        };
        let Ok(rb) = b.relation(name) else { continue };
        let ma = pr2_key_map(ra)?;
        let mb = pr2_key_map(&rb)?;
        let mut err = None;
        let merged = ma.merge_intersection_with(&mb, |_, ta, tb| {
            pr2_data_equal(ta, tb, &mut err).then(|| ta.clone())
        });
        if let Some(e) = err {
            return Err(e);
        }
        let key_attrs = key_attr_strs(ra);
        out = out.with_entry(
            name.as_ref(),
            FnValue::from(RelationF::from_stored_map(ra.name(), &key_attrs, merged)),
        );
    }
    Ok(out)
}

// ─────────────────── legacy (PR 3) BTreeMap grouping ───────────────────

/// The old grouping: a `BTreeMap` bucket per distinct key, paying
/// O(log g) full-`Value` ordered comparisons per tuple (preserved
/// verbatim; the shipped `group_fn` buckets by fingerprint hash and
/// compares full values only on hash collision).
fn legacy_group_fn(rel: &RelationF, key: impl Fn(&TupleF) -> Result<Value>) -> Result<RelationF> {
    let mut buckets: BTreeMap<Value, Vec<Arc<TupleF>>> = BTreeMap::new();
    for (_, tuple) in rel.tuples()? {
        let k = key(&tuple)?;
        buckets.entry(k).or_default().push(tuple);
    }
    Ok(RelationF::from_groups(
        format!("{}_groups", rel.name()),
        &["key"],
        buckets,
    ))
}

// ──────────────── PR 4 join-ordering measurement input ────────────────

/// A database where raw-entry-count relationship ordering and the
/// fan-out-aware cost model disagree (the `join_planning` test scenario,
/// scaled): after the seed relationship `r1(a, b)` binds, `r2(b, c)` has
/// `n` entries at fan-out 1 while `r3(b, d)` has `n/2` entries piled onto
/// few `b` keys at fan-out 10. Entry count binds `r3` first and multiplies
/// the working rows tenfold before the expensive extension; the cost model
/// binds `r2` first.
fn join_order_db(n: usize) -> DatabaseF {
    use fdm_core::{Domain, Participant, RelationBuilder, RelationshipBuilder, SharedDomain};
    let n = n.max(100) as i64;
    let seeds = n / 20;
    let dom = |name: &str| SharedDomain::new(name, Domain::Typed(fdm_core::ValueType::Int));
    let (aid, bid, cid, did) = (dom("aid"), dom("bid"), dom("cid"), dom("did"));
    let int_rel = |name: &str, key: &str, rows: i64| {
        let mut b = RelationBuilder::new(name, &[key]);
        for i in 1..=rows {
            b.push(
                Value::Int(i),
                TupleF::builder(format!("{name}{i}"))
                    .attr("tag", format!("{name}_{i}"))
                    .build(),
            );
        }
        b.build().expect("ascending keys")
    };
    let mut r1 = RelationshipBuilder::new(
        "r1",
        vec![
            Participant::new("a", "aid", aid.clone()),
            Participant::new("b", "bid", bid.clone()),
        ],
    );
    for i in 1..=seeds {
        r1.push_link(&[Value::Int(i % 100 + 1), Value::Int(i)])
            .expect("in domain");
    }
    let mut r2 = RelationshipBuilder::new(
        "r2",
        vec![
            Participant::new("b", "bid", bid.clone()),
            Participant::new("c", "cid", cid.clone()),
        ],
    );
    for i in 1..=n {
        r2.push_link(&[Value::Int(i), Value::Int(i)])
            .expect("in domain");
    }
    let mut r3 = RelationshipBuilder::new(
        "r3",
        vec![
            Participant::new("b", "bid", bid.clone()),
            Participant::new("d", "did", did.clone()),
        ],
    );
    for b in 1..=seeds {
        for d in 1..=10 {
            r3.push_link(&[Value::Int(b), Value::Int(d)])
                .expect("in domain");
        }
    }
    DatabaseF::new("fanout")
        .with_domain(aid)
        .with_domain(bid)
        .with_domain(cid)
        .with_domain(did)
        .with_relation(int_rel("a", "aid", 100))
        .with_relation(int_rel("b", "bid", n))
        .with_relation(int_rel("c", "cid", n))
        .with_relation(int_rel("d", "did", 10))
        .with_relationship(r1.build().expect("unique"))
        .with_relationship(r2.build().expect("unique"))
        .with_relationship(r3.build().expect("unique"))
}

/// A relation database where the declared plan-level join order is the
/// expensive one (the `plan_reordering` test scenario, scaled): `base`
/// rows fan out 10× into `wide.k` (a non-key attribute whose distinct
/// count only the sketch can see) but exactly 1× into `narrow.k2`. The
/// declared query binds `wide` first and multiplies the working rows
/// tenfold before the cheap extension; `Query::optimize_for` swaps the
/// two joins.
fn plan_reorder_db(n: usize) -> fdm_core::DatabaseF {
    use fdm_core::RelationBuilder;
    let seeds = (n / 10).max(50) as i64;
    let mut base = RelationBuilder::new("base", &["id"]);
    for i in 1..=seeds {
        base.push(
            Value::Int(i),
            TupleF::builder("b").attr("wk", i).attr("nk", i).build(),
        );
    }
    let mut wide = RelationBuilder::new("wide", &["wid"]);
    let mut wid = 0i64;
    for k in 1..=seeds {
        for _ in 0..10 {
            wid += 1;
            wide.push(
                Value::Int(wid),
                TupleF::builder("w").attr("k", k).attr("wv", wid).build(),
            );
        }
    }
    let mut narrow = RelationBuilder::new("narrow", &["nid"]);
    for k in 1..=seeds {
        narrow.push(
            Value::Int(k),
            TupleF::builder("nr")
                .attr("k2", k)
                .attr("nv", k * 7)
                .build(),
        );
    }
    DatabaseF::new("plan_reorder")
        .with_relation(base.build().expect("ascending keys"))
        .with_relation(wide.build().expect("ascending keys"))
        .with_relation(narrow.build().expect("ascending keys"))
}

/// Runs `f` with `FDM_JOIN_COST` pinned (the join planner reads it per
/// call), restoring the previous value afterwards.
fn with_join_cost<T>(mode: Option<&str>, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("FDM_JOIN_COST").ok();
    match mode {
        Some(v) => std::env::set_var("FDM_JOIN_COST", v),
        None => std::env::remove_var("FDM_JOIN_COST"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("FDM_JOIN_COST", v),
        None => std::env::remove_var("FDM_JOIN_COST"),
    }
    out
}

// ───────────────────────── measurement harness ─────────────────────────

/// Criterion-style median: `samples` timed runs, median per-run nanos.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    // one warm-up run outside the timings
    f();
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Runs `f` with the `THREADS` override set (the parallel layer reads it
/// per call), restoring the previous value afterwards.
fn with_threads<T>(n: &str, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("THREADS").ok();
    std::env::set_var("THREADS", n);
    let out = f();
    match saved {
        Some(v) => std::env::set_var("THREADS", v),
        None => std::env::remove_var("THREADS"),
    }
    out
}

/// Like [`with_threads`], additionally pinning `FDM_PAR_CUTOFF` so a
/// series exercises the chunked path even at the CI smoke scale (whose
/// relations sit below the production cutoff) — quick-gate ratios must
/// measure the same code path the committed full-scale numbers did.
fn with_threads_cutoff<T>(n: &str, cutoff: &str, f: impl FnOnce() -> T) -> T {
    let saved = std::env::var("FDM_PAR_CUTOFF").ok();
    std::env::set_var("FDM_PAR_CUTOFF", cutoff);
    let out = with_threads(n, f);
    match saved {
        Some(v) => std::env::set_var("FDM_PAR_CUTOFF", v),
        None => std::env::remove_var("FDM_PAR_CUTOFF"),
    }
    out
}

/// The speedup ratios the CI regression gate (`bench_gate`) tracks, plus
/// the reported-but-ungated join-ordering ratio.
struct GateMetrics {
    union_speedup: f64,
    minus_speedup: f64,
    intersect_speedup: f64,
    deep_copy_speedup: f64,
    group_speedup: f64,
    join_order_speedup: f64,
    plan_reorder_speedup: f64,
    rule_optimizer_speedup: f64,
    view_refresh_speedup: f64,
    /// Absolute commits/second — recorded in the summary for trend
    /// visibility, never ratio-gated (machine-dependent).
    txn_commit_throughput: f64,
}

/// One scale's measurements, as a JSON object string plus the gate ratios.
fn measure_scale(orders: usize, samples: usize, par_threads: &str) -> (String, GateMetrics) {
    let db = to_fdm(&generate(&standard_config(orders)));
    let customers = db.relation("customers").unwrap();
    println!(
        "bench_bulk: {} orders, {} customers, {} samples per series",
        orders,
        customers.len(),
        samples
    );

    // PR 1 comparison (kept so the trajectory tracks it over time): the
    // per-tuple-insert idiom vs the sequential builder path.
    let pred = |t: &TupleF| Ok(t.get("age")?.as_int("age")? > 42);
    let before_filter = with_threads("1", || {
        median_ns(samples, || {
            black_box(legacy_filter_fn(&customers, pred).unwrap());
        })
    });
    let seq_filter = with_threads("1", || {
        median_ns(samples, || {
            black_box(fdm_fql::filter_fn(&customers, pred).unwrap());
        })
    });
    let par_filter = with_threads(par_threads, || {
        median_ns(samples, || {
            black_box(fdm_fql::filter_fn(&customers, pred).unwrap());
        })
    });

    let before_join = with_threads("1", || {
        median_ns(samples, || {
            black_box(legacy_join(&db).unwrap());
        })
    });
    let seq_join = with_threads("1", || {
        median_ns(samples, || {
            black_box(fdm_fql::join(&db).unwrap());
        })
    });
    let par_join = with_threads(par_threads, || {
        median_ns(samples, || {
            black_box(fdm_fql::join(&db).unwrap());
        })
    });

    // PR 2 merge setops: a changed copy (50 extra customers, like the
    // fig9 criterion bench), then DB-level union and difference through
    // the PR 1 per-element path vs the sorted-merge path.
    let changed = {
        let mut changed = fdm_fql::deep_copy(&db).unwrap();
        for i in 0..50i64 {
            changed = fdm_fql::db_upsert(
                &changed,
                "customers",
                Value::Int(1_000_000 + i),
                TupleF::builder("c")
                    .attr("name", format!("new{i}"))
                    .attr("age", 20 + i)
                    .attr("state", "NV")
                    .build(),
            )
            .unwrap();
        }
        changed
    };
    let union_insert = median_ns(samples, || {
        black_box(legacy_union(&db, &changed).unwrap());
    });
    let union_merge = median_ns(samples, || {
        black_box(fdm_fql::union(&db, &changed).unwrap());
    });
    let minus_insert = median_ns(samples, || {
        black_box(legacy_minus(&db, &changed).unwrap());
    });

    // PR 3: the PR 2 merge setops (data keys recomputed per shared key,
    // every call) vs the shipped cached-fingerprint setops. The shipped
    // series runs warm — the warm-up inside median_ns fills every cache —
    // reporting the steady-state differential cost.
    let minus_uncached = median_ns(samples, || {
        black_box(pr2_minus(&db, &changed).unwrap());
    });
    let minus_cached = median_ns(samples, || {
        black_box(fdm_fql::minus(&db, &changed).unwrap());
    });
    let intersect_uncached = median_ns(samples, || {
        black_box(pr2_intersect(&db, &changed).unwrap());
    });
    let intersect_cached = median_ns(samples, || {
        black_box(fdm_fql::intersect(&db, &changed).unwrap());
    });

    // PR 4: BTreeMap bucketing vs fingerprint-hash bucketing, THREADS=1 on
    // both sides so the comparison isolates the bucketing structure (the
    // parallel layer only chunks key evaluation, identically for both).
    // The workload is the canonical grouping shape — many tuples per
    // group, string keys: the flattened order entries grouped by date
    // (~336 distinct `"2026-mm-dd"` strings). Placing a tuple costs the
    // BTreeMap O(log g) prefix-heavy string compares; the hash path pays
    // one FxHash plus a single equality against its (singleton) hash
    // bucket. (With all-distinct keys the two converge: the hash path's
    // final deterministic key sort re-pays what the tree paid up front.)
    let orders_flat = db.relationship("order").unwrap().to_relation();
    let group_key = |t: &TupleF| t.get("date");
    let group_btree = with_threads("1", || {
        median_ns(samples, || {
            black_box(legacy_group_fn(&orders_flat, group_key).unwrap());
        })
    });
    let group_hash = with_threads("1", || {
        median_ns(samples, || {
            black_box(fdm_fql::group_fn(&orders_flat, group_key).unwrap());
        })
    });

    // PR 4: schema join under raw-entry-count relationship ordering vs the
    // fan-out-aware cost model, on the multi-relationship database where
    // the two plans differ.
    let fan_db = join_order_db(orders);
    let join_by_entries = with_threads("1", || {
        with_join_cost(Some("entries"), || {
            median_ns(samples, || {
                black_box(fdm_fql::join(&fan_db).unwrap());
            })
        })
    });
    let join_by_stats = with_threads("1", || {
        with_join_cost(None, || {
            median_ns(samples, || {
                black_box(fdm_fql::join(&fan_db).unwrap());
            })
        })
    });

    // PR 5: lazy-plan joins in declared order vs the sketch-driven order
    // `optimize_for` picks (both plans computed once, outside the
    // timings; canonical row ids make the outputs identical keyed data).
    let reorder_db = plan_reorder_db(orders);
    let plan_q = fdm_fql::plan::Query::scan("base")
        .join("wide", "wk", "k")
        .join("narrow", "nk", "k2");
    let plan_reordered = plan_q.clone().optimize_for(&reorder_db);
    let reorder_declared = with_threads("1", || {
        median_ns(samples, || {
            black_box(plan_q.eval(&reorder_db).unwrap());
        })
    });
    let reorder_optimized = with_threads("1", || {
        median_ns(samples, || {
            black_box(plan_reordered.eval(&reorder_db).unwrap());
        })
    });

    // PR 8: the rule-engine optimizer on the three-join chain fixture,
    // where only whole-chain reordering helps: the declared plan as-is,
    // after the legacy PR 5 pass (pushdown + adjacent bubble — the (a, b)
    // pair is pinned dependent and (b, c) is an exact cost tie, so the
    // bubble cannot escape the local optimum), and after the shipped
    // default rule set (constant folding strips the tautological
    // conjunct, pushdown sinks the filter, the greedy enumerator binds
    // the fan-out-1 `c` join first). Strategies are pinned through
    // OptimizerConfig so the process environment cannot skew a series;
    // plans are computed once, outside the timings.
    let chain_rows = (orders / 10).max(50);
    let rule_db = fdm_fql::testutil::chain_db_scaled(chain_rows, 8);
    let rule_pred = format!("2 > 1 and ck <= {}", chain_rows as i64 / 2);
    let rule_q = fdm_fql::plan::Query::scan("base")
        .join("a", "ak", "k")
        .join("b", "a.av", "k2")
        .join("c", "ck", "k3")
        .filter(&rule_pred, fdm_expr::Params::new());
    let (rule_legacy_plan, rule_engine_plan) = {
        use fdm_fql::optimizer::{
            AdjacentJoinReorder, JoinCostModel, Optimizer, OptimizerConfig, PredicatePushdown,
            ReorderStrategy,
        };
        let pinned = OptimizerConfig::new().with_join_cost(JoinCostModel::Stats);
        let legacy = Optimizer::new()
            .with_rule(Box::new(PredicatePushdown))
            .with_rule(Box::new(AdjacentJoinReorder))
            .with_config(pinned.with_reorder(ReorderStrategy::Adjacent))
            .optimize(rule_q.clone(), &rule_db);
        let engine = Optimizer::default()
            .with_config(pinned.with_reorder(ReorderStrategy::Greedy))
            .optimize(rule_q.clone(), &rule_db);
        (legacy, engine)
    };
    let rule_declared = with_threads("1", || {
        median_ns(samples, || {
            black_box(rule_q.eval(&rule_db).unwrap());
        })
    });
    let rule_legacy = with_threads("1", || {
        median_ns(samples, || {
            black_box(rule_legacy_plan.eval(&rule_db).unwrap());
        })
    });
    let rule_engine = with_threads("1", || {
        median_ns(samples, || {
            black_box(rule_engine_plan.eval(&rule_db).unwrap());
        })
    });

    // PR 6: concurrent commit throughput over the retail store — 4 Zipf-
    // contended writer threads of read-modify-write transactions through
    // Store::run_with. One timed run (not median_ns: the store mutates, so
    // every run starts from a fresh store and the op count amortizes the
    // noise). Absolute number: recorded, never gated.
    let txn_cfg = fdm_workload::MixedConfig {
        threads: 4,
        ops_per_thread: 250,
        seed: 0xFD17,
        skew: 0.8,
    };
    let txn_store = fdm_workload::retail_store(&standard_config(orders));
    let txn_start = Instant::now();
    let txn_records = fdm_workload::run_writers(&txn_store, &txn_cfg);
    let txn_elapsed = txn_start.elapsed();
    let txn_commits = txn_records.len();
    let txn_throughput = txn_commits as f64 / txn_elapsed.as_secs_f64();
    let txn_mean_attempts =
        txn_records.iter().map(|r| r.attempts).sum::<usize>() as f64 / txn_commits.max(1) as f64;

    // PR 9: incremental view maintenance vs recompute. A maintained
    // filter→group view over the customers relation; per delta batch
    // size, one refresh cycle is "advance to the changed database and
    // back" — the incremental side applies the two row deltas through
    // the view's operator tree, the recompute side evaluates the same
    // plan from scratch twice. The batch updates bump ages across the
    // filter boundary so rows genuinely enter and leave the view.
    let view_q = fdm_fql::plan::Query::scan("customers")
        .filter("age > 42", fdm_expr::Params::new())
        .group_agg(
            &["state"],
            &[
                ("n", fdm_fql::AggSpec::Count),
                ("sum_age", fdm_fql::AggSpec::Sum("age".into())),
            ],
        );
    let n_customers = customers.len();
    let mut view_series = Vec::new();
    let mut view_refresh_speedup = f64::NAN;
    for batch in [1usize, 16, 128] {
        let mut db2 = db.clone();
        let stride = (n_customers / batch).max(1);
        for i in 0..batch {
            let key = Value::Int(((i * stride) % n_customers) as i64 + 1);
            let t = customers.lookup(&key).expect("generated cids are dense");
            let age = t.get("age").unwrap().as_int("age").unwrap();
            // 43 - age flips rows across the `age > 42` boundary
            db2 = fdm_fql::db_upsert(&db2, "customers", key, t.with_attr("age", 85 - age)).unwrap();
        }
        let fwd = fdm_core::DbDelta::between(&db, &db2).unwrap();
        let back = fdm_core::DbDelta::between(&db2, &db).unwrap();
        let mut view = fdm_fql::MaintainedView::new("fig14", view_q.clone(), &db).unwrap();
        let view_incremental = with_threads("1", || {
            median_ns(samples, || {
                black_box(view.apply(&db2, &fwd).unwrap());
                black_box(view.apply(&db, &back).unwrap());
            })
        });
        let view_recompute = with_threads("1", || {
            median_ns(samples, || {
                black_box(view_q.eval(&db2).unwrap());
                black_box(view_q.eval(&db).unwrap());
            })
        });
        // the maintained result must equal the recompute before the
        // ratio is published (ends on `db` after the backward delta)
        view.apply(&db2, &fwd).unwrap();
        let maintained = view.relation();
        let fresh = view_q.eval(&db2).unwrap();
        assert_eq!(
            maintained.stored_keys(),
            fresh.stored_keys(),
            "fig14: maintained view diverges in keys at batch {batch}"
        );
        view.apply(&db, &back).unwrap();
        let speedup = view_recompute / view_incremental;
        if batch == 1 {
            view_refresh_speedup = speedup;
        }
        view_series.push(format!(
            "{{ \"delta_rows\": {batch}, \"incremental_median_ns\": {view_incremental}, \"recompute_median_ns\": {view_recompute}, \"speedup\": {speedup:.2} }}"
        ));
    }
    let view_series = view_series.join(", ");

    // PR 3: deep_copy sequential vs thread-chunked. The cutoff is pinned
    // low so the chunked path is exercised at every scale (the CI smoke
    // scale sits below the production cutoff).
    let deep_copy_seq = with_threads("1", || {
        median_ns(samples, || {
            black_box(fdm_fql::deep_copy(&db).unwrap());
        })
    });
    let deep_copy_par = with_threads_cutoff(par_threads, "64", || {
        median_ns(samples, || {
            black_box(fdm_fql::deep_copy(&db).unwrap());
        })
    });

    // sanity: every path agrees before we publish numbers
    assert_eq!(
        legacy_filter_fn(&customers, pred).unwrap().len(),
        with_threads(par_threads, || fdm_fql::filter_fn(&customers, pred)
            .unwrap()
            .len())
    );
    assert_eq!(
        legacy_join(&db).unwrap().len(),
        with_threads(par_threads, || fdm_fql::join(&db).unwrap().len())
    );
    let lu = legacy_union(&db, &changed).unwrap();
    let mu = fdm_fql::union(&db, &changed).unwrap();
    let lm = legacy_minus(&changed, &db).unwrap();
    let mm = fdm_fql::minus(&changed, &db).unwrap();
    let pm = pr2_minus(&changed, &db).unwrap();
    let mi = fdm_fql::intersect(&db, &changed).unwrap();
    let pi = pr2_intersect(&db, &changed).unwrap();
    for name in ["customers", "products", "orders_flat"] {
        if let (Ok(lr), Ok(mr)) = (lu.relation(name), mu.relation(name)) {
            assert_eq!(lr.len(), mr.len(), "union diverges on {name}");
        }
        if let (Ok(lr), Ok(mr)) = (lm.relation(name), mm.relation(name)) {
            assert_eq!(lr.len(), mr.len(), "minus diverges on {name}");
        }
        if let (Ok(lr), Ok(mr)) = (pm.relation(name), mm.relation(name)) {
            assert_eq!(lr.len(), mr.len(), "cached minus diverges on {name}");
        }
        if let (Ok(lr), Ok(mr)) = (pi.relation(name), mi.relation(name)) {
            assert_eq!(lr.len(), mr.len(), "cached intersect diverges on {name}");
        }
    }
    let dc_seq = with_threads("1", || fdm_fql::deep_copy(&db).unwrap());
    let dc_par = with_threads_cutoff(par_threads, "64", || fdm_fql::deep_copy(&db).unwrap());
    assert!(
        fdm_fql::difference(&dc_seq, &dc_par).unwrap().is_empty(),
        "parallel deep_copy diverges from sequential"
    );
    // hash-bucketed grouping must reproduce the BTreeMap output exactly
    let lg = legacy_group_fn(&orders_flat, group_key).unwrap();
    let hg = fdm_fql::group_fn(&orders_flat, group_key).unwrap();
    assert_eq!(lg.stored_keys(), hg.as_relation().stored_keys());
    assert_eq!(lg.len(), hg.as_relation().len());
    // both join orderings must produce identical denormalized data
    let je = with_join_cost(Some("entries"), || fdm_fql::join(&fan_db).unwrap());
    let js = with_join_cost(None, || fdm_fql::join(&fan_db).unwrap());
    assert_eq!(je.len(), js.len(), "join plans diverge in cardinality");
    let data_keys = |rel: &RelationF| {
        let mut keys: Vec<Value> = rel
            .tuples()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.data_key().unwrap())
            .collect();
        keys.sort();
        keys
    };
    assert_eq!(data_keys(&je), data_keys(&js), "join plans diverge in data");
    // the reordered lazy plan must genuinely differ from the declared one
    // and still produce identical keyed data (canonical row ids)
    assert_ne!(
        plan_q.explain(),
        plan_reordered.explain(),
        "optimize_for should reorder the skewed plan"
    );
    let pd = plan_q.eval(&reorder_db).unwrap();
    let po = plan_reordered.eval(&reorder_db).unwrap();
    assert_eq!(pd.stored_keys(), po.stored_keys(), "canonical ids agree");
    assert_eq!(
        data_keys(&pd),
        data_keys(&po),
        "plan reorder diverges in data"
    );

    // the rule-engine plan must genuinely differ from both the declared
    // and the legacy-pass plan (otherwise the series measures noise) and
    // all three must produce identical keyed data (canonical row ids)
    assert_ne!(
        rule_q.explain(),
        rule_engine_plan.explain(),
        "default rules should rewrite the chain plan"
    );
    assert_ne!(
        rule_legacy_plan.explain(),
        rule_engine_plan.explain(),
        "greedy enumeration should beat the adjacent bubble on the chain"
    );
    let cd = rule_q.eval(&rule_db).unwrap();
    let cl = rule_legacy_plan.eval(&rule_db).unwrap();
    let cr = rule_engine_plan.eval(&rule_db).unwrap();
    assert_eq!(cd.stored_keys(), cr.stored_keys(), "canonical ids agree");
    assert_eq!(
        data_keys(&cd),
        data_keys(&cr),
        "rule engine diverges in data"
    );
    assert_eq!(
        data_keys(&cd),
        data_keys(&cl),
        "legacy pass diverges in data"
    );

    // the throughput run must have installed exactly one version per
    // commit (no lost updates, no double-installs)
    assert_eq!(
        txn_store.version(),
        txn_commits as u64,
        "txn throughput run: one version per commit"
    );

    let gate = GateMetrics {
        union_speedup: union_insert / union_merge,
        minus_speedup: minus_uncached / minus_cached,
        intersect_speedup: intersect_uncached / intersect_cached,
        deep_copy_speedup: deep_copy_seq / deep_copy_par,
        group_speedup: group_btree / group_hash,
        join_order_speedup: join_by_entries / join_by_stats,
        plan_reorder_speedup: reorder_declared / reorder_optimized,
        rule_optimizer_speedup: rule_declared / rule_engine,
        view_refresh_speedup,
        txn_commit_throughput: txn_throughput,
    };
    let json = format!(
        "    {{\n      \"scale_orders\": {orders},\n      \"samples\": {samples},\n      \"fig4_filter\": {{ \"before_median_ns\": {before_filter}, \"after_median_ns\": {seq_filter}, \"speedup\": {:.2} }},\n      \"fig6_join\": {{ \"before_median_ns\": {before_join}, \"after_median_ns\": {seq_join}, \"speedup\": {:.2} }},\n      \"fig4_filter_parallel\": {{ \"sequential_median_ns\": {seq_filter}, \"parallel_median_ns\": {par_filter}, \"threads\": {par_threads}, \"speedup\": {:.2} }},\n      \"fig6_join_parallel\": {{ \"sequential_median_ns\": {seq_join}, \"parallel_median_ns\": {par_join}, \"threads\": {par_threads}, \"speedup\": {:.2} }},\n      \"fig9_union\": {{ \"per_element_median_ns\": {union_insert}, \"merge_median_ns\": {union_merge}, \"union_speedup\": {:.2} }},\n      \"fig9_minus\": {{ \"per_element_median_ns\": {minus_insert}, \"uncached_merge_median_ns\": {minus_uncached}, \"cached_merge_median_ns\": {minus_cached}, \"minus_speedup\": {:.2} }},\n      \"fig9_intersect\": {{ \"uncached_merge_median_ns\": {intersect_uncached}, \"cached_merge_median_ns\": {intersect_cached}, \"intersect_speedup\": {:.2} }},\n      \"fig9_deep_copy\": {{ \"sequential_median_ns\": {deep_copy_seq}, \"parallel_median_ns\": {deep_copy_par}, \"threads\": {par_threads}, \"deep_copy_speedup\": {:.2} }},\n      \"fig4_group\": {{ \"btreemap_median_ns\": {group_btree}, \"hash_median_ns\": {group_hash}, \"group_speedup\": {:.2} }},\n      \"fig6_join_order\": {{ \"entry_count_median_ns\": {join_by_entries}, \"cost_model_median_ns\": {join_by_stats}, \"join_order_speedup\": {:.2} }},\n      \"fig6_plan_reorder\": {{ \"declared_median_ns\": {reorder_declared}, \"reordered_median_ns\": {reorder_optimized}, \"plan_reorder_speedup\": {:.2} }},\n      \"fig13_rule_optimizer\": {{ \"declared_median_ns\": {rule_declared}, \"legacy_pass_median_ns\": {rule_legacy}, \"rule_engine_median_ns\": {rule_engine}, \"legacy_pass_speedup\": {:.2}, \"rule_optimizer_speedup\": {:.2} }},\n      \"fig14_view_refresh\": {{ \"series\": [ {view_series} ], \"view_refresh_speedup\": {:.2} }},\n      \"fig11_txn_commit\": {{ \"threads\": {}, \"commits\": {txn_commits}, \"elapsed_ms\": {:.1}, \"mean_attempts\": {txn_mean_attempts:.3}, \"txn_commit_throughput\": {txn_throughput:.0} }}\n    }}",
        before_filter / seq_filter,
        before_join / seq_join,
        seq_filter / par_filter,
        seq_join / par_join,
        gate.union_speedup,
        gate.minus_speedup,
        gate.intersect_speedup,
        gate.deep_copy_speedup,
        gate.group_speedup,
        gate.join_order_speedup,
        gate.plan_reorder_speedup,
        rule_declared / rule_legacy,
        gate.rule_optimizer_speedup,
        gate.view_refresh_speedup,
        txn_cfg.threads,
        txn_elapsed.as_secs_f64() * 1_000.0,
    );
    (json, gate)
}

// ──────────────── PR 7: durability / recovery measurement ────────────────

/// Scratch directory for one durability measurement, wiped before use.
fn recovery_scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fdm-bench-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Commits/second of the concurrent retail writer mix against `store`.
fn writer_tps(store: &Arc<fdm_txn::Store>, cfg: &fdm_workload::MixedConfig) -> f64 {
    let start = Instant::now();
    let records = fdm_workload::run_writers(store, cfg);
    records.len() as f64 / start.elapsed().as_secs_f64()
}

/// The `fig12_recovery` block: WAL commit overhead (throughput with the
/// WAL off vs group-commit vs fsync-per-commit, same writer mix, fresh
/// store each) and recovery time vs WAL length (`Store::open` on a log
/// of `n` commits, no checkpoint to anchor closer than version 0).
/// Returns `(json, wal_commit_overhead, recovery_replay_per_sec)`.
fn measure_recovery(quick: bool) -> (String, f64, f64) {
    use fdm_txn::{DurabilityConfig, Store, StoreConfig, SyncPolicy};

    let retail = standard_config(2_000);
    let txn_cfg = fdm_workload::MixedConfig {
        threads: 4,
        ops_per_thread: if quick { 100 } else { 250 },
        seed: 0xFD17,
        skew: 0.8,
    };
    let commits = txn_cfg.threads * txn_cfg.ops_per_thread;
    println!("fig12_recovery: {commits} commits per throughput series");

    let wal_off_tps = writer_tps(&fdm_workload::retail_store(&retail), &txn_cfg);
    let durable = |tag: &str, sync: SyncPolicy| {
        let dir = recovery_scratch(tag);
        let dcfg = DurabilityConfig::new(&dir)
            .with_sync(sync)
            .with_checkpoint_every(None);
        let store = fdm_workload::durable_retail_store(&retail, dcfg).expect("fresh scratch dir");
        let tps = writer_tps(&store, &txn_cfg);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        tps
    };
    let wal_group_tps = durable("group", SyncPolicy::EveryN(32));
    let wal_fsync_tps = durable("fsync", SyncPolicy::Always);
    let wal_commit_overhead = wal_off_tps / wal_group_tps;

    // recovery time vs WAL length: a plain kv store (tiny writesets, so
    // the series tracks replay machinery, not tuple size), built with
    // fsync off (setup speed; recovery cost does not depend on it) and
    // auto-checkpointing disabled so every run replays the full log.
    let lengths: &[u64] = if quick {
        &[50, 200, 800]
    } else {
        &[200, 800, 3_200]
    };
    let mut series = Vec::new();
    let mut replay_per_sec = 0.0;
    for &n in lengths {
        let dir = recovery_scratch(&format!("len{n}"));
        let dcfg = DurabilityConfig::new(&dir)
            .with_sync(SyncPolicy::Never)
            .with_checkpoint_every(None);
        let db = DatabaseF::new("ledger").with_relation(RelationF::new("kv", &["k"]));
        let store = Store::create(
            db,
            StoreConfig {
                durability: Some(dcfg),
                ..StoreConfig::default()
            },
        )
        .expect("fresh scratch dir");
        for i in 1..=n as i64 {
            store
                .run(|txn| {
                    txn.upsert(
                        "kv",
                        Value::Int(i % 64),
                        TupleF::builder("t").attr("v", i).build(),
                    )
                })
                .expect("uncontended commit");
        }
        drop(store);
        let wal_bytes: u64 = std::fs::read_dir(&dir)
            .expect("scratch dir exists")
            .filter_map(|e| {
                let e = e.expect("readable entry");
                (e.path().extension().and_then(|s| s.to_str()) == Some("seg"))
                    .then(|| e.metadata().expect("metadata").len())
            })
            .sum();
        let mut opens: Vec<f64> = (0..3)
            .map(|_| {
                let start = Instant::now();
                let back = Store::open(&dir).expect("clean log reopens");
                assert_eq!(back.version(), n, "recovery replays the whole log");
                start.elapsed().as_secs_f64()
            })
            .collect();
        opens.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let open_s = opens[opens.len() / 2];
        replay_per_sec = n as f64 / open_s;
        println!(
            "fig12_recovery: {n} commits, {wal_bytes} WAL bytes, open {:.1} ms ({replay_per_sec:.0} commits/s)",
            open_s * 1_000.0
        );
        series.push(format!(
            "      {{ \"commits\": {n}, \"wal_bytes\": {wal_bytes}, \"open_ms\": {:.2}, \"replay_per_sec\": {replay_per_sec:.0} }}",
            open_s * 1_000.0
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let json = format!(
        "  {{\n    \"txn_threads\": {},\n    \"commits\": {commits},\n    \"wal_off_tps\": {wal_off_tps:.0},\n    \"wal_group_commit_tps\": {wal_group_tps:.0},\n    \"wal_fsync_always_tps\": {wal_fsync_tps:.0},\n    \"wal_commit_overhead\": {wal_commit_overhead:.3},\n    \"recovery\": [\n{}\n    ],\n    \"recovery_replay_per_sec\": {replay_per_sec:.0}\n  }}",
        txn_cfg.threads,
        series.join(",\n")
    );
    (json, wal_commit_overhead, replay_per_sec)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let quick_out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("bench_quick.json");
    let (scales, samples, out_path): (Vec<usize>, usize, Option<&str>) = if quick {
        (vec![2_000], 7, None)
    } else {
        (vec![1_000, 20_000], 15, Some("BENCH_fig4_fig6.json"))
    };
    let par_threads = "4";

    let mut scale_reports = Vec::new();
    let mut last_gate = None;
    for orders in scales {
        let (json, gate) = measure_scale(orders, samples, par_threads);
        scale_reports.push(json);
        last_gate = Some(gate);
    }
    // fig12 runs once per entry: its series are WAL-length-parameterized
    // already, independent of the retail scale loop above.
    let (fig12, wal_commit_overhead, recovery_replay_per_sec) = measure_recovery(quick);
    let entry = if quick {
        format!(
            "{{\n  \"entry\": \"pr9_view_maintenance\",\n  \"scales\": [\n{}\n  ],\n  \"fig12_recovery\":\n{fig12}\n}}",
            scale_reports.join(",\n")
        )
    } else {
        // Full runs additionally record the gate baseline at the *quick*
        // scale, placed last in the entry: `bench_gate` scans for the
        // last occurrence of each `*_speedup` key, so the committed
        // numbers it compares against are measured at exactly the scale
        // the CI quick run reproduces. (`fig12_recovery` carries no
        // `*_speedup` keys, so its placement is inert to the gate.)
        let (baseline, _) = measure_scale(2_000, samples, par_threads);
        format!(
            "{{\n  \"entry\": \"pr9_view_maintenance\",\n  \"scales\": [\n{}\n  ],\n  \"fig12_recovery\":\n{fig12},\n  \"quick_gate_baseline\":\n{baseline}\n}}",
            scale_reports.join(",\n")
        )
    };
    println!("{entry}");

    if quick {
        // Machine-readable summary for the CI regression gate: one flat
        // object, one `<metric>_speedup` key per gated ratio, plus the
        // recorded-only absolute txn throughput (bench_gate never gates
        // it — see ARMED_METRICS there).
        let g = last_gate.expect("at least one scale ran");
        let summary = format!(
            "{{\n  \"entry\": \"bench_quick\",\n  \"samples\": {samples},\n  \"union_speedup\": {:.3},\n  \"minus_speedup\": {:.3},\n  \"intersect_speedup\": {:.3},\n  \"deep_copy_speedup\": {:.3},\n  \"group_speedup\": {:.3},\n  \"join_order_speedup\": {:.3},\n  \"plan_reorder_speedup\": {:.3},\n  \"rule_optimizer_speedup\": {:.3},\n  \"view_refresh_speedup\": {:.3},\n  \"txn_commit_throughput\": {:.0},\n  \"wal_commit_overhead\": {wal_commit_overhead:.3},\n  \"recovery_replay_per_sec\": {recovery_replay_per_sec:.0}\n}}\n",
            g.union_speedup,
            g.minus_speedup,
            g.intersect_speedup,
            g.deep_copy_speedup,
            g.group_speedup,
            g.join_order_speedup,
            g.plan_reorder_speedup,
            g.rule_optimizer_speedup,
            g.view_refresh_speedup,
            g.txn_commit_throughput,
        );
        std::fs::write(quick_out, summary).expect("write quick summary");
        println!("wrote {quick_out}");
    }

    if let Some(path) = out_path {
        // The file is a trajectory: append this entry to the recorded
        // series (wrapping a legacy single-object file into an array).
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let trimmed = existing.trim();
        let combined = if trimmed.is_empty() {
            format!("[\n{entry}\n]\n")
        } else if let Some(body) = trimmed.strip_prefix('[') {
            let body = body.strip_suffix(']').expect("well-formed JSON array");
            format!("[{},\n{entry}\n]\n", body.trim_end().trim_end_matches(','))
        } else {
            format!("[\n{trimmed},\n{entry}\n]\n")
        };
        std::fs::write(path, combined).expect("write BENCH_fig4_fig6.json");
        println!("wrote {path}");
    }
}
