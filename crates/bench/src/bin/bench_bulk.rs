//! Before/after measurement of the bulk-construction fast path
//! (`BENCH_fig4_fig6.json`): the fig4 filter and fig6 join workloads at the
//! 20k-order scale, each run through
//!
//! * **before** — the pre-builder idiom preserved verbatim below: output
//!   assembled with per-tuple persistent `insert` (O(log n) time and `Arc`
//!   allocation each), `format!`-per-tuple attribute qualification, and the
//!   nested row × entry relationship scan;
//! * **after** — the shipped operators (`RelationBuilder` bulk path,
//!   interned qualified names, hash-indexed relationship binding).
//!
//! Medians are computed criterion-style (N timed samples, median reported).
//!
//! ```text
//! cargo run -p fdm-bench --bin bench_bulk --release            # 20k scale
//! cargo run -p fdm-bench --bin bench_bulk --release -- --quick # CI smoke
//! ```

use fdm_bench::standard_config;
use fdm_core::{DatabaseF, FdmError, Name, RelationF, RelationshipF, Result, TupleF, Value};
use fdm_workload::{generate, to_fdm};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

// ───────────────────────── legacy (before) path ─────────────────────────

/// The old filter: per-tuple persistent inserts into a fresh relation.
fn legacy_filter_fn(rel: &RelationF, pred: impl Fn(&TupleF) -> Result<bool>) -> Result<RelationF> {
    let key_attrs: Vec<&str> = rel.key_attrs().iter().map(|n| n.as_ref()).collect();
    let mut out = RelationF::new(rel.name(), &key_attrs);
    for (key, tuple) in rel.tuples()? {
        if pred(&tuple)? {
            out = out.insert_arc(key, tuple)?;
        }
    }
    Ok(out)
}

#[derive(Clone)]
struct JoinRow {
    bound: BTreeMap<Name, Value>,
    attrs: Vec<(Name, Value)>,
}

/// The old qualification: one `format!` per attribute per tuple.
fn legacy_qualify(tuple: &TupleF, rel_name: &str, out: &mut Vec<(Name, Value)>) -> Result<()> {
    for (attr, v) in tuple.materialize()? {
        out.push((Name::from(format!("{rel_name}.{attr}").as_str()), v));
    }
    Ok(())
}

/// The old schema join: nested rows × entries scan with a compatibility
/// check per pair, outputs built insert-by-insert.
fn legacy_join(db: &DatabaseF) -> Result<RelationF> {
    let relationships: Vec<(Name, Arc<RelationshipF>)> = db
        .relationships()
        .map(|(n, r)| (n.clone(), r.clone()))
        .collect();
    if relationships.is_empty() {
        return Err(FdmError::Other("legacy_join: no relationships".into()));
    }
    let mut rows: Vec<JoinRow> = vec![JoinRow {
        bound: BTreeMap::new(),
        attrs: Vec::new(),
    }];
    for (rname, rsf) in relationships {
        let mut parts: Vec<(Name, Arc<RelationF>)> = Vec::new();
        for p in rsf.participants() {
            parts.push((p.function.clone(), db.relation(&p.function)?));
        }
        let mut next = Vec::new();
        for row in &rows {
            for (args, rattrs) in rsf.iter() {
                let mut compatible = true;
                for ((pname, _), arg) in parts.iter().zip(&args) {
                    if let Some(bound_key) = row.bound.get(pname) {
                        if bound_key != arg {
                            compatible = false;
                            break;
                        }
                    }
                }
                if !compatible {
                    continue;
                }
                let mut new_row = row.clone();
                let mut ok = true;
                for ((pname, prel), arg) in parts.iter().zip(&args) {
                    if new_row.bound.contains_key(pname) {
                        continue;
                    }
                    match prel.lookup(arg) {
                        Some(tuple) => {
                            new_row.bound.insert(pname.clone(), arg.clone());
                            if let Some(p) =
                                rsf.participants().iter().find(|p| &p.function == pname)
                            {
                                new_row.attrs.push((
                                    Name::from(format!("{pname}.{}", p.key).as_str()),
                                    arg.clone(),
                                ));
                            }
                            legacy_qualify(&tuple, pname, &mut new_row.attrs)?;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                for (attr, v) in rattrs.materialize()? {
                    new_row
                        .attrs
                        .push((Name::from(format!("{rname}.{attr}").as_str()), v));
                }
                next.push(new_row);
            }
        }
        rows = next;
    }
    let mut out = RelationF::new("join_result", &["row"]);
    for (i, row) in rows.into_iter().enumerate() {
        let mut b = TupleF::builder(format!("j{i}"));
        for (n, v) in row.attrs {
            b = b.attr(n.as_ref(), v);
        }
        out = out.insert(Value::Int(i as i64), b.build())?;
    }
    Ok(out)
}

// ───────────────────────── measurement harness ─────────────────────────

/// Criterion-style median: `samples` timed runs, median per-run nanos.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    // one warm-up run outside the timings
    f();
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (orders, samples, out_path) = if quick {
        (2_000usize, 5usize, None)
    } else {
        (20_000, 15, Some("BENCH_fig4_fig6.json"))
    };

    let db = to_fdm(&generate(&standard_config(orders)));
    let customers = db.relation("customers").unwrap();
    println!(
        "bench_bulk: {} orders, {} customers, {} samples per series",
        orders,
        customers.len(),
        samples
    );

    // fig4 filter (costume 1 closure, so before/after differ only in
    // output construction)
    let pred = |t: &TupleF| Ok(t.get("age")?.as_int("age")? > 42);
    let before_filter = median_ns(samples, || {
        black_box(legacy_filter_fn(&customers, pred).unwrap());
    });
    let after_filter = median_ns(samples, || {
        black_box(fdm_fql::filter_fn(&customers, pred).unwrap());
    });

    // fig6 schema join
    let before_join = median_ns(samples, || {
        black_box(legacy_join(&db).unwrap());
    });
    let after_join = median_ns(samples, || {
        black_box(fdm_fql::join(&db).unwrap());
    });

    // sanity: both paths agree before we publish numbers
    assert_eq!(
        legacy_filter_fn(&customers, pred).unwrap().len(),
        fdm_fql::filter_fn(&customers, pred).unwrap().len()
    );
    assert_eq!(
        legacy_join(&db).unwrap().len(),
        fdm_fql::join(&db).unwrap().len()
    );

    let report = format!(
        "{{\n  \"scale_orders\": {orders},\n  \"samples\": {samples},\n  \"fig4_filter\": {{\n    \"before_median_ns\": {before_filter},\n    \"after_median_ns\": {after_filter},\n    \"speedup\": {:.2}\n  }},\n  \"fig6_join\": {{\n    \"before_median_ns\": {before_join},\n    \"after_median_ns\": {after_join},\n    \"speedup\": {:.2}\n  }}\n}}\n",
        before_filter / after_filter,
        before_join / after_join,
    );
    println!("{report}");
    if let Some(path) = out_path {
        std::fs::write(path, &report).expect("write BENCH_fig4_fig6.json");
        println!("wrote {path}");
    }
}
