//! Regenerates every EXPERIMENTS.md series in one run:
//!
//! ```text
//! cargo run -p fdm-bench --bin repro --release            # full size
//! cargo run -p fdm-bench --bin repro --release -- --quick # CI size
//! ```

use fdm_bench::report;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (orders, customers, sizes, threads): (usize, usize, Vec<usize>, Vec<usize>) = if quick {
        (2_000, 500, vec![1_000, 10_000], vec![1, 4])
    } else {
        (
            10_000,
            2_000,
            vec![1_000, 10_000, 100_000],
            vec![1, 2, 4, 8],
        )
    };
    let fanouts: Vec<usize> = if quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };

    println!("# FDM/FQL reproduction report");
    println!(
        "\nmode: {} (orders = {orders}, fan-out sweep customers = {customers})",
        if quick { "quick" } else { "full" }
    );

    report::fig1();
    report::fig4_filter(orders);
    report::fig4_groupby(orders);
    report::fig5_fig6(customers, &fanouts);
    report::fig6_ablation(orders);
    report::fig7(customers, &fanouts);
    report::fig8(orders);
    report::fig9(orders);
    report::fig10(&sizes);
    report::fig11(64, &threads);

    println!("\ndone.");
}
