//! The central abstraction: *everything is a function* (paper §2.2).
//!
//! [`Function`] is the uniform interface implemented by tuple functions,
//! relation functions, database functions, relationship functions, and
//! ad-hoc lambdas. [`FnValue`] is the closed sum of those, so a function
//! can be carried *inside* a [`crate::Value`] — which is what makes the
//! model higher-order and lets the same query constructs apply at every
//! granularity.

use crate::database::DatabaseF;
use crate::domain::Domain;
use crate::error::{FdmError, Result};
use crate::relation::RelationF;
use crate::relationship::RelationshipF;
use crate::tuple::TupleF;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// The uniform FDM function interface (paper Definition 1 & 2).
///
/// A function assigns to each element of its domain exactly one element of
/// its codomain. Applying a function outside its domain is a typed error
/// ([`FdmError::Undefined`]), **not** a NULL.
pub trait Function: Send + Sync {
    /// Human-readable name of the function (for errors and EXPLAIN output).
    fn fn_name(&self) -> &str;

    /// Number of arguments. Tuple/relation/database functions are unary;
    /// relationship functions are k-ary.
    fn arity(&self) -> usize;

    /// The function's domain. For k-ary functions this is a
    /// [`Domain::Product`].
    fn domain(&self) -> Domain;

    /// Applies the function to `args`.
    fn apply(&self, args: &[Value]) -> Result<Value>;
}

/// A shared handle to any function.
pub type FunctionHandle = Arc<dyn Function>;

/// Convenience: apply a unary function to one value.
pub fn apply1(f: &dyn Function, arg: &Value) -> Result<Value> {
    f.apply(std::slice::from_ref(arg))
}

/// The body of a [`LambdaF`]: a shared n-ary closure over values.
pub type LambdaBody = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// An ad-hoc lambda function (paper §2.4's λ expressions): a named closure
/// with an explicit domain.
pub struct LambdaF {
    name: String,
    arity: usize,
    domain: Domain,
    body: LambdaBody,
}

impl LambdaF {
    /// Creates a unary lambda.
    pub fn unary(
        name: impl Into<String>,
        domain: Domain,
        body: impl Fn(&Value) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        LambdaF {
            name: name.into(),
            arity: 1,
            domain,
            body: Arc::new(move |args| body(&args[0])),
        }
    }

    /// Creates a k-ary lambda with a product domain.
    pub fn nary(
        name: impl Into<String>,
        domains: Vec<Domain>,
        body: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        LambdaF {
            name: name.into(),
            arity: domains.len(),
            domain: Domain::Product(domains),
            body: Arc::new(body),
        }
    }
}

impl Function for LambdaF {
    fn fn_name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn domain(&self) -> Domain {
        self.domain.clone()
    }

    fn apply(&self, args: &[Value]) -> Result<Value> {
        if args.len() != self.arity {
            return Err(FdmError::ArityMismatch {
                function: self.name.clone(),
                expected: self.arity,
                found: args.len(),
            });
        }
        (self.body)(args)
    }
}

impl fmt::Debug for LambdaF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}(…)", self.name)
    }
}

/// The closed sum of FDM function kinds, used wherever a function is a
/// *value* (nested attributes, database entries, query results).
///
/// Paper §2.6: a database entry can be a tuple function (`'myTab': t4`),
/// a relation function, a whole database, or an arbitrary λ. This enum is
/// how the engine realizes that without giving up static knowledge of the
/// common cases.
#[derive(Clone)]
pub enum FnValue {
    /// A tuple function.
    Tuple(Arc<TupleF>),
    /// A relation function.
    Relation(Arc<RelationF>),
    /// A relationship function (k-ary, over shared domains).
    Relationship(Arc<RelationshipF>),
    /// A database function.
    Database(Arc<DatabaseF>),
    /// Any other function (λ, computed view, user extension).
    Lambda(Arc<LambdaF>),
}

impl FnValue {
    /// A stable identity for ordering/hashing function values: the address
    /// of the shared allocation. Stable within a process run.
    pub fn identity(&self) -> usize {
        match self {
            FnValue::Tuple(t) => Arc::as_ptr(t) as usize,
            FnValue::Relation(r) => Arc::as_ptr(r) as usize,
            FnValue::Relationship(r) => Arc::as_ptr(r) as usize,
            FnValue::Database(d) => Arc::as_ptr(d) as usize,
            FnValue::Lambda(l) => Arc::as_ptr(l) as usize,
        }
    }

    /// Short description of the function kind ("tuple function", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            FnValue::Tuple(_) => "tuple function",
            FnValue::Relation(_) => "relation function",
            FnValue::Relationship(_) => "relationship function",
            FnValue::Database(_) => "database function",
            FnValue::Lambda(_) => "lambda function",
        }
    }

    /// Borrows the uniform [`Function`] interface.
    pub fn as_function(&self) -> &dyn Function {
        match self {
            FnValue::Tuple(t) => t.as_ref(),
            FnValue::Relation(r) => r.as_ref(),
            FnValue::Relationship(r) => r.as_ref(),
            FnValue::Database(d) => d.as_ref(),
            FnValue::Lambda(l) => l.as_ref(),
        }
    }

    /// Applies the function uniformly.
    pub fn apply(&self, args: &[Value]) -> Result<Value> {
        self.as_function().apply(args)
    }

    /// Downcast to a tuple function.
    pub fn as_tuple(&self) -> Result<&Arc<TupleF>> {
        match self {
            FnValue::Tuple(t) => Ok(t),
            other => Err(FdmError::WrongFunctionKind {
                name: other.as_function().fn_name().to_string(),
                expected: "tuple function".to_string(),
                found: other.kind().to_string(),
            }),
        }
    }

    /// Downcast to a relation function.
    pub fn as_relation(&self) -> Result<&Arc<RelationF>> {
        match self {
            FnValue::Relation(r) => Ok(r),
            other => Err(FdmError::WrongFunctionKind {
                name: other.as_function().fn_name().to_string(),
                expected: "relation function".to_string(),
                found: other.kind().to_string(),
            }),
        }
    }

    /// Downcast to a relationship function.
    pub fn as_relationship(&self) -> Result<&Arc<RelationshipF>> {
        match self {
            FnValue::Relationship(r) => Ok(r),
            other => Err(FdmError::WrongFunctionKind {
                name: other.as_function().fn_name().to_string(),
                expected: "relationship function".to_string(),
                found: other.kind().to_string(),
            }),
        }
    }

    /// Downcast to a database function.
    pub fn as_database(&self) -> Result<&Arc<DatabaseF>> {
        match self {
            FnValue::Database(d) => Ok(d),
            other => Err(FdmError::WrongFunctionKind {
                name: other.as_function().fn_name().to_string(),
                expected: "database function".to_string(),
                found: other.kind().to_string(),
            }),
        }
    }
}

impl From<TupleF> for FnValue {
    fn from(t: TupleF) -> Self {
        FnValue::Tuple(Arc::new(t))
    }
}

impl From<RelationF> for FnValue {
    fn from(r: RelationF) -> Self {
        FnValue::Relation(Arc::new(r))
    }
}

impl From<RelationshipF> for FnValue {
    fn from(r: RelationshipF) -> Self {
        FnValue::Relationship(Arc::new(r))
    }
}

impl From<DatabaseF> for FnValue {
    fn from(d: DatabaseF) -> Self {
        FnValue::Database(Arc::new(d))
    }
}

impl From<LambdaF> for FnValue {
    fn from(l: LambdaF) -> Self {
        FnValue::Lambda(Arc::new(l))
    }
}

impl fmt::Debug for FnValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for FnValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} '{}'>", self.kind(), self.as_function().fn_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValueType;

    #[test]
    fn lambda_applies_and_checks_arity() {
        let double = LambdaF::unary("double", Domain::Typed(ValueType::Int), |v| {
            v.mul(&Value::Int(2))
        });
        assert_eq!(double.apply(&[Value::Int(21)]).unwrap(), Value::Int(42));
        let err = double.apply(&[Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(matches!(err, FdmError::ArityMismatch { .. }));
    }

    #[test]
    fn nary_lambda_has_product_domain() {
        let add = LambdaF::nary(
            "add",
            vec![Domain::Typed(ValueType::Int), Domain::Typed(ValueType::Int)],
            |args| args[0].add(&args[1]),
        );
        assert_eq!(add.arity(), 2);
        assert_eq!(
            add.apply(&[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Int(3)
        );
        assert!(matches!(add.domain(), Domain::Product(ds) if ds.len() == 2));
    }

    #[test]
    fn fnvalue_identity_follows_sharing() {
        let l = Arc::new(LambdaF::unary("id", Domain::Typed(ValueType::Int), |v| {
            Ok(v.clone())
        }));
        let a = FnValue::Lambda(Arc::clone(&l));
        let b = FnValue::Lambda(Arc::clone(&l));
        assert_eq!(a.identity(), b.identity());
        let c = FnValue::from(LambdaF::unary("id", Domain::Typed(ValueType::Int), |v| {
            Ok(v.clone())
        }));
        assert_ne!(a.identity(), c.identity());
    }

    #[test]
    fn downcast_errors_name_the_kinds() {
        let l = FnValue::from(LambdaF::unary("f", Domain::Typed(ValueType::Int), |v| {
            Ok(v.clone())
        }));
        let err = l.as_relation().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("lambda function"), "{msg}");
        assert!(msg.contains("relation function"), "{msg}");
    }
}
