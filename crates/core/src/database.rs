//! Database functions (paper §2.5).
//!
//! A database function maps names to functions:
//! `DB('Table1') = R1`. Because the codomain is [`FnValue`], an entry can
//! be a relation function, a tuple function (`'myTab': t4` in the paper), a
//! relationship function, a λ (a computed relation that was never stored —
//! a *view*), or even **another database** — sets of databases are just
//! database functions one level up (§2.2, §2.6).
//!
//! `DatabaseF` is persistent: `with_entry`/`without_entry` return a new
//! database sharing everything untouched. This is the enabling property
//! for FQL's in-place usage (`DB('myAwesomeView') := foo`, §4.4) and for
//! snapshot transactions.

use crate::domain::{Domain, SharedDomain};
use crate::error::{FdmError, Name, Result};
use crate::function::{FnValue, Function};
use crate::relation::RelationF;
use crate::relationship::RelationshipF;
use crate::value::Value;
use fdm_storage::PMap;
use std::fmt;
use std::sync::Arc;

/// A database function: name → function.
///
/// # Examples
///
/// ```
/// use fdm_core::{DatabaseF, RelationF, TupleF, Value};
///
/// let customers = RelationF::new("customers", &["cid"])
///     .insert(Value::Int(1), TupleF::builder("c").attr("name", "Alice").build())
///     .unwrap();
/// let db = DatabaseF::new("shop").with_relation(customers);
/// let r = db.relation("customers").unwrap();
/// assert_eq!(r.len(), 1);
/// ```
#[derive(Clone)]
pub struct DatabaseF {
    name: Name,
    entries: PMap<Name, FnValue>,
    /// The named shared domains of this schema (foreign-key links live
    /// here; see [`SharedDomain`]).
    domains: PMap<Name, SharedDomain>,
}

impl DatabaseF {
    /// Creates an empty database function.
    pub fn new(name: impl AsRef<str>) -> DatabaseF {
        DatabaseF {
            name: Arc::from(name.as_ref()),
            entries: PMap::new(),
            domains: PMap::new(),
        }
    }

    /// The database function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries (relations, tuples, nested databases, ...).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry names in sorted order.
    pub fn names(&self) -> Vec<Name> {
        self.entries.keys().cloned().collect()
    }

    /// Looks up an entry of any function kind.
    pub fn entry(&self, name: &str) -> Result<&FnValue> {
        self.entries
            .get(name)
            .ok_or_else(|| FdmError::NoSuchRelation {
                name: name.to_string(),
            })
    }

    /// `true` if an entry exists under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Looks up a relation function entry.
    pub fn relation(&self, name: &str) -> Result<Arc<RelationF>> {
        Ok(self.entry(name)?.as_relation()?.clone())
    }

    /// Cardinality statistics of the relation entry `name` — the planner's
    /// window into this database's data distribution (rows, attribute
    /// count, per-position key cardinalities). Errors when the entry is
    /// missing or not a relation, exactly like [`Self::relation`].
    ///
    /// `fdm_fql`'s `PlanContext` consults this (and
    /// [`Self::estimate_distinct`]) so optimization rules never reach into
    /// relation internals themselves.
    pub fn relation_stats(&self, name: &str) -> Result<crate::stats::RelationStats> {
        Ok(crate::stats::RelationStats::of(
            self.relation(name)?.as_ref(),
        ))
    }

    /// Distinct-count estimate for attribute `attr` of the relation entry
    /// `rel`: exact for key/uniquely-constrained attributes, a
    /// [`crate::stats::DistinctSketch`] estimate (≤10% relative error)
    /// otherwise — see [`crate::stats::estimate_distinct`]. Errors when
    /// the entry is missing or not a relation.
    pub fn estimate_distinct(&self, rel: &str, attr: &str) -> Result<usize> {
        Ok(crate::stats::estimate_distinct(
            self.relation(rel)?.as_ref(),
            attr,
        ))
    }

    /// Looks up a relationship function entry.
    pub fn relationship(&self, name: &str) -> Result<Arc<RelationshipF>> {
        Ok(self.entry(name)?.as_relationship()?.clone())
    }

    /// Looks up a nested database entry.
    pub fn database(&self, name: &str) -> Result<Arc<DatabaseF>> {
        Ok(self.entry(name)?.as_database()?.clone())
    }

    /// The in-place assignment `DB(name) := f` (paper §4.4): returns a new
    /// database with `name` bound to `f`, replacing any previous binding.
    pub fn with_entry(&self, name: impl AsRef<str>, f: impl Into<FnValue>) -> DatabaseF {
        DatabaseF {
            name: self.name.clone(),
            entries: self.entries.insert(Arc::from(name.as_ref()), f.into()).0,
            domains: self.domains.clone(),
        }
    }

    /// Adds a relation function under its own name.
    pub fn with_relation(&self, rel: RelationF) -> DatabaseF {
        let name = Name::from(rel.name());
        self.with_entry_named(name, FnValue::from(rel))
    }

    /// Adds a relationship function under its own name.
    pub fn with_relationship(&self, rsf: RelationshipF) -> DatabaseF {
        let name = Name::from(rsf.name());
        self.with_entry_named(name, FnValue::from(rsf))
    }

    fn with_entry_named(&self, name: Name, f: FnValue) -> DatabaseF {
        DatabaseF {
            name: self.name.clone(),
            entries: self.entries.insert(name, f).0,
            domains: self.domains.clone(),
        }
    }

    /// Removes an entry; fails if absent.
    pub fn without_entry(&self, name: &str) -> Result<DatabaseF> {
        let (entries, old) = self.entries.remove(name);
        if old.is_none() {
            return Err(FdmError::NoSuchRelation {
                name: name.to_string(),
            });
        }
        Ok(DatabaseF {
            name: self.name.clone(),
            entries,
            domains: self.domains.clone(),
        })
    }

    /// Registers a named shared domain in the schema.
    pub fn with_domain(&self, domain: SharedDomain) -> DatabaseF {
        DatabaseF {
            name: self.name.clone(),
            entries: self.entries.clone(),
            domains: self.domains.insert(Arc::from(domain.name()), domain).0,
        }
    }

    /// Looks up a named shared domain.
    pub fn shared_domain(&self, name: &str) -> Option<&SharedDomain> {
        self.domains.get(name)
    }

    /// All shared domains.
    pub fn shared_domains(&self) -> impl Iterator<Item = (&Name, &SharedDomain)> + '_ {
        self.domains.iter()
    }

    /// Iterates `(name, entry)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &FnValue)> + '_ {
        self.entries.iter()
    }

    /// Iterates only the relation-function entries.
    pub fn relations(&self) -> impl Iterator<Item = (&Name, &Arc<RelationF>)> + '_ {
        self.entries.iter().filter_map(|(n, e)| match e {
            FnValue::Relation(r) => Some((n, r)),
            _ => None,
        })
    }

    /// Iterates only the relationship-function entries.
    pub fn relationships(&self) -> impl Iterator<Item = (&Name, &Arc<RelationshipF>)> + '_ {
        self.entries.iter().filter_map(|(n, e)| match e {
            FnValue::Relationship(r) => Some((n, r)),
            _ => None,
        })
    }

    /// Renames the database function.
    pub fn renamed(&self, name: impl AsRef<str>) -> DatabaseF {
        let mut db = self.clone();
        db.name = Arc::from(name.as_ref());
        db
    }

    /// Total number of stored tuples across all relation and relationship
    /// entries (diagnostic; nested databases are counted recursively).
    pub fn total_tuples(&self) -> usize {
        self.entries
            .values()
            .map(|e| match e {
                FnValue::Relation(r) => r.len(),
                FnValue::Relationship(r) => r.len(),
                FnValue::Database(d) => d.total_tuples(),
                FnValue::Tuple(_) => 1,
                FnValue::Lambda(_) => 0,
            })
            .sum()
    }
}

impl Function for DatabaseF {
    fn fn_name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        1
    }

    fn domain(&self) -> Domain {
        Domain::enumerated(self.entries.keys().map(|n| Value::Str(n.clone())))
    }

    fn apply(&self, args: &[Value]) -> Result<Value> {
        if args.len() != 1 {
            return Err(FdmError::ArityMismatch {
                function: self.name.to_string(),
                expected: 1,
                found: args.len(),
            });
        }
        let name = args[0].as_str("database function argument")?;
        Ok(Value::Fn(self.entry(name)?.clone()))
    }
}

impl fmt::Debug for DatabaseF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DatabaseF({} {{", self.name)?;
        for (i, (n, e)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "'{n}': {e}")?;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::apply1;
    use crate::tuple::TupleF;
    use crate::types::ValueType;

    fn customers() -> RelationF {
        RelationF::new("customers", &["cid"])
            .insert(
                Value::Int(1),
                TupleF::builder("c1")
                    .attr("name", "Alice")
                    .attr("age", 43)
                    .build(),
            )
            .unwrap()
            .insert(
                Value::Int(2),
                TupleF::builder("c2")
                    .attr("name", "Bob")
                    .attr("age", 30)
                    .build(),
            )
            .unwrap()
    }

    #[test]
    fn paper_db_example() {
        // DB('Table1') = R1 ; DB('myTab') = t4 (a tuple as DB entry, §2.5)
        let t4 = TupleF::builder("t4")
            .attr("name", "Thomas")
            .attr("foo", 25)
            .build();
        let db = DatabaseF::new("DB")
            .with_relation(customers().renamed("Table1"))
            .with_entry("myTab", FnValue::from(t4));
        let v = apply1(&db, &Value::str("Table1")).unwrap();
        assert!(matches!(v, Value::Fn(FnValue::Relation(_))));
        let v = apply1(&db, &Value::str("myTab")).unwrap();
        assert!(matches!(v, Value::Fn(FnValue::Tuple(_))));
        let err = apply1(&db, &Value::str("nope")).unwrap_err();
        assert!(matches!(err, FdmError::NoSuchRelation { .. }));
    }

    #[test]
    fn relation_accessor_typed_errors() {
        let t4 = TupleF::builder("t4").attr("x", 1).build();
        let db = DatabaseF::new("DB").with_entry("myTab", FnValue::from(t4));
        let err = db.relation("myTab").unwrap_err();
        assert!(matches!(err, FdmError::WrongFunctionKind { .. }));
    }

    #[test]
    fn with_entry_is_persistent_assignment() {
        let db = DatabaseF::new("DB").with_relation(customers());
        // DB('customers_NY') := <some relation>   (§4.4 in-place usage)
        let ny = customers().renamed("customers_NY");
        let db2 = db.with_entry("customers_NY", FnValue::from(ny));
        assert_eq!(db.len(), 1, "original snapshot unchanged");
        assert_eq!(db2.len(), 2);
        // replacing an existing binding
        let empty = RelationF::new("customers", &["cid"]);
        let db3 = db2.with_entry("customers", FnValue::from(empty));
        assert_eq!(db3.relation("customers").unwrap().len(), 0);
        assert_eq!(db2.relation("customers").unwrap().len(), 2);
    }

    #[test]
    fn nested_database_is_just_an_entry() {
        // a set of databases is a database function one level up (§2.2)
        let inner = DatabaseF::new("tenant1").with_relation(customers());
        let outer = DatabaseF::new("fleet").with_entry("tenant1", FnValue::from(inner));
        let got = outer.database("tenant1").unwrap();
        assert_eq!(got.relation("customers").unwrap().len(), 2);
        assert_eq!(outer.total_tuples(), 2);
    }

    #[test]
    fn without_entry() {
        let db = DatabaseF::new("DB").with_relation(customers());
        let db2 = db.without_entry("customers").unwrap();
        assert!(db2.is_empty());
        assert!(db.contains("customers"));
        assert!(db2.without_entry("customers").is_err());
    }

    #[test]
    fn shared_domains_registry() {
        let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
        let db = DatabaseF::new("DB").with_domain(cid.clone());
        assert!(db.shared_domain("cid").unwrap().same_as(&cid));
        assert!(db.shared_domain("pid").is_none());
        assert_eq!(db.shared_domains().count(), 1);
    }

    #[test]
    fn iterators_filter_by_kind() {
        let t4 = TupleF::builder("t4").attr("x", 1).build();
        let db = DatabaseF::new("DB")
            .with_relation(customers())
            .with_entry("meta", FnValue::from(t4));
        assert_eq!(db.relations().count(), 1);
        assert_eq!(db.iter().count(), 2);
        assert_eq!(db.names().len(), 2);
    }

    #[test]
    fn function_interface_domain_is_entry_names() {
        let db = DatabaseF::new("DB").with_relation(customers());
        let d = db.domain();
        assert!(d.contains(&Value::str("customers")));
        assert!(!d.contains(&Value::str("orders")));
    }
}
