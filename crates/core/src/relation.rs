//! Relation functions (paper §2.4).
//!
//! A relation function maps a key (primary key, candidate key, or row id)
//! to a tuple function: `R1(1) = t1`. Four bodies realize the paper's
//! spectrum:
//!
//! * [`stored`](RelationF::new) — a persistent map key → tuple (the classic
//!   "relation", except it *is* a function);
//! * **multi** ([`RelationF::index_by`]) — key → *set* of tuples, i.e. a
//!   non-unique secondary index (the paper's `R3(foo) ↦ {TF}`);
//! * **computed** ([`RelationF::computed`]) — a λ over a (possibly
//!   continuous, non-enumerable) domain: data that was never inserted;
//! * **hybrid** ([`RelationF::with_fallback`]) — stored tuples with a
//!   computed fallback (the paper's `R4`).
//!
//! All mutating operations are persistent: they return a new `RelationF`
//! sharing structure with the old one, which is what makes snapshot
//! transactions (Fig. 11) cheap.

use crate::constraint::Constraint;
use crate::domain::Domain;
use crate::error::{FdmError, Name, Result};
use crate::function::Function;
use crate::stats::AttrSketches;
use crate::tuple::TupleF;
use crate::value::Value;
use fdm_storage::PMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The body of a computed relation function.
pub type ComputedRel = Arc<dyn Fn(&Value) -> Result<Value> + Send + Sync>;

/// A group of tuples sharing a key (non-unique bodies).
pub type TupleGroup = Arc<[Arc<TupleF>]>;

#[derive(Clone)]
enum Body {
    /// Unique mapping key → tuple.
    Unique(PMap<Value, Arc<TupleF>>),
    /// Non-unique mapping key → tuples (a duplicate-admitting index).
    Multi(PMap<Value, TupleGroup>),
    /// Fully computed: λ over `domain`.
    Computed { domain: Domain, f: ComputedRel },
    /// Stored tuples with a computed fallback over `domain` (paper's R4).
    Hybrid {
        map: PMap<Value, Arc<TupleF>>,
        domain: Domain,
        fallback: ComputedRel,
    },
}

/// A relation function.
///
/// # Examples
///
/// ```
/// use fdm_core::{RelationF, TupleF, Value};
///
/// // R1(bar: int) := t_bar with t1, t3 (paper §2.4)
/// let t1 = TupleF::builder("t1").attr("name", "Alice").attr("foo", 12).build();
/// let t3 = TupleF::builder("t3").attr("name", "Bob").attr("foo", 25).build();
/// let r1 = RelationF::new("R1", &["bar"])
///     .insert(Value::Int(1), t1).unwrap()
///     .insert(Value::Int(3), t3).unwrap();
///
/// assert_eq!(r1.lookup(&Value::Int(1)).unwrap().get("name").unwrap(), Value::str("Alice"));
/// assert!(r1.lookup(&Value::Int(2)).is_none(), "R1 is not defined at 2");
/// ```
#[derive(Clone)]
pub struct RelationF {
    name: Name,
    key_attrs: Arc<[Name]>,
    constraints: Arc<[Constraint]>,
    /// One unique index per `Constraint::Unique`, mapping the constrained
    /// attribute value(s) to the primary key that holds them.
    unique_indexes: Arc<[PMap<Value, Value>]>,
    body: Body,
    /// Lazily computed per-attribute distinct-count sketches
    /// ([`AttrSketches`]), under the same freshness-by-construction
    /// contract as the tuple fingerprint cache: every construction and
    /// mutation path starts a fresh empty cell, so a filled cache always
    /// describes exactly this value's stored tuples. `Clone` carries a
    /// filled cache over, which is sound — the clone's body is identical.
    sketches: OnceLock<Arc<AttrSketches>>,
}

impl RelationF {
    /// Creates an empty stored (unique) relation function whose inputs are
    /// named by `key_attrs` (e.g. `["cid"]`, or a synthetic `["id"]`).
    pub fn new(name: impl AsRef<str>, key_attrs: &[&str]) -> RelationF {
        RelationF {
            name: Arc::from(name.as_ref()),
            key_attrs: key_attrs.iter().map(|k| Name::from(*k)).collect(),
            constraints: Arc::from([]),
            unique_indexes: Arc::from([]),
            body: Body::Unique(PMap::new()),
            sketches: OnceLock::new(),
        }
    }

    /// Creates a fully computed relation function over `domain`.
    ///
    /// `f` receives a key inside the domain and returns (usually) a
    /// `Value::Fn` holding a tuple function. Point lookups always work;
    /// enumeration works iff `domain.is_enumerable()` (paper §2.4).
    pub fn computed(
        name: impl AsRef<str>,
        key_attrs: &[&str],
        domain: Domain,
        f: impl Fn(&Value) -> Result<Value> + Send + Sync + 'static,
    ) -> RelationF {
        RelationF {
            name: Arc::from(name.as_ref()),
            key_attrs: key_attrs.iter().map(|k| Name::from(*k)).collect(),
            constraints: Arc::from([]),
            unique_indexes: Arc::from([]),
            body: Body::Computed {
                domain,
                f: Arc::new(f),
            },
            sketches: OnceLock::new(),
        }
    }

    /// Converts this stored relation into a hybrid: stored tuples win, and
    /// any other key inside `domain` is answered by `fallback` (the paper's
    /// `R4`: "if a predefined tuple function does not exist, return an
    /// anonymous λ-tuple-function").
    pub fn with_fallback(
        &self,
        domain: Domain,
        fallback: impl Fn(&Value) -> Result<Value> + Send + Sync + 'static,
    ) -> Result<RelationF> {
        let map = match &self.body {
            Body::Unique(map) => map.clone(),
            Body::Hybrid { map, .. } => map.clone(),
            _ => {
                return Err(FdmError::Other(format!(
                    "relation function '{}' cannot take a fallback (not a unique stored body)",
                    self.name
                )))
            }
        };
        Ok(RelationF {
            name: self.name.clone(),
            key_attrs: self.key_attrs.clone(),
            constraints: self.constraints.clone(),
            unique_indexes: self.unique_indexes.clone(),
            body: Body::Hybrid {
                map,
                domain,
                fallback: Arc::new(fallback),
            },
            sketches: OnceLock::new(),
        })
    }

    /// Adds an integrity constraint; for `Unique` constraints the unique
    /// index is built (and validated) over the existing tuples.
    pub fn with_constraint(&self, constraint: Constraint) -> Result<RelationF> {
        let mut constraints: Vec<Constraint> = self.constraints.to_vec();
        let mut indexes: Vec<PMap<Value, Value>> = self.unique_indexes.to_vec();
        if let Constraint::Unique(_) = &constraint {
            let mut idx = PMap::new();
            for (key, tuple) in self.iter_stored() {
                if let Some(uk) = constraint.unique_key(&tuple) {
                    let (next, old) = idx.insert(uk.clone(), key.clone());
                    if old.is_some() {
                        return Err(FdmError::ConstraintViolation {
                            constraint: constraint.to_string(),
                            detail: format!("existing data has duplicate value {uk}"),
                        });
                    }
                    idx = next;
                }
            }
            indexes.push(idx);
        } else {
            // Validate existing data against the attribute domain.
            if let Constraint::AttrDomain { attr, domain } = &constraint {
                for (_, tuple) in self.iter_stored() {
                    if let Some(v) = tuple.try_get(attr) {
                        if !domain.contains(&v) {
                            return Err(FdmError::ConstraintViolation {
                                constraint: constraint.to_string(),
                                detail: format!("existing value {v} outside domain"),
                            });
                        }
                    }
                }
            }
        }
        constraints.push(constraint);
        Ok(RelationF {
            name: self.name.clone(),
            key_attrs: self.key_attrs.clone(),
            constraints: constraints.into(),
            unique_indexes: indexes.into(),
            body: self.body.clone(),
            sketches: OnceLock::new(),
        })
    }

    /// The relation function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation function (cheap; shares the body).
    pub fn renamed(&self, name: impl AsRef<str>) -> RelationF {
        let mut r = self.clone();
        r.name = Arc::from(name.as_ref());
        r
    }

    /// The names of the input (key) attributes.
    pub fn key_attrs(&self) -> &[Name] {
        &self.key_attrs
    }

    /// The declared constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The per-attribute distinct-count sketches of this relation value,
    /// computing them on first use from the stored tuples' cached
    /// fingerprints (an O(n) scan, amortized: every later call on this
    /// value — and on any clone sharing the cache — is O(1)). Mutations
    /// never see a stale cache: each mutation path constructs a new
    /// `RelationF` with a fresh empty cell (freshness by construction,
    /// exactly like the tuple fingerprint cache). Computed bodies have no
    /// enumerable stored part and sketch empty.
    pub fn attr_sketches(&self) -> &AttrSketches {
        self.sketches
            .get_or_init(|| Arc::new(AttrSketches::from_stored(self.iter_stored())))
    }

    /// The sketches if they have already been computed for this value
    /// (`None` otherwise) — the strictly-O(1) read used by capacity-hint
    /// callers that must never trigger the analyze scan
    /// ([`crate::stats::distinct_hint`]).
    pub fn attr_sketches_cached(&self) -> Option<&AttrSketches> {
        self.sketches.get().map(|s| s.as_ref())
    }

    /// Number of *stored* tuples (0 for fully computed bodies; the
    /// computed part of a hybrid is not counted).
    pub fn len(&self) -> usize {
        match &self.body {
            Body::Unique(m) => m.len(),
            Body::Multi(m) => m.values().map(|g| g.len()).sum(),
            Body::Computed { .. } => 0,
            Body::Hybrid { map, .. } => map.len(),
        }
    }

    /// `true` if no stored tuples exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if this relation admits several tuples per key (an index on
    /// a non-unique attribute).
    pub fn is_multi(&self) -> bool {
        matches!(self.body, Body::Multi(_))
    }

    /// `true` if the body is a plain stored unique map — no duplicate
    /// groups, no computed part. Only such bodies expose
    /// [`Self::stored_map`] and qualify for copy-free pass-throughs.
    pub fn is_plain_stored(&self) -> bool {
        matches!(self.body, Body::Unique(_))
    }

    /// The underlying persistent key → tuple map of a plain stored body
    /// (`None` for multi/computed/hybrid bodies). This is what lets
    /// DB-level set operations run as O(n) structural merges instead of
    /// re-enumerating and re-inserting every tuple.
    pub fn stored_map(&self) -> Option<&PMap<Value, Arc<TupleF>>> {
        match &self.body {
            Body::Unique(m) => Some(m),
            _ => None,
        }
    }

    /// Wraps an already-built persistent map as a stored relation function
    /// (unconstrained, like every operator output). The map's key order
    /// *is* the relation's key order; no per-entry work happens.
    pub fn from_stored_map(
        name: impl AsRef<str>,
        key_attrs: &[&str],
        map: PMap<Value, Arc<TupleF>>,
    ) -> RelationF {
        RelationF {
            name: Arc::from(name.as_ref()),
            key_attrs: key_attrs.iter().map(|k| Name::from(*k)).collect(),
            constraints: Arc::from([]),
            unique_indexes: Arc::from([]),
            body: Body::Unique(map),
            sketches: OnceLock::new(),
        }
    }

    /// `true` if all tuples of this relation can be enumerated.
    pub fn is_enumerable(&self) -> bool {
        match &self.body {
            Body::Unique(_) | Body::Multi(_) => true,
            Body::Computed { domain, .. } => domain.is_enumerable(),
            // A hybrid enumerates its stored part plus the computed part if
            // the domain is enumerable; the stored part alone is always
            // reachable, so we report enumerable and document the subtlety.
            Body::Hybrid { domain, .. } => domain.is_enumerable(),
        }
    }

    /// Point lookup: the tuple(s) under `key`, or `None` if the function
    /// is not defined there. For multi bodies, an arbitrary group member
    /// would be ambiguous — use [`Self::lookup_all`]; this returns the
    /// first.
    pub fn lookup(&self, key: &Value) -> Option<Arc<TupleF>> {
        match &self.body {
            Body::Unique(m) => m.get(key).cloned(),
            Body::Multi(m) => m.get(key).and_then(|g| g.first().cloned()),
            Body::Computed { domain, f } => {
                if domain.contains(key) {
                    to_tuple(f(key).ok()?)
                } else {
                    None
                }
            }
            Body::Hybrid {
                map,
                domain,
                fallback,
            } => match map.get(key) {
                Some(t) => Some(t.clone()),
                None if domain.contains(key) => to_tuple(fallback(key).ok()?),
                None => None,
            },
        }
    }

    /// Point lookup returning all tuples under `key`.
    pub fn lookup_all(&self, key: &Value) -> Vec<Arc<TupleF>> {
        match &self.body {
            Body::Multi(m) => m.get(key).map(|g| g.to_vec()).unwrap_or_default(),
            _ => self.lookup(key).into_iter().collect(),
        }
    }

    /// `true` if the function is defined at `key`.
    pub fn contains_key(&self, key: &Value) -> bool {
        match &self.body {
            Body::Unique(m) => m.contains_key(key),
            Body::Multi(m) => m.contains_key(key),
            Body::Computed { domain, .. } => domain.contains(key),
            Body::Hybrid { map, domain, .. } => map.contains_key(key) || domain.contains(key),
        }
    }

    /// Iterates the *stored* `(key, tuple)` pairs in key order (multi
    /// bodies flatten their groups). Computed bodies yield nothing — use
    /// [`Self::tuples`] to include enumerable computed parts.
    pub fn iter_stored(&self) -> Box<dyn Iterator<Item = (Value, Arc<TupleF>)> + '_> {
        match &self.body {
            Body::Unique(m) => Box::new(m.iter().map(|(k, t)| (k.clone(), t.clone()))),
            Body::Multi(m) => Box::new(
                m.iter()
                    .flat_map(|(k, g)| g.iter().map(move |t| (k.clone(), t.clone()))),
            ),
            Body::Computed { .. } => Box::new(std::iter::empty()),
            Body::Hybrid { map, .. } => Box::new(map.iter().map(|(k, t)| (k.clone(), t.clone()))),
        }
    }

    /// The *stored* `(key, tuple)` pairs whose keys lie in `[lo, hi]`
    /// (inclusive bounds, either side optional), in ascending key order —
    /// the serving layer's range-scan primitive. Plain stored bodies
    /// answer straight from the tree (O(log n) to the first key, O(1)
    /// per result); multi/hybrid bodies filter their stored iteration.
    /// Computed parts are excluded, like [`Self::iter_stored`].
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<(Value, Arc<TupleF>)> {
        match &self.body {
            Body::Unique(m) => m
                .range(lo, hi)
                .map(|(k, t)| (k.clone(), t.clone()))
                .collect(),
            _ => self
                .iter_stored()
                .filter(|(k, _)| lo.is_none_or(|l| k >= l) && hi.is_none_or(|h| k <= h))
                .collect(),
        }
    }

    /// Iterates the *stored* `(key, tuple-group)` pairs in key order:
    /// multi bodies yield each group in O(1) (structural share, no
    /// per-member clone), unique/hybrid bodies yield singleton groups,
    /// computed bodies yield nothing. This is the grouped-consumption fast
    /// path (`fql`'s `Groups::iter`/`aggregate` walk every group exactly
    /// once) — the per-key `lookup_all` alternative pays O(log n) per
    /// group.
    pub fn iter_groups(&self) -> Box<dyn Iterator<Item = (Value, TupleGroup)> + '_> {
        match &self.body {
            Body::Unique(m) => Box::new(
                m.iter()
                    .map(|(k, t)| (k.clone(), TupleGroup::from([t.clone()]))),
            ),
            Body::Multi(m) => Box::new(m.iter().map(|(k, g)| (k.clone(), g.clone()))),
            Body::Computed { .. } => Box::new(std::iter::empty()),
            Body::Hybrid { map, .. } => Box::new(
                map.iter()
                    .map(|(k, t)| (k.clone(), TupleGroup::from([t.clone()]))),
            ),
        }
    }

    /// All `(key, tuple)` pairs, including computed ones when the domain is
    /// enumerable. Fails with [`FdmError::NotEnumerable`] if the relation
    /// has a computed part over a non-enumerable domain.
    pub fn tuples(&self) -> Result<Vec<(Value, Arc<TupleF>)>> {
        match &self.body {
            Body::Unique(_) | Body::Multi(_) => Ok(self.iter_stored().collect()),
            Body::Computed { domain, f } => {
                let keys = domain.enumerate().map_err(|_| FdmError::NotEnumerable {
                    what: format!("relation function '{}'", self.name),
                })?;
                let mut out = Vec::with_capacity(keys.len());
                for k in keys {
                    if let Some(t) = to_tuple(f(&k)?) {
                        out.push((k, t));
                    }
                }
                Ok(out)
            }
            Body::Hybrid {
                map,
                domain,
                fallback,
            } => {
                let keys = domain.enumerate().map_err(|_| FdmError::NotEnumerable {
                    what: format!("relation function '{}' (computed part)", self.name),
                })?;
                let mut out = Vec::new();
                let mut seen = std::collections::BTreeSet::new();
                for (k, t) in map.iter() {
                    out.push((k.clone(), t.clone()));
                    seen.insert(k.clone());
                }
                for k in keys {
                    if !seen.contains(&k) {
                        if let Some(t) = to_tuple(fallback(&k)?) {
                            out.push((k, t));
                        }
                    }
                }
                out.sort_by(|a, b| a.0.cmp(&b.0));
                Ok(out)
            }
        }
    }

    /// The keys at which the function is (storedly) defined.
    pub fn stored_keys(&self) -> Vec<Value> {
        match &self.body {
            Body::Unique(m) => m.keys().cloned().collect(),
            Body::Multi(m) => m.keys().cloned().collect(),
            Body::Computed { .. } => Vec::new(),
            Body::Hybrid { map, .. } => map.keys().cloned().collect(),
        }
    }

    fn check_constraints_for_insert(
        &self,
        key: &Value,
        tuple: &TupleF,
    ) -> Result<Vec<PMap<Value, Value>>> {
        let mut new_indexes = Vec::with_capacity(self.unique_indexes.len());
        let mut uniq_i = 0usize;
        for c in self.constraints.iter() {
            match c {
                Constraint::Unique(_) => {
                    let idx = &self.unique_indexes[uniq_i];
                    uniq_i += 1;
                    match c.unique_key(tuple) {
                        Some(uk) => {
                            if let Some(existing) = idx.get(&uk) {
                                if existing != key {
                                    return Err(FdmError::ConstraintViolation {
                                        constraint: c.to_string(),
                                        detail: format!(
                                            "value {uk} already present under key {existing}"
                                        ),
                                    });
                                }
                            }
                            new_indexes.push(idx.insert(uk, key.clone()).0);
                        }
                        None => new_indexes.push(idx.clone()),
                    }
                }
                Constraint::AttrDomain { attr, domain } => {
                    if let Some(v) = tuple.try_get(attr) {
                        if !domain.contains(&v) {
                            return Err(FdmError::ConstraintViolation {
                                constraint: c.to_string(),
                                detail: format!("value {v} outside domain"),
                            });
                        }
                    }
                }
            }
        }
        Ok(new_indexes)
    }

    fn rebuild(&self, body: Body, unique_indexes: Vec<PMap<Value, Value>>) -> RelationF {
        RelationF {
            name: self.name.clone(),
            key_attrs: self.key_attrs.clone(),
            constraints: self.constraints.clone(),
            unique_indexes: unique_indexes.into(),
            body,
            sketches: OnceLock::new(),
        }
    }

    /// Inserts a tuple under `key`. Fails on duplicate keys (the function
    /// definition *is* the primary-key constraint) and on constraint
    /// violations. Returns the new relation; the receiver is unchanged.
    pub fn insert(&self, key: Value, tuple: TupleF) -> Result<RelationF> {
        self.insert_arc(key, Arc::new(tuple))
    }

    /// [`Self::insert`] taking an already-shared tuple.
    pub fn insert_arc(&self, key: Value, tuple: Arc<TupleF>) -> Result<RelationF> {
        match &self.body {
            Body::Unique(map) => {
                if map.contains_key(&key) {
                    return Err(FdmError::DuplicateKey {
                        relation: self.name.to_string(),
                        key: key.to_string(),
                    });
                }
                let indexes = self.check_constraints_for_insert(&key, &tuple)?;
                let map = map.insert(key, tuple).0;
                Ok(self.rebuild(Body::Unique(map), indexes))
            }
            Body::Multi(map) => {
                let group = map.get(&key).cloned().unwrap_or_else(|| Arc::from([]));
                let mut g: Vec<Arc<TupleF>> = group.to_vec();
                g.push(tuple);
                let map = map.insert(key, g.into()).0;
                Ok(self.rebuild(Body::Multi(map), self.unique_indexes.to_vec()))
            }
            Body::Computed { .. } => Err(FdmError::Other(format!(
                "cannot insert into fully computed relation function '{}'",
                self.name
            ))),
            Body::Hybrid {
                map,
                domain,
                fallback,
            } => {
                if map.contains_key(&key) {
                    return Err(FdmError::DuplicateKey {
                        relation: self.name.to_string(),
                        key: key.to_string(),
                    });
                }
                let indexes = self.check_constraints_for_insert(&key, &tuple)?;
                let map = map.insert(key, tuple).0;
                Ok(self.rebuild(
                    Body::Hybrid {
                        map,
                        domain: domain.clone(),
                        fallback: fallback.clone(),
                    },
                    indexes,
                ))
            }
        }
    }

    /// Inserts a tuple under an automatically assigned integer key (paper
    /// Fig. 10: `customers.add({...})`). Returns the new relation and the
    /// assigned key.
    pub fn insert_auto(&self, tuple: TupleF) -> Result<(RelationF, Value)> {
        let next = match &self.body {
            Body::Unique(map) | Body::Hybrid { map, .. } => match map.last() {
                Some((Value::Int(i), _)) => Value::Int(i + 1),
                Some((other, _)) => {
                    return Err(FdmError::Other(format!(
                        "auto-id insert needs integer keys, relation '{}' has key {other}",
                        self.name
                    )))
                }
                None => Value::Int(1),
            },
            _ => {
                return Err(FdmError::Other(format!(
                    "auto-id insert unsupported for this body of '{}'",
                    self.name
                )))
            }
        };
        Ok((self.insert(next.clone(), tuple)?, next))
    }

    /// Replaces the tuple under `key` (paper Fig. 10:
    /// `customers[3] = {...}`); inserts if absent (upsert, mirroring the
    /// Python costume's assignment semantics).
    pub fn upsert(&self, key: Value, tuple: TupleF) -> Result<RelationF> {
        match &self.body {
            Body::Unique(map) => {
                let removed = self.delete(&key).unwrap_or_else(|_| self.clone());
                let _ = map; // old map only needed for the delete path above
                removed.insert(key, tuple)
            }
            Body::Hybrid { .. } => {
                let removed = self.delete(&key).unwrap_or_else(|_| self.clone());
                removed.insert(key, tuple)
            }
            _ => Err(FdmError::Other(format!(
                "upsert unsupported for this body of '{}'",
                self.name
            ))),
        }
    }

    /// Updates one attribute of the tuple under `key` (paper Fig. 10:
    /// `customers[3]['age'] = 50`).
    pub fn update_attr(
        &self,
        key: &Value,
        attr: &str,
        value: impl Into<Value>,
    ) -> Result<RelationF> {
        let tuple = self.lookup(key).ok_or_else(|| FdmError::Undefined {
            function: self.name.to_string(),
            input: key.to_string(),
        })?;
        self.upsert(key.clone(), tuple.with_attr(attr, value))
    }

    /// Applies `f` to the tuple under `key`, storing the result.
    pub fn update_tuple(
        &self,
        key: &Value,
        f: impl FnOnce(&TupleF) -> Result<TupleF>,
    ) -> Result<RelationF> {
        let tuple = self.lookup(key).ok_or_else(|| FdmError::Undefined {
            function: self.name.to_string(),
            input: key.to_string(),
        })?;
        self.upsert(key.clone(), f(&tuple)?)
    }

    /// Deletes the tuple under `key` (paper Fig. 10: `del customers[3]`).
    /// Fails if the function is not defined there.
    pub fn delete(&self, key: &Value) -> Result<RelationF> {
        match &self.body {
            Body::Unique(map) => {
                let (map, old) = map.remove(key);
                let old = old.ok_or_else(|| FdmError::Undefined {
                    function: self.name.to_string(),
                    input: key.to_string(),
                })?;
                let indexes = self.drop_from_unique_indexes(&old);
                Ok(self.rebuild(Body::Unique(map), indexes))
            }
            Body::Multi(map) => {
                let (map, old) = map.remove(key);
                if old.is_none() {
                    return Err(FdmError::Undefined {
                        function: self.name.to_string(),
                        input: key.to_string(),
                    });
                }
                Ok(self.rebuild(Body::Multi(map), self.unique_indexes.to_vec()))
            }
            Body::Computed { .. } => Err(FdmError::Other(format!(
                "cannot delete from fully computed relation function '{}'",
                self.name
            ))),
            Body::Hybrid {
                map,
                domain,
                fallback,
            } => {
                let (map, old) = map.remove(key);
                let old = old.ok_or_else(|| FdmError::Undefined {
                    function: self.name.to_string(),
                    input: key.to_string(),
                })?;
                let indexes = self.drop_from_unique_indexes(&old);
                Ok(self.rebuild(
                    Body::Hybrid {
                        map,
                        domain: domain.clone(),
                        fallback: fallback.clone(),
                    },
                    indexes,
                ))
            }
        }
    }

    fn drop_from_unique_indexes(&self, tuple: &TupleF) -> Vec<PMap<Value, Value>> {
        let mut out = Vec::with_capacity(self.unique_indexes.len());
        let mut uniq_i = 0;
        for c in self.constraints.iter() {
            if let Constraint::Unique(_) = c {
                let idx = &self.unique_indexes[uniq_i];
                uniq_i += 1;
                match c.unique_key(tuple) {
                    Some(uk) => out.push(idx.remove(&uk).0),
                    None => out.push(idx.clone()),
                }
            }
        }
        out
    }

    /// Builds an **alternative relation function** keyed by `attr` — the
    /// paper's `R2(foo) := t_foo` / `R3(foo) ↦ {TF}` (§2.4): what a
    /// relational DBMS calls a secondary index is, in FDM, simply another
    /// relation function over the same tuples.
    ///
    /// The result is a multi body (duplicates allowed). If the attribute is
    /// actually unique, every group has one member. The index is built in
    /// one sort + one O(n) bulk construction (not n persistent inserts);
    /// within a group, tuples keep the base relation's key order (the sort
    /// is stable).
    pub fn index_by(&self, attr: &str) -> Result<RelationF> {
        let mut keyed: Vec<(Value, Arc<TupleF>)> = Vec::new();
        for (_, tuple) in self.tuples()? {
            keyed.push((tuple.get(attr)?, tuple));
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(RelationF {
            name: Arc::from(format!("{}_by_{attr}", self.name)),
            key_attrs: Arc::from([Name::from(attr)]),
            constraints: Arc::from([]),
            unique_indexes: Arc::from([]),
            body: Body::Multi(bulk_group_sorted(keyed)),
            sketches: OnceLock::new(),
        })
    }

    /// Creates a multi-body relation directly from groups (used by FQL's
    /// `group` operator). Already-sorted group keys (e.g. from a
    /// `BTreeMap`) take the O(n) bulk path; unsorted input is sorted first
    /// and later duplicates win, matching the old insert-loop semantics.
    pub fn from_groups(
        name: impl AsRef<str>,
        key_attrs: &[&str],
        groups: impl IntoIterator<Item = (Value, Vec<Arc<TupleF>>)>,
    ) -> RelationF {
        let mut entries: Vec<(Value, TupleGroup)> =
            groups.into_iter().map(|(k, g)| (k, g.into())).collect();
        let sorted = entries.windows(2).all(|w| w[0].0 < w[1].0);
        if !sorted {
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            // stable sort → the last entry of a duplicate run wins
            entries.reverse();
            entries.dedup_by(|a, b| a.0 == b.0);
            entries.reverse();
        }
        RelationF {
            name: Arc::from(name.as_ref()),
            key_attrs: key_attrs.iter().map(|k| Name::from(*k)).collect(),
            constraints: Arc::from([]),
            unique_indexes: Arc::from([]),
            body: Body::Multi(PMap::from_sorted_vec(entries)),
            sketches: OnceLock::new(),
        }
    }

    /// Creates a stored (unique) relation function in **O(n)** from entries
    /// sorted by strictly ascending key — the bulk-construction fast path
    /// every FQL operator builds its output through (via
    /// [`RelationBuilder`]). The ordering contract is checked with a
    /// `debug_assert` only.
    pub fn from_sorted(
        name: impl AsRef<str>,
        key_attrs: &[&str],
        entries: Vec<(Value, Arc<TupleF>)>,
    ) -> RelationF {
        RelationF {
            name: Arc::from(name.as_ref()),
            key_attrs: key_attrs.iter().map(|k| Name::from(*k)).collect(),
            constraints: Arc::from([]),
            unique_indexes: Arc::from([]),
            body: Body::Unique(PMap::from_sorted_vec(entries)),
            sketches: OnceLock::new(),
        }
    }

    /// Starts a [`RelationBuilder`] with this relation's name and key
    /// attributes — the usual way operators derive an output relation from
    /// their input.
    pub fn builder_like(&self) -> RelationBuilder {
        RelationBuilder {
            name: self.name.clone(),
            key_attrs: self.key_attrs.clone(),
            entries: Vec::new(),
            sorted: true,
        }
    }
}

/// Groups `(key, tuple)` pairs sorted by key into a multi body in O(n).
fn bulk_group_sorted(keyed: Vec<(Value, Arc<TupleF>)>) -> PMap<Value, TupleGroup> {
    let mut groups: Vec<(Value, TupleGroup)> = Vec::new();
    let mut keyed = keyed.into_iter().peekable();
    while let Some((key, first)) = keyed.next() {
        let mut g = vec![first];
        while keyed.peek().is_some_and(|(k, _)| *k == key) {
            g.push(keyed.next().expect("peeked").1);
        }
        groups.push((key, g.into()));
    }
    PMap::from_sorted_vec(groups)
}

/// Accumulates `(key, tuple)` pairs and bulk-builds a stored relation
/// function.
///
/// This replaces the `out = out.insert(...)?` loop idiom: each persistent
/// insert costs O(log n) time *and* O(log n) `Arc` allocations (the whole
/// root-to-leaf path is rebuilt), so building an n-tuple result that way is
/// O(n log n) with heavy allocator traffic. The builder appends to a plain
/// `Vec`, detects already-sorted input (the common case — operators iterate
/// their input in key order), sorts once otherwise, and hands the run to
/// [`PMap::from_sorted_vec`] for an O(n) balanced build.
///
/// Duplicate keys fail [`RelationBuilder::build`] with
/// [`FdmError::DuplicateKey`], exactly like the insert loop they replace.
///
/// # Examples
///
/// ```
/// use fdm_core::{RelationBuilder, TupleF, Value};
///
/// let mut b = RelationBuilder::new("evens", &["n"]);
/// for n in [0i64, 2, 4] {
///     b.push(Value::Int(n), TupleF::builder("t").attr("n", n).build());
/// }
/// let rel = b.build().unwrap();
/// assert_eq!(rel.len(), 3);
/// assert!(rel.lookup(&Value::Int(2)).is_some());
/// ```
#[derive(Clone)]
pub struct RelationBuilder {
    name: Name,
    key_attrs: Arc<[Name]>,
    entries: Vec<(Value, Arc<TupleF>)>,
    /// `true` while pushed keys have been strictly ascending.
    sorted: bool,
}

impl RelationBuilder {
    /// Starts an empty builder for a relation named `name` with the given
    /// key attributes.
    pub fn new(name: impl AsRef<str>, key_attrs: &[&str]) -> RelationBuilder {
        RelationBuilder {
            name: Arc::from(name.as_ref()),
            key_attrs: key_attrs.iter().map(|k| Name::from(*k)).collect(),
            entries: Vec::new(),
            sorted: true,
        }
    }

    /// Pre-allocates room for `n` entries.
    pub fn with_capacity(mut self, n: usize) -> RelationBuilder {
        self.entries.reserve(n);
        self
    }

    /// Appends a tuple under `key`.
    pub fn push(&mut self, key: Value, tuple: TupleF) {
        self.push_arc(key, Arc::new(tuple));
    }

    /// [`Self::push`] taking an already-shared tuple.
    pub fn push_arc(&mut self, key: Value, tuple: Arc<TupleF>) {
        if self.sorted {
            if let Some((last, _)) = self.entries.last() {
                if *last >= key {
                    self.sorted = false;
                }
            }
        }
        self.entries.push((key, tuple));
    }

    /// Number of entries accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bulk-builds the relation: sorts if the input arrived out of order
    /// (stable, so equal keys keep push order before the duplicate check),
    /// rejects duplicate keys, and assembles the tree in O(n).
    pub fn build(self) -> Result<RelationF> {
        let RelationBuilder {
            name,
            key_attrs,
            mut entries,
            sorted,
        } = self;
        if !sorted {
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            if let Some(w) = entries.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(FdmError::DuplicateKey {
                    relation: name.to_string(),
                    key: w[0].0.to_string(),
                });
            }
        }
        Ok(RelationF {
            name,
            key_attrs,
            constraints: Arc::from([]),
            unique_indexes: Arc::from([]),
            body: Body::Unique(PMap::from_sorted_vec(entries)),
            sketches: OnceLock::new(),
        })
    }

    /// Bulk-builds the relation **with** integrity constraints — the
    /// constraint-aware companion of [`Self::build`], for loaders that
    /// know their schema up front (`to_fdm`-style bulk ingest).
    ///
    /// Where `build()` + [`RelationF::with_constraint`] per constraint
    /// would re-scan the relation once per constraint *after* paying the
    /// tree build, this validates every `AttrDomain` constraint and
    /// collects every `Unique` constraint's index pairs in **one pass**
    /// over the sorted entries, then bulk-builds each unique index with
    /// the same O(n) `from_sorted_vec` path the body itself uses.
    /// Violations report with the same error type and message format as
    /// the incremental path ([`FdmError::ConstraintViolation`]); when the
    /// input violates *several* constraints at once, **which** violation
    /// surfaces first can differ (the single pass checks per tuple in key
    /// order and defers duplicate-unique-value detection to after the
    /// scan, where the incremental path checks per constraint in
    /// declaration order).
    pub fn build_with_constraints(self, constraints: &[Constraint]) -> Result<RelationF> {
        let rel = self.build()?;
        let Body::Unique(map) = &rel.body else {
            unreachable!("RelationBuilder always builds a unique body")
        };
        // one pass over the entries, all constraints checked per tuple
        let uniques: Vec<&Constraint> = constraints
            .iter()
            .filter(|c| matches!(c, Constraint::Unique(_)))
            .collect();
        let mut index_pairs: Vec<Vec<(Value, Value)>> = uniques
            .iter()
            .map(|_| Vec::with_capacity(map.len()))
            .collect();
        for (key, tuple) in map.iter() {
            let mut uniq_i = 0usize;
            for c in constraints {
                match c {
                    Constraint::Unique(_) => {
                        if let Some(uk) = c.unique_key(tuple) {
                            index_pairs[uniq_i].push((uk, key.clone()));
                        }
                        uniq_i += 1;
                    }
                    Constraint::AttrDomain { attr, domain } => {
                        if let Some(v) = tuple.try_get(attr) {
                            if !domain.contains(&v) {
                                return Err(FdmError::ConstraintViolation {
                                    constraint: c.to_string(),
                                    detail: format!("existing value {v} outside domain"),
                                });
                            }
                        }
                    }
                }
            }
        }
        let mut indexes: Vec<PMap<Value, Value>> = Vec::with_capacity(uniques.len());
        for (c, mut pairs) in uniques.into_iter().zip(index_pairs) {
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            if let Some(w) = pairs.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(FdmError::ConstraintViolation {
                    constraint: c.to_string(),
                    detail: format!("existing data has duplicate value {}", w[0].0),
                });
            }
            indexes.push(PMap::from_sorted_vec(pairs));
        }
        Ok(RelationF {
            constraints: constraints.to_vec().into(),
            unique_indexes: indexes.into(),
            ..rel
        })
    }
}

/// Interprets a computed result as a tuple function if possible.
fn to_tuple(v: Value) -> Option<Arc<TupleF>> {
    match v {
        Value::Fn(f) => f.as_tuple().ok().cloned(),
        _ => None,
    }
}

impl Function for RelationF {
    fn fn_name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        1
    }

    fn domain(&self) -> Domain {
        match &self.body {
            Body::Unique(m) => Domain::enumerated(m.keys().cloned()),
            Body::Multi(m) => Domain::enumerated(m.keys().cloned()),
            Body::Computed { domain, .. } => domain.clone(),
            Body::Hybrid { map, domain, .. } => {
                // The hybrid is defined on the union of its stored keys and
                // the fallback domain; the stored keys are usually inside
                // the declared domain already, so report the declared one
                // refined by "or stored".
                let keys: Vec<Value> = map.keys().cloned().collect();
                let d = domain.clone();
                let keyset = fdm_storage::PSet::from_iter(keys);
                Domain::Predicate {
                    base: Box::new(Domain::Typed(crate::types::ValueType::Int)),
                    pred: Arc::new(move |v| keyset.contains(v) || d.contains(v)),
                    description: format!("stored keys ∪ {domain}"),
                }
            }
        }
    }

    fn apply(&self, args: &[Value]) -> Result<Value> {
        if args.len() != 1 {
            return Err(FdmError::ArityMismatch {
                function: self.name.to_string(),
                expected: 1,
                found: args.len(),
            });
        }
        let key = &args[0];
        match &self.body {
            Body::Multi(m) => match m.get(key) {
                Some(group) => {
                    Ok(Value::list(group.iter().map(|t| {
                        Value::Fn(crate::function::FnValue::Tuple(t.clone()))
                    })))
                }
                None => Err(FdmError::Undefined {
                    function: self.name.to_string(),
                    input: key.to_string(),
                }),
            },
            Body::Computed { domain, f } => {
                if !domain.contains(key) {
                    return Err(FdmError::Undefined {
                        function: self.name.to_string(),
                        input: key.to_string(),
                    });
                }
                f(key)
            }
            Body::Hybrid {
                map,
                domain,
                fallback,
            } => match map.get(key) {
                Some(t) => Ok(Value::Fn(crate::function::FnValue::Tuple(t.clone()))),
                None if domain.contains(key) => fallback(key),
                None => Err(FdmError::Undefined {
                    function: self.name.to_string(),
                    input: key.to_string(),
                }),
            },
            Body::Unique(m) => match m.get(key) {
                Some(t) => Ok(Value::Fn(crate::function::FnValue::Tuple(t.clone()))),
                None => Err(FdmError::Undefined {
                    function: self.name.to_string(),
                    input: key.to_string(),
                }),
            },
        }
    }
}

impl fmt::Debug for RelationF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.body {
            Body::Unique(_) => "stored",
            Body::Multi(_) => "multi",
            Body::Computed { .. } => "computed",
            Body::Hybrid { .. } => "hybrid",
        };
        write!(
            f,
            "RelationF({} [{kind}], key=({}), {} stored tuple(s))",
            self.name,
            self.key_attrs
                .iter()
                .map(|n| n.as_ref())
                .collect::<Vec<_>>()
                .join(", "),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::apply1;
    use crate::types::ValueType;

    fn alice() -> TupleF {
        TupleF::builder("t1")
            .attr("name", "Alice")
            .attr("foo", 12)
            .build()
    }

    fn bob() -> TupleF {
        TupleF::builder("t3")
            .attr("name", "Bob")
            .attr("foo", 25)
            .build()
    }

    fn thomas() -> TupleF {
        TupleF::builder("t4")
            .attr("name", "Thomas")
            .attr("foo", 25)
            .build()
    }

    fn r1() -> RelationF {
        RelationF::new("R1", &["bar"])
            .insert(Value::Int(1), alice())
            .unwrap()
            .insert(Value::Int(3), bob())
            .unwrap()
    }

    #[test]
    fn paper_r1_semantics() {
        let r = r1();
        // R1(1) returns t1; R1(3) returns t3; calls elsewhere are undefined.
        assert_eq!(
            r.lookup(&Value::Int(1)).unwrap().get("name").unwrap(),
            Value::str("Alice")
        );
        assert!(r.lookup(&Value::Int(2)).is_none());
        let err = apply1(&r, &Value::Int(2)).unwrap_err();
        assert!(matches!(err, FdmError::Undefined { .. }));
    }

    #[test]
    fn primary_key_unique_by_function_definition() {
        let r = r1();
        let err = r.insert(Value::Int(1), thomas()).unwrap_err();
        assert!(matches!(err, FdmError::DuplicateKey { .. }));
    }

    #[test]
    fn persistence_on_all_mutations() {
        let r = r1();
        let r2 = r.upsert(Value::Int(1), thomas()).unwrap();
        let r3 = r.delete(&Value::Int(3)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r2.len(), 2);
        assert_eq!(r3.len(), 1);
        assert_eq!(
            r.lookup(&Value::Int(1)).unwrap().get("name").unwrap(),
            Value::str("Alice"),
            "original snapshot unaffected"
        );
        assert_eq!(
            r2.lookup(&Value::Int(1)).unwrap().get("name").unwrap(),
            Value::str("Thomas")
        );
    }

    #[test]
    fn auto_id_insert() {
        let (r, k) = r1().insert_auto(thomas()).unwrap();
        assert_eq!(k, Value::Int(4), "max key 3 + 1");
        assert_eq!(r.len(), 3);
        let (r0, k0) = RelationF::new("empty", &["id"])
            .insert_auto(alice())
            .unwrap();
        assert_eq!(k0, Value::Int(1));
        assert_eq!(r0.len(), 1);
    }

    #[test]
    fn update_attr_fig10() {
        // customers[3]['age'] = 50
        let r = r1().update_attr(&Value::Int(3), "foo", 26).unwrap();
        assert_eq!(
            r.lookup(&Value::Int(3)).unwrap().get("foo").unwrap(),
            Value::Int(26)
        );
        let err = r.update_attr(&Value::Int(99), "foo", 1).unwrap_err();
        assert!(matches!(err, FdmError::Undefined { .. }));
    }

    #[test]
    fn delete_missing_is_undefined() {
        let err = r1().delete(&Value::Int(42)).unwrap_err();
        assert!(matches!(err, FdmError::Undefined { .. }));
    }

    #[test]
    fn index_by_builds_alternative_relation_function() {
        // R2(foo) organized by attribute foo (paper §2.4); with t4 added,
        // foo=25 has duplicates — R3(foo) ↦ {TF}.
        let r = r1().insert(Value::Int(4), thomas()).unwrap();
        let by_foo = r.index_by("foo").unwrap();
        assert!(by_foo.is_multi());
        assert_eq!(by_foo.lookup_all(&Value::Int(25)).len(), 2);
        assert_eq!(by_foo.lookup_all(&Value::Int(12)).len(), 1);
        assert!(by_foo.lookup_all(&Value::Int(99)).is_empty());
        // Through the Function interface a multi lookup returns a list of
        // tuple functions.
        let v = apply1(&by_foo, &Value::Int(25)).unwrap();
        assert_eq!(v.as_list("index result").unwrap().len(), 2);
    }

    #[test]
    fn computed_relation_r4() {
        // R4(bar): stored for bar ∈ {1,3}, λ elsewhere (paper §2.4):
        // the λ returns {'name': rndStr(seed=bar), 'foo': 42·bar}.
        let r4 = r1()
            .with_fallback(Domain::Typed(ValueType::Int), |key| {
                let bar = key.as_int("R4 fallback")?;
                let t = TupleF::builder("λ")
                    .attr("name", format!("rnd_{bar}"))
                    .attr("foo", 42 * bar)
                    .build();
                Ok(Value::Fn(crate::function::FnValue::from(t)))
            })
            .unwrap();
        // R4(10)('foo') = 420
        assert_eq!(
            r4.lookup(&Value::Int(10)).unwrap().get("foo").unwrap(),
            Value::Int(420)
        );
        // R4(3)('foo') = 25 — stored tuple wins
        assert_eq!(
            r4.lookup(&Value::Int(3)).unwrap().get("foo").unwrap(),
            Value::Int(25)
        );
        // the domain is all ints — not enumerable
        assert!(!r4.is_enumerable());
        assert!(matches!(r4.tuples(), Err(FdmError::NotEnumerable { .. })));
    }

    #[test]
    fn computed_relation_with_enumerable_domain_enumerates() {
        let r = RelationF::computed("squares", &["n"], Domain::IntRange(1, 5), |key| {
            let n = key.as_int("squares")?;
            Ok(Value::Fn(crate::function::FnValue::from(
                TupleF::builder("sq")
                    .attr("n", n)
                    .attr("square", n * n)
                    .build(),
            )))
        });
        let all = r.tuples().unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[4].1.get("square").unwrap(), Value::Int(25));
        assert!(r.lookup(&Value::Int(7)).is_none(), "outside domain");
        assert!(
            r.insert(Value::Int(9), alice()).is_err(),
            "computed is read-only"
        );
    }

    #[test]
    fn unique_constraint_enforced_via_index() {
        let r = r1().with_constraint(Constraint::unique(&["name"])).unwrap();
        let dup = TupleF::builder("dup")
            .attr("name", "Alice")
            .attr("foo", 1)
            .build();
        let err = r.insert(Value::Int(9), dup).unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
        // deleting frees the value again
        let r = r.delete(&Value::Int(1)).unwrap();
        let ok = TupleF::builder("ok")
            .attr("name", "Alice")
            .attr("foo", 1)
            .build();
        assert!(r.insert(Value::Int(9), ok).is_ok());
    }

    #[test]
    fn unique_constraint_rejects_existing_duplicates() {
        let r = r1().insert(Value::Int(4), thomas()).unwrap();
        // foo=25 occurs twice (bob, thomas)
        let err = r.with_constraint(Constraint::unique(&["foo"])).unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
    }

    #[test]
    fn attr_domain_constraint() {
        let r = RelationF::new("people", &["id"])
            .with_constraint(Constraint::attr_domain("age", Domain::IntRange(0, 150)))
            .unwrap();
        let ok = TupleF::builder("p").attr("age", 30).build();
        let r = r.insert(Value::Int(1), ok).unwrap();
        let bad = TupleF::builder("p").attr("age", 200).build();
        let err = r.insert(Value::Int(2), bad).unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
    }

    #[test]
    fn upsert_on_unique_updates_indexes() {
        let r = r1().with_constraint(Constraint::unique(&["name"])).unwrap();
        // rename Alice -> Zoe, then a new Alice must be allowed
        let zoe = TupleF::builder("z")
            .attr("name", "Zoe")
            .attr("foo", 1)
            .build();
        let r = r.upsert(Value::Int(1), zoe).unwrap();
        let alice2 = TupleF::builder("a")
            .attr("name", "Alice")
            .attr("foo", 2)
            .build();
        assert!(r.insert(Value::Int(7), alice2).is_ok());
    }

    #[test]
    fn from_sorted_equals_insert_loop() {
        let entries: Vec<(Value, Arc<TupleF>)> = (0..100)
            .map(|i| {
                (
                    Value::Int(i),
                    Arc::new(TupleF::builder("t").attr("x", i * 2).build()),
                )
            })
            .collect();
        let bulk = RelationF::from_sorted("nums", &["n"], entries.clone());
        let mut reference = RelationF::new("nums", &["n"]);
        for (k, t) in entries {
            reference = reference.insert_arc(k, t).unwrap();
        }
        assert_eq!(bulk.len(), reference.len());
        for (k, t) in bulk.iter_stored() {
            assert!(t.eq_data(&reference.lookup(&k).unwrap()));
        }
        // bulk-built relations are first-class: point ops still work
        let bulk2 = bulk.delete(&Value::Int(50)).unwrap();
        assert_eq!(bulk2.len(), 99);
        assert!(bulk
            .insert(Value::Int(100), TupleF::builder("t").attr("x", 0).build())
            .is_ok());
    }

    #[test]
    fn build_with_constraints_validates_and_indexes_in_one_pass() {
        let mut b = RelationBuilder::new("people", &["id"]);
        b.push(Value::Int(1), alice());
        b.push(Value::Int(3), bob());
        let rel = b
            .build_with_constraints(&[
                Constraint::unique(&["name"]),
                Constraint::attr_domain("foo", Domain::IntRange(0, 100)),
            ])
            .unwrap();
        assert_eq!(rel.constraints().len(), 2);
        // the bulk-built unique index enforces exactly like with_constraint
        let dup = TupleF::builder("dup")
            .attr("name", "Alice")
            .attr("foo", 1)
            .build();
        let err = rel.insert(Value::Int(9), dup).unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
        // and deleting releases the indexed value
        let rel2 = rel.delete(&Value::Int(1)).unwrap();
        let ok = TupleF::builder("ok")
            .attr("name", "Alice")
            .attr("foo", 1)
            .build();
        assert!(rel2.insert(Value::Int(9), ok).is_ok());

        // equivalent to the incremental path
        let incremental = RelationF::new("people", &["id"])
            .insert(Value::Int(1), alice())
            .unwrap()
            .insert(Value::Int(3), bob())
            .unwrap()
            .with_constraint(Constraint::unique(&["name"]))
            .unwrap();
        let bad = TupleF::builder("b").attr("name", "Bob").build();
        assert_eq!(
            rel.insert(Value::Int(8), bad.clone())
                .unwrap_err()
                .to_string(),
            incremental
                .insert(Value::Int(8), bad)
                .unwrap_err()
                .to_string()
        );
    }

    #[test]
    fn build_with_constraints_rejects_violations() {
        // duplicate unique value in the loaded data
        let mut b = RelationBuilder::new("people", &["id"]);
        b.push(Value::Int(1), bob());
        b.push(Value::Int(2), thomas()); // same foo=25
        let err = b
            .build_with_constraints(&[Constraint::unique(&["foo"])])
            .unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
        // domain violation in the loaded data
        let mut b = RelationBuilder::new("people", &["id"]);
        b.push(Value::Int(1), alice());
        let err = b
            .build_with_constraints(&[Constraint::attr_domain("foo", Domain::IntRange(100, 200))])
            .unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
        // duplicate primary keys still fail exactly like build()
        let mut b = RelationBuilder::new("people", &["id"]);
        b.push(Value::Int(1), alice());
        b.push(Value::Int(1), bob());
        let err = b.build_with_constraints(&[]).unwrap_err();
        assert!(matches!(err, FdmError::DuplicateKey { .. }));
    }

    #[test]
    fn from_groups_roundtrip() {
        let g = RelationF::from_groups(
            "by_age",
            &["age"],
            [
                (Value::Int(30), vec![Arc::new(alice())]),
                (Value::Int(40), vec![Arc::new(bob()), Arc::new(thomas())]),
            ],
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g.lookup_all(&Value::Int(40)).len(), 2);
    }

    #[test]
    fn renamed_shares_data() {
        let r = r1().renamed("customers");
        assert_eq!(r.name(), "customers");
        assert_eq!(r.len(), 2);
    }
}
