//! The universal value type.
//!
//! FDM is higher-order: a value may itself be a function (a tuple function
//! nested in an attribute, a relation function stored under an attribute,
//! a database nested in a database, ... — paper §2.6 "Blurring the lines").
//! [`Value::Fn`] carries any of those via [`FnValue`].

use crate::error::{FdmError, Result};
use crate::function::FnValue;
use crate::types::ValueType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single FDM value.
///
/// `Value` has a **total order** so it can serve as the key of persistent
/// maps (relation-function inputs). The order is: first by type rank
/// (`Unit < Bool < Int/Float < Str < List < Fn`), then within the type.
/// Ints and floats compare numerically with each other (so `1` and `1.0`
/// are *equal* as keys); floats use IEEE total order for NaN stability.
/// Function values compare by identity (pointer), which is stable within a
/// process run — adequate because function values are never used as stored
/// relation keys, only carried inside tuples.
#[derive(Clone)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An immutable string.
    Str(Arc<str>),
    /// A list (composite keys, argument tuples of relationship functions).
    List(Arc<[Value]>),
    /// A function value — this is what makes FDM higher-order.
    Fn(FnValue),
}

impl Value {
    /// The value's 64-bit [`FxHasher`](crate::fxhash::FxHasher) hash —
    /// **the** hash every internal consumer must share (the tuple
    /// fingerprint cache, hash-bucketed grouping, the distinct-count
    /// sketches), so a value hashes identically everywhere. Honors this
    /// type's cross-type numeric `Eq`: `Eq ⟹ equal hash`.
    pub fn fx_hash(&self) -> u64 {
        let mut h = crate::fxhash::FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }

    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Unit => ValueType::Unit,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::List(_) => ValueType::List,
            Value::Fn(_) => ValueType::Function,
        }
    }

    /// Extracts an `i64`, or reports a type mismatch in `context`.
    pub fn as_int(&self, context: &str) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(FdmError::TypeMismatch {
                expected: ValueType::Int,
                found: other.value_type(),
                context: context.to_string(),
            }),
        }
    }

    /// Extracts an `f64` (accepting ints, which widen), or reports a type
    /// mismatch in `context`.
    pub fn as_float(&self, context: &str) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(FdmError::TypeMismatch {
                expected: ValueType::Float,
                found: other.value_type(),
                context: context.to_string(),
            }),
        }
    }

    /// Extracts a string slice, or reports a type mismatch in `context`.
    pub fn as_str(&self, context: &str) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(FdmError::TypeMismatch {
                expected: ValueType::Str,
                found: other.value_type(),
                context: context.to_string(),
            }),
        }
    }

    /// Extracts a bool, or reports a type mismatch in `context`.
    pub fn as_bool(&self, context: &str) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(FdmError::TypeMismatch {
                expected: ValueType::Bool,
                found: other.value_type(),
                context: context.to_string(),
            }),
        }
    }

    /// Extracts a list slice, or reports a type mismatch in `context`.
    pub fn as_list(&self, context: &str) -> Result<&[Value]> {
        match self {
            Value::List(xs) => Ok(xs),
            other => Err(FdmError::TypeMismatch {
                expected: ValueType::List,
                found: other.value_type(),
                context: context.to_string(),
            }),
        }
    }

    /// Extracts a function value, or reports a type mismatch in `context`.
    pub fn as_fn(&self, context: &str) -> Result<&FnValue> {
        match self {
            Value::Fn(f) => Ok(f),
            other => Err(FdmError::TypeMismatch {
                expected: ValueType::Function,
                found: other.value_type(),
                context: context.to_string(),
            }),
        }
    }

    /// Numeric addition with int/float promotion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (a, b) if a.value_type().is_numeric() && b.value_type().is_numeric() => {
                Ok(Value::Float(a.as_float("add")? + b.as_float("add")?))
            }
            (Value::Str(a), Value::Str(b)) => {
                let mut s = String::with_capacity(a.len() + b.len());
                s.push_str(a);
                s.push_str(b);
                Ok(Value::str(s))
            }
            (a, b) => Err(FdmError::TypeMismatch {
                expected: a.value_type(),
                found: b.value_type(),
                context: "addition".to_string(),
            }),
        }
    }

    /// Numeric subtraction with int/float promotion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            (a, b) if a.value_type().is_numeric() && b.value_type().is_numeric() => {
                Ok(Value::Float(a.as_float("sub")? - b.as_float("sub")?))
            }
            (a, b) => Err(FdmError::TypeMismatch {
                expected: a.value_type(),
                found: b.value_type(),
                context: "subtraction".to_string(),
            }),
        }
    }

    /// Numeric multiplication with int/float promotion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            (a, b) if a.value_type().is_numeric() && b.value_type().is_numeric() => {
                Ok(Value::Float(a.as_float("mul")? * b.as_float("mul")?))
            }
            (a, b) => Err(FdmError::TypeMismatch {
                expected: a.value_type(),
                found: b.value_type(),
                context: "multiplication".to_string(),
            }),
        }
    }

    /// Numeric division; integer division for int/int (errors on zero).
    pub fn div(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(FdmError::Other("division by zero".to_string())),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_div(*b))),
            (a, b) if a.value_type().is_numeric() && b.value_type().is_numeric() => {
                Ok(Value::Float(a.as_float("div")? / b.as_float("div")?))
            }
            (a, b) => Err(FdmError::TypeMismatch {
                expected: a.value_type(),
                found: b.value_type(),
                context: "division".to_string(),
            }),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::List(_) => 4,
            Value::Fn(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Cross-numeric comparison: compare as floats, but make exact
            // int-float ties deterministic.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Fn(a), Fn(b)) => a.identity().cmp(&b.identity()),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Unit => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Every numeric hashes through the total-order bit pattern of
            // its f64 form. `Int(a)` can compare equal to `Float(b)` only
            // when `a as f64` is bit-identical to `b` (the Ord
            // cross-numeric arm), so hashing the *rounded* bits — not the
            // exact integer — is what keeps Eq ⟹ equal-hash beyond 2^53
            // too. Distinct large ints that round to the same float share
            // a hash bucket; the full equality compare still separates
            // them, and `-0.0` vs `0.0` (unequal under `total_cmp`) hash
            // apart, which is allowed.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                2u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::List(xs) => {
                5u8.hash(state);
                xs.len().hash(state);
                for x in xs.iter() {
                    x.hash(state);
                }
            }
            Value::Fn(f) => {
                6u8.hash(state);
                f.identity().hash(state);
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::List(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Value::Fn(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_types() {
        let vals = [
            Value::Unit,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(3),
            Value::str("a"),
            Value::list([Value::Int(1)]),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn int_float_cross_comparison() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        // equal keys must hash equal
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn eq_implies_equal_hash_beyond_f64_precision() {
        // 2^53 + 1 rounds to 2^53 as f64, so this int and float compare
        // equal through the cross-numeric arm — they must hash equal too
        // (hash-bucketed consumers would otherwise drop data).
        let i = Value::Int((1i64 << 53) + 1);
        let f = Value::Float((1i64 << 53) as f64);
        assert_eq!(i, f);
        assert_eq!(hash_of(&i), hash_of(&f));
        // the exact int is equal to the same-valued float as well
        let i0 = Value::Int(1i64 << 53);
        assert_eq!(i0, f);
        assert_eq!(hash_of(&i0), hash_of(&f));
        // -0.0 and 0.0 are distinct under total_cmp, so they may (and do)
        // hash apart — and neither breaks the Eq ⟹ equal-hash rule
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::list([Value::Int(1), Value::Int(2)]);
        let b = Value::list([Value::Int(1), Value::Int(3)]);
        let c = Value::list([Value::Int(1)]);
        assert!(a < b);
        assert!(c < a, "prefix sorts first");
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::str("foo").add(&Value::str("bar")).unwrap(),
            Value::str("foobar")
        );
        assert!(Value::Int(1).add(&Value::Bool(true)).is_err());
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(7.0).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn accessors_report_context() {
        let err = Value::str("x").as_int("the test").unwrap_err();
        assert!(err.to_string().contains("the test"));
        assert_eq!(Value::Int(5).as_float("f").unwrap(), 5.0);
        assert!(Value::Bool(true).as_bool("b").unwrap());
        assert_eq!(Value::list([Value::Int(1)]).as_list("l").unwrap().len(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(
            Value::list([Value::Int(1), Value::str("a")]).to_string(),
            "(1, 'a')"
        );
        assert_eq!(Value::Unit.to_string(), "()");
    }
}
