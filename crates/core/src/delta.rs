//! Deltas over the persistent structures: what changed between two
//! versions of a relation, relationship, or whole database.
//!
//! This is the vocabulary incremental view maintenance (the `fdm-fql`
//! `ivm` module) and the transaction layer's view catalog speak to each
//! other: a commit's writeset, or a plain before/after pair of database
//! values, is normalized into a [`DbDelta`] — per-entry row changes where
//! both sides are relations, an explicit [`EntryDelta::Replaced`] marker
//! where an entry was rebound wholesale — and propagated through
//! maintained query plans instead of recomputing them.
//!
//! Diffing leans on the cached [`DataKey`](crate::DataKey) fingerprints:
//! deciding whether a shared key actually changed costs one hash compare
//! in the steady state, the same trick the PR 3 merge setops use.

use crate::error::{Name, Result};
use crate::relation::RelationF;
use crate::relationship::RelationshipF;
use crate::tuple::TupleF;
use crate::value::Value;
use crate::DatabaseF;
use std::sync::Arc;

/// One key's transition in a relation: `old` is the tuple before, `new`
/// the tuple after; `None` on either side means the key was absent there.
/// An insert has no `old`, a remove has no `new`, an update has both.
#[derive(Debug, Clone)]
pub struct TupleChange {
    /// The relation key the change happened under.
    pub key: Value,
    /// The tuple previously stored under `key`, if any.
    pub old: Option<Arc<TupleF>>,
    /// The tuple now stored under `key`, if any.
    pub new: Option<Arc<TupleF>>,
}

impl TupleChange {
    /// True when the key appeared (no `old`).
    pub fn is_insert(&self) -> bool {
        self.old.is_none() && self.new.is_some()
    }

    /// True when the key disappeared (no `new`).
    pub fn is_remove(&self) -> bool {
        self.old.is_some() && self.new.is_none()
    }

    /// True when the key exists on both sides (with different data —
    /// diffing never emits a no-op change).
    pub fn is_update(&self) -> bool {
        self.old.is_some() && self.new.is_some()
    }
}

/// One link's transition in a relationship function: the participant key
/// combination plus the attribute tuples before and after.
#[derive(Debug, Clone)]
pub struct LinkChange {
    /// The participant keys identifying the link.
    pub keys: Vec<Value>,
    /// The link's attribute tuple before, if the link existed.
    pub old: Option<Arc<TupleF>>,
    /// The link's attribute tuple after, if the link still exists.
    pub new: Option<Arc<TupleF>>,
}

/// What happened to one database entry between two versions.
#[derive(Debug, Clone)]
pub enum EntryDelta {
    /// Both sides are relations and the change is expressible as row
    /// transitions under stable keys.
    Rows(Vec<TupleChange>),
    /// The entry was rebound wholesale (assigned a new value, dropped,
    /// created, or changed kind): consumers must re-read the entry from
    /// the after-database and re-derive — the explicit fallback marker
    /// incremental maintenance counts when it cannot stay incremental.
    Replaced,
}

/// A database-level delta: the changed entries, by name. Unchanged
/// entries are absent — an empty delta means the two databases hold
/// data-identical relation entries.
#[derive(Debug, Clone, Default)]
pub struct DbDelta {
    /// `(entry name, what happened)` for every changed entry.
    pub entries: Vec<(Name, EntryDelta)>,
}

impl DbDelta {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The delta for one entry, if it changed.
    pub fn entry(&self, name: &str) -> Option<&EntryDelta> {
        self.entries
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, d)| d)
    }

    /// Diffs two database values into a delta: relation entries present
    /// on both sides diff row-by-row ([`diff_relations`]); entries that
    /// appeared, disappeared, or are not relations on both sides become
    /// [`EntryDelta::Replaced`]. Non-relation entries that are untouched
    /// (same underlying value on both sides) are skipped.
    pub fn between(before: &DatabaseF, after: &DatabaseF) -> Result<DbDelta> {
        use crate::function::FnValue;
        let mut entries: Vec<(Name, EntryDelta)> = Vec::new();
        let mut seen: Vec<&Name> = Vec::new();
        for (name, b) in before.iter() {
            seen.push(name);
            match (b, after.iter().find(|(n, _)| *n == name).map(|(_, e)| e)) {
                (FnValue::Relation(rb), Some(FnValue::Relation(ra))) => {
                    if Arc::ptr_eq(rb, ra) {
                        continue; // structurally shared: provably unchanged
                    }
                    let changes = diff_relations(rb, ra)?;
                    if !changes.is_empty() {
                        entries.push((name.clone(), EntryDelta::Rows(changes)));
                    }
                }
                (FnValue::Relation(_), _) => entries.push((name.clone(), EntryDelta::Replaced)),
                // non-relation entries: replaced unless identical
                (vb, Some(va)) if vb.identity() == va.identity() => {}
                _ => entries.push((name.clone(), EntryDelta::Replaced)),
            }
        }
        for (name, _) in after.iter() {
            if !seen.contains(&name) {
                entries.push((name.clone(), EntryDelta::Replaced));
            }
        }
        Ok(DbDelta { entries })
    }
}

/// Diffs two relation values by stored key: a two-pointer merge over the
/// key-sorted entry lists, emitting one [`TupleChange`] per key whose
/// tuple appeared, disappeared, or changed data (compared through the
/// cached fingerprints via [`TupleF::eq_data`]).
pub fn diff_relations(old: &RelationF, new: &RelationF) -> Result<Vec<TupleChange>> {
    let a = old.tuples()?;
    let b = new.tuples()?;
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some((ka, ta)), Some((kb, tb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    out.push(TupleChange {
                        key: ka.clone(),
                        old: Some(ta.clone()),
                        new: None,
                    });
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(TupleChange {
                        key: kb.clone(),
                        old: None,
                        new: Some(tb.clone()),
                    });
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if !Arc::ptr_eq(ta, tb) && !ta.eq_data(tb) {
                        out.push(TupleChange {
                            key: ka.clone(),
                            old: Some(ta.clone()),
                            new: Some(tb.clone()),
                        });
                    }
                    i += 1;
                    j += 1;
                }
            },
            (Some((ka, ta)), None) => {
                out.push(TupleChange {
                    key: ka.clone(),
                    old: Some(ta.clone()),
                    new: None,
                });
                i += 1;
            }
            (None, Some((kb, tb))) => {
                out.push(TupleChange {
                    key: kb.clone(),
                    old: None,
                    new: Some(tb.clone()),
                });
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    Ok(out)
}

/// Diffs two relationship values by participant-key combination, the
/// [`diff_relations`] counterpart for link functions.
pub fn diff_relationships(old: &RelationshipF, new: &RelationshipF) -> Result<Vec<LinkChange>> {
    let a: Vec<(Vec<Value>, Arc<TupleF>)> = old.iter().collect();
    let b: Vec<(Vec<Value>, Arc<TupleF>)> = new.iter().collect();
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some((ka, ta)), Some((kb, tb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    out.push(LinkChange {
                        keys: ka.clone(),
                        old: Some(ta.clone()),
                        new: None,
                    });
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(LinkChange {
                        keys: kb.clone(),
                        old: None,
                        new: Some(tb.clone()),
                    });
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if !Arc::ptr_eq(ta, tb) && !ta.eq_data(tb) {
                        out.push(LinkChange {
                            keys: ka.clone(),
                            old: Some(ta.clone()),
                            new: Some(tb.clone()),
                        });
                    }
                    i += 1;
                    j += 1;
                }
            },
            (Some((ka, ta)), None) => {
                out.push(LinkChange {
                    keys: ka.clone(),
                    old: Some(ta.clone()),
                    new: None,
                });
                i += 1;
            }
            (None, Some((kb, tb))) => {
                out.push(LinkChange {
                    keys: kb.clone(),
                    old: None,
                    new: Some(tb.clone()),
                });
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FnValue;
    use crate::relationship::Participant;
    use crate::{Domain, SharedDomain, ValueType};

    fn rel(rows: &[(i64, &str, i64)]) -> RelationF {
        let mut r = RelationF::new("people", &["id"]);
        for (id, name, age) in rows {
            r = r
                .insert(
                    Value::Int(*id),
                    TupleF::builder(format!("p{id}"))
                        .attr("name", *name)
                        .attr("age", *age)
                        .build(),
                )
                .unwrap();
        }
        r
    }

    #[test]
    fn diff_relations_classifies_all_transitions() {
        let old = rel(&[(1, "a", 10), (2, "b", 20), (3, "c", 30)]);
        let new = rel(&[(2, "b", 21), (3, "c", 30), (4, "d", 40)]);
        let d = diff_relations(&old, &new).unwrap();
        assert_eq!(d.len(), 3);
        assert!(d[0].is_remove() && d[0].key == Value::Int(1));
        assert!(d[1].is_update() && d[1].key == Value::Int(2));
        assert!(d[2].is_insert() && d[2].key == Value::Int(4));
        // key 3 is untouched: no change emitted
        assert!(d.iter().all(|c| c.key != Value::Int(3)));
    }

    #[test]
    fn diff_relations_is_empty_on_data_identical_inputs() {
        let a = rel(&[(1, "a", 10)]);
        let b = rel(&[(1, "a", 10)]);
        assert!(diff_relations(&a, &b).unwrap().is_empty());
        assert!(diff_relations(&a, &a).unwrap().is_empty());
    }

    #[test]
    fn db_delta_between_marks_rebinds_as_replaced() {
        let before = DatabaseF::new("db")
            .with_relation(rel(&[(1, "a", 10)]))
            .with_entry("gone", FnValue::from(rel(&[(9, "z", 1)]).renamed("gone")));
        let after = DatabaseF::new("db")
            .with_relation(rel(&[(1, "a", 11)]))
            .with_entry("fresh", FnValue::from(rel(&[(7, "q", 2)]).renamed("fresh")));
        let d = DbDelta::between(&before, &after).unwrap();
        assert!(matches!(
            d.entry("people"),
            Some(EntryDelta::Rows(c)) if c.len() == 1 && c[0].is_update()
        ));
        assert!(matches!(d.entry("gone"), Some(EntryDelta::Replaced)));
        assert!(matches!(d.entry("fresh"), Some(EntryDelta::Replaced)));
        assert!(d.entry("nope").is_none());
        // identical databases: empty delta (structural sharing fast path)
        assert!(DbDelta::between(&after, &after).unwrap().is_empty());
    }

    #[test]
    fn diff_relationships_tracks_links() {
        let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
        let pid = SharedDomain::new("pid", Domain::Typed(ValueType::Int));
        let base = RelationshipF::new(
            "order",
            vec![
                Participant::new("customers", "cid", cid.clone()),
                Participant::new("products", "pid", pid.clone()),
            ],
        );
        let old = base
            .insert(
                &[Value::Int(1), Value::Int(10)],
                TupleF::builder("o").attr("qty", 1).build(),
            )
            .unwrap();
        let new = base
            .insert(
                &[Value::Int(1), Value::Int(10)],
                TupleF::builder("o").attr("qty", 2).build(),
            )
            .unwrap()
            .insert(
                &[Value::Int(2), Value::Int(10)],
                TupleF::builder("o").attr("qty", 5).build(),
            )
            .unwrap();
        let d = diff_relationships(&old, &new).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d[0].old.is_some() && d[0].new.is_some(), "qty update");
        assert!(d[1].old.is_none() && d[1].new.is_some(), "new link");
    }
}
