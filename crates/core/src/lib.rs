//! # fdm-core — the Functional Data Model
//!
//! An implementation of the data model proposed in *"A Functional Data
//! Model and Query Language is All You Need"* (Dittrich, EDBT 2026 vision
//! paper): **everything is a function** —
//!
//! | Abstraction | Relational model | FDM (this crate) |
//! |---|---|---|
//! | tuple | sequence of attribute/value pairs | [`TupleF`] |
//! | relation | set of tuples | [`RelationF`] |
//! | database | set of relations | [`DatabaseF`] |
//! | set of databases | — | [`DatabaseF`] nested in [`DatabaseF`] |
//! | relationship | foreign keys + junction tables | [`RelationshipF`] over [`SharedDomain`]s |
//!
//! All of them implement the single [`Function`] trait, so the same query
//! constructs (see the `fdm-fql` crate) apply at every granularity. All of
//! them are *persistent*: mutation returns a new value sharing structure
//! with the old one, making snapshots (and therefore snapshot-isolation
//! transactions) O(1).
//!
//! ## Quick tour
//!
//! ```
//! use fdm_core::{DatabaseF, Domain, RelationF, TupleF, Value, ValueType};
//!
//! // tuples are functions: t1('foo') = 12
//! let t1 = TupleF::builder("t1").attr("name", "Alice").attr("foo", 12).build();
//! assert_eq!(t1.get("foo").unwrap(), Value::Int(12));
//!
//! // relations are functions: R1(1) = t1
//! let r1 = RelationF::new("R1", &["bar"]).insert(Value::Int(1), t1).unwrap();
//!
//! // databases are functions: DB('Table1') = R1
//! let db = DatabaseF::new("DB").with_entry("Table1", fdm_core::FnValue::from(r1));
//! assert!(db.contains("Table1"));
//!
//! // computed data is indistinguishable from stored data:
//! let squares = RelationF::computed("squares", &["n"], Domain::IntRange(1, 100), |k| {
//!     let n = k.as_int("n")?;
//!     Ok(Value::Fn(fdm_core::FnValue::from(
//!         TupleF::builder("sq").attr("n", n).attr("sq", n * n).build(),
//!     )))
//! });
//! assert_eq!(squares.lookup(&Value::Int(7)).unwrap().get("sq").unwrap(), Value::Int(49));
//! ```

#![warn(missing_docs)]

pub mod constraint;
pub mod database;
pub mod domain;
pub mod error;
pub mod function;
pub mod relation;
pub mod relationship;
pub mod tuple;
pub mod types;
pub mod value;

pub use constraint::Constraint;
pub use database::DatabaseF;
pub use domain::{Domain, SharedDomain};
pub use error::{FdmError, Name, Result};
pub use function::{apply1, FnValue, Function, FunctionHandle, LambdaF};
pub use relation::RelationF;
pub use relationship::{Participant, RelationshipF};
pub use tuple::{TupleBuilder, TupleF};
pub use types::ValueType;
pub use value::Value;
