//! # fdm-core — the Functional Data Model
//!
//! An implementation of the data model proposed in *"A Functional Data
//! Model and Query Language is All You Need"* (Dittrich, EDBT 2026 vision
//! paper): **everything is a function** —
//!
//! | Abstraction | Relational model | FDM (this crate) |
//! |---|---|---|
//! | tuple | sequence of attribute/value pairs | [`TupleF`] |
//! | relation | set of tuples | [`RelationF`] |
//! | database | set of relations | [`DatabaseF`] |
//! | set of databases | — | [`DatabaseF`] nested in [`DatabaseF`] |
//! | relationship | foreign keys + junction tables | [`RelationshipF`] over [`SharedDomain`]s |
//!
//! All of them implement the single [`Function`] trait, so the same query
//! constructs (see the `fdm-fql` crate) apply at every granularity. All of
//! them are *persistent*: mutation returns a new value sharing structure
//! with the old one, making snapshots (and therefore snapshot-isolation
//! transactions) O(1).
//!
//! ## Building relations in bulk
//!
//! [`RelationF::insert`] is the right tool for OLTP-style point writes; it
//! is the wrong tool for assembling an operator's whole output, where it
//! costs O(log n) time and `Arc` allocation per tuple. Operators use
//! [`RelationBuilder`] instead: push `(key, tuple)` pairs (already-sorted
//! input is detected and skips the sort entirely — the common case, since
//! operators iterate their input in key order), then `build()` bulk-loads
//! a balanced tree in O(n) via `fdm-storage`'s `from_sorted_vec`.
//! [`RelationF::from_sorted`] is the direct constructor for callers that
//! already hold a sorted run, and [`TupleF::from_parts`] builds a tuple
//! from pre-interned attribute names without re-allocating them — the
//! hot-path combination the FQL join uses.
//!
//! ## Quick tour
//!
//! ```
//! use fdm_core::{DatabaseF, Domain, RelationF, TupleF, Value, ValueType};
//!
//! // tuples are functions: t1('foo') = 12
//! let t1 = TupleF::builder("t1").attr("name", "Alice").attr("foo", 12).build();
//! assert_eq!(t1.get("foo").unwrap(), Value::Int(12));
//!
//! // relations are functions: R1(1) = t1
//! let r1 = RelationF::new("R1", &["bar"]).insert(Value::Int(1), t1).unwrap();
//!
//! // databases are functions: DB('Table1') = R1
//! let db = DatabaseF::new("DB").with_entry("Table1", fdm_core::FnValue::from(r1));
//! assert!(db.contains("Table1"));
//!
//! // computed data is indistinguishable from stored data:
//! let squares = RelationF::computed("squares", &["n"], Domain::IntRange(1, 100), |k| {
//!     let n = k.as_int("n")?;
//!     Ok(Value::Fn(fdm_core::FnValue::from(
//!         TupleF::builder("sq").attr("n", n).attr("sq", n * n).build(),
//!     )))
//! });
//! assert_eq!(squares.lookup(&Value::Int(7)).unwrap().get("sq").unwrap(), Value::Int(49));
//! ```

#![warn(missing_docs)]

pub mod constraint;
pub mod database;
pub mod delta;
pub mod domain;
pub mod error;
pub mod function;
pub mod fxhash;
pub mod par;
pub mod relation;
pub mod relationship;
pub mod shard;
pub mod stats;
pub mod tuple;
pub mod types;
pub mod value;

pub use constraint::Constraint;
pub use database::DatabaseF;
pub use delta::{diff_relations, diff_relationships, DbDelta, EntryDelta, LinkChange, TupleChange};
pub use domain::{Domain, SharedDomain};
pub use error::{FdmError, Name, Result};
pub use fdm_storage::splitmix64;
pub use function::{apply1, FnValue, Function, FunctionHandle, LambdaF};
pub use fxhash::{FxHashMap, FxHashSet};
pub use par::{par_map_chunks, ParConfig, ParallelBuilder};
pub use relation::{RelationBuilder, RelationF};
pub use relationship::{Participant, RelationshipBuilder, RelationshipF};
pub use shard::{ShardMap, ShardedRelation};
pub use stats::{
    distinct_hint, estimate_distinct, AttrSketches, DistinctSketch, RelationStats,
    RelationshipStats,
};
pub use tuple::{DataKey, TupleBuilder, TupleF};
pub use types::ValueType;
pub use value::Value;
