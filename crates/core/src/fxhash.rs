//! A fast, non-cryptographic hasher for internal hot-path hash maps.
//!
//! The join fast path probes `Value`-keyed maps tens of thousands of times
//! per operator call; `std`'s default SipHash is DoS-resistant but costs
//! several times more per probe than needed for transient, process-local
//! indexes built from already-validated data. This is the classic
//! multiply-rotate "Fx" scheme (as used by rustc); use it via
//! [`FxHashMap`] only for short-lived internal structures, never for maps
//! holding untrusted external keys long-term.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc "Fx" hasher: one multiply and one rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn distributes_and_is_deterministic() {
        let mut m: FxHashMap<Value, i64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(Value::Int(i), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&Value::Int(i)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
        let mut s: FxHashSet<Value> = FxHashSet::default();
        s.insert(Value::str("a"));
        assert!(s.contains(&Value::str("a")));
    }

    #[test]
    fn int_float_key_equivalence_survives() {
        // Value hashes 1 and 1.0 identically; the hasher must preserve that
        let mut m: FxHashMap<Value, &str> = FxHashMap::default();
        m.insert(Value::Int(1), "one");
        assert_eq!(m.get(&Value::Float(1.0)), Some(&"one"));
    }
}
