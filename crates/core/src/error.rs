//! The error type shared across the FDM engine.

use crate::types::ValueType;
use std::fmt;

/// Name type used throughout the engine for attributes, relations, etc.
pub type Name = std::sync::Arc<str>;

/// Errors produced by FDM functions and the operators over them.
///
/// Note what is *not* here: there is no NULL value anywhere in the engine.
/// A function that is "not defined" at an input (paper §2.4: "Calls to
/// bar ∉ {1, 3} are not defined") reports [`FdmError::Undefined`] instead of
/// producing a NULL that then propagates through expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum FdmError {
    /// A function was applied to an input outside its domain.
    Undefined {
        /// Name of the function.
        function: String,
        /// Display form of the offending input.
        input: String,
    },
    /// An operation required enumerating a function's domain, but the domain
    /// is not enumerable (e.g. a continuous `FloatRange` or an unbounded
    /// `Typed` domain, paper §2.4 "continuous subspace").
    NotEnumerable {
        /// What we tried to enumerate.
        what: String,
    },
    /// A value had the wrong type for the operation.
    TypeMismatch {
        /// The type the operation required.
        expected: ValueType,
        /// The type actually found.
        found: ValueType,
        /// Where the mismatch occurred.
        context: String,
    },
    /// A tuple function has no such attribute.
    NoSuchAttribute {
        /// The attribute that was requested.
        attr: String,
    },
    /// A database function has no entry under this name.
    NoSuchRelation {
        /// The name that was requested.
        name: String,
    },
    /// A database entry exists but is not the kind of function expected
    /// (e.g. asked for a relation function, found a tuple function).
    WrongFunctionKind {
        /// The name of the entry.
        name: String,
        /// What was expected, e.g. "relation function".
        expected: String,
        /// What was found, e.g. "tuple function".
        found: String,
    },
    /// A function was called with the wrong number of arguments.
    ArityMismatch {
        /// Name of the function.
        function: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        found: usize,
    },
    /// An integrity constraint rejected a change.
    ConstraintViolation {
        /// Description of the violated constraint.
        constraint: String,
        /// Description of the offending data.
        detail: String,
    },
    /// A key already exists in a unique relation function.
    DuplicateKey {
        /// The relation function.
        relation: String,
        /// Display form of the key.
        key: String,
    },
    /// A transaction lost a first-committer-wins race.
    TransactionConflict {
        /// Human-readable description of the conflicting write.
        detail: String,
        /// The conflicting `(relation, key)` pairs in display form; a
        /// whole-entry conflict is reported as `(entry, "*")`. Empty when
        /// the conflict is not key-granular (e.g. the snapshot predates
        /// the retained commit log).
        keys: Vec<(String, String)>,
    },
    /// A commit exhausted its retry budget: every attempt hit a transient
    /// conflict (a CAS race with concurrent committers, or an injected
    /// fault) and the `CommitPolicy` allowed no further attempts.
    TransactionRetriesExhausted {
        /// Number of commit attempts made before giving up.
        attempts: usize,
        /// Human-readable description of the last transient conflict.
        detail: String,
    },
    /// A commit gave up because its `CommitPolicy` timeout elapsed before
    /// an attempt succeeded.
    TransactionTimeout {
        /// Number of commit attempts made before the deadline.
        attempts: usize,
        /// Elapsed wall-clock milliseconds when the commit gave up.
        elapsed_ms: u64,
    },
    /// A time-travel read requested a version older than the retained
    /// history (evicted by capacity or an explicit compaction).
    VersionEvicted {
        /// The requested version.
        version: u64,
        /// The oldest version still retained, if the history is non-empty.
        oldest: Option<u64>,
        /// The newest retained version — together with `oldest` this is
        /// the full retention window, so the error message can say
        /// exactly which reads would have succeeded.
        newest: Option<u64>,
    },
    /// The durability layer (write-ahead log / checkpoint) failed during
    /// a commit or store operation. Carries the display form of the
    /// underlying typed durability error.
    Durability {
        /// What went wrong, in display form.
        detail: String,
    },
    /// Error raised by the expression sub-language (parse/bind/eval).
    Expr(String),
    /// Anything else (used sparingly, e.g. by user-defined computed
    /// functions that fail).
    Other(String),
}

impl fmt::Display for FdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdmError::Undefined { function, input } => {
                write!(f, "function '{function}' is not defined at input {input}")
            }
            FdmError::NotEnumerable { what } => {
                write!(f, "cannot enumerate {what}: domain is not enumerable")
            }
            FdmError::TypeMismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            FdmError::NoSuchAttribute { attr } => {
                write!(f, "tuple function has no attribute '{attr}'")
            }
            FdmError::NoSuchRelation { name } => {
                write!(f, "database function has no entry '{name}'")
            }
            FdmError::WrongFunctionKind {
                name,
                expected,
                found,
            } => {
                write!(f, "entry '{name}' is a {found}, expected a {expected}")
            }
            FdmError::ArityMismatch {
                function,
                expected,
                found,
            } => {
                write!(
                    f,
                    "function '{function}' called with {found} argument(s), expects {expected}"
                )
            }
            FdmError::ConstraintViolation { constraint, detail } => {
                write!(f, "constraint violation ({constraint}): {detail}")
            }
            FdmError::DuplicateKey { relation, key } => {
                write!(f, "duplicate key {key} in relation function '{relation}'")
            }
            FdmError::TransactionConflict { detail, keys } => {
                write!(f, "transaction conflict: {detail}")?;
                if !keys.is_empty() {
                    let list: Vec<String> = keys.iter().map(|(r, k)| format!("{r}[{k}]")).collect();
                    write!(f, " (conflicting keys: {})", list.join(", "))?;
                }
                Ok(())
            }
            FdmError::TransactionRetriesExhausted { attempts, detail } => {
                write!(
                    f,
                    "transaction commit gave up after {attempts} attempt(s): {detail}"
                )
            }
            FdmError::TransactionTimeout {
                attempts,
                elapsed_ms,
            } => {
                write!(
                    f,
                    "transaction commit timed out after {elapsed_ms} ms ({attempts} attempt(s))"
                )
            }
            FdmError::VersionEvicted {
                version,
                oldest,
                newest,
            } => match (oldest, newest) {
                (Some(o), Some(n)) => write!(
                    f,
                    "version {version} is no longer retained (retention window: v{o}..=v{n})"
                ),
                (Some(o), None) => write!(
                    f,
                    "version {version} is no longer retained (oldest retained version: {o})"
                ),
                _ => write!(
                    f,
                    "version {version} is no longer retained (history is empty)"
                ),
            },
            FdmError::Durability { detail } => write!(f, "durability error: {detail}"),
            FdmError::Expr(msg) => write!(f, "expression error: {msg}"),
            FdmError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for FdmError {}

/// Convenience result alias used across the engine.
pub type Result<T, E = FdmError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FdmError::Undefined {
            function: "R1".into(),
            input: "7".into(),
        };
        assert_eq!(e.to_string(), "function 'R1' is not defined at input 7");
        let e = FdmError::NotEnumerable {
            what: "relation function 'R4'".into(),
        };
        assert!(e.to_string().contains("not enumerable"));
        let e = FdmError::TypeMismatch {
            expected: ValueType::Int,
            found: ValueType::Str,
            context: "filter predicate".into(),
        };
        assert!(e.to_string().contains("expected int"));
        assert!(e.to_string().contains("found str"));
    }

    #[test]
    fn transaction_errors_carry_structure() {
        let e = FdmError::TransactionConflict {
            detail: "write-write conflict with commit v3".into(),
            keys: vec![("accounts".into(), "42".into())],
        };
        assert!(e.to_string().contains("conflicting keys: accounts[42]"));
        let e = FdmError::TransactionRetriesExhausted {
            attempts: 8,
            detail: "CAS race".into(),
        };
        assert!(e.to_string().contains("after 8 attempt(s)"));
        let e = FdmError::TransactionTimeout {
            attempts: 3,
            elapsed_ms: 120,
        };
        assert!(e.to_string().contains("timed out after 120 ms"));
        let e = FdmError::VersionEvicted {
            version: 2,
            oldest: Some(5),
            newest: Some(9),
        };
        assert!(e.to_string().contains("no longer retained"));
        assert!(e.to_string().contains("retention window: v5..=v9"));
        let e = FdmError::Durability {
            detail: "torn tail in wal-0.seg at offset 8".to_string(),
        };
        assert!(e.to_string().starts_with("durability error: torn tail"));
        let e = FdmError::VersionEvicted {
            version: 2,
            oldest: Some(5),
            newest: None,
        };
        assert!(e.to_string().contains("oldest retained version: 5"));
        let e = FdmError::VersionEvicted {
            version: 2,
            oldest: None,
            newest: None,
        };
        assert!(e.to_string().contains("history is empty"));
    }
}
