//! Integrity constraints as first-class parts of the model (paper
//! contribution 4: "FDM includes features of key, integrity constraints,
//! and indexing as part of its conceptual definition already").
//!
//! Note that the *primary key* and its uniqueness are not constraints at
//! all in FDM — they are the function definition itself (Definition 1
//! guarantees at most one output per input). The constraints here are the
//! *additional* ones: secondary uniqueness and attribute-domain checks.

use crate::domain::Domain;
use crate::error::Name;
use crate::tuple::TupleF;
use crate::value::Value;
use std::fmt;

/// An additional integrity constraint on a relation function.
#[derive(Clone)]
pub enum Constraint {
    /// The named attributes must be unique across all tuples of the
    /// relation (a secondary unique constraint; the engine maintains a
    /// unique index to enforce it, which is the paper's observation that
    /// a unique constraint *is* an alternative relation function).
    Unique(Vec<Name>),
    /// The attribute's value must lie in the given domain on every tuple.
    AttrDomain {
        /// Attribute being constrained.
        attr: Name,
        /// Admissible values.
        domain: Domain,
    },
}

impl Constraint {
    /// Builds a unique constraint over the given attributes.
    pub fn unique(attrs: &[&str]) -> Constraint {
        Constraint::Unique(attrs.iter().map(|a| Name::from(*a)).collect())
    }

    /// Builds an attribute-domain constraint.
    pub fn attr_domain(attr: &str, domain: Domain) -> Constraint {
        Constraint::AttrDomain {
            attr: Name::from(attr),
            domain,
        }
    }

    /// For a `Unique` constraint: extracts the composite value of its
    /// attributes from `tuple` (used as the unique-index key).
    pub(crate) fn unique_key(&self, tuple: &TupleF) -> Option<Value> {
        match self {
            Constraint::Unique(attrs) => {
                let mut vals = Vec::with_capacity(attrs.len());
                for a in attrs {
                    vals.push(tuple.try_get(a)?);
                }
                Some(if vals.len() == 1 {
                    vals.pop().expect("one element")
                } else {
                    Value::list(vals)
                })
            }
            Constraint::AttrDomain { .. } => None,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Unique(attrs) => {
                write!(f, "UNIQUE(")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Constraint::AttrDomain { attr, domain } => {
                write!(f, "{attr} ∈ {domain}")
            }
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValueType;

    #[test]
    fn unique_key_extraction() {
        let c = Constraint::unique(&["email"]);
        let t = TupleF::builder("t").attr("email", "a@b.c").build();
        assert_eq!(c.unique_key(&t), Some(Value::str("a@b.c")));
        let missing = TupleF::builder("t").attr("name", "x").build();
        assert_eq!(c.unique_key(&missing), None);
    }

    #[test]
    fn composite_unique_key_is_a_list() {
        let c = Constraint::unique(&["a", "b"]);
        let t = TupleF::builder("t").attr("a", 1).attr("b", 2).build();
        assert_eq!(
            c.unique_key(&t),
            Some(Value::list([Value::Int(1), Value::Int(2)]))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constraint::unique(&["x", "y"]).to_string(), "UNIQUE(x, y)");
        let c = Constraint::attr_domain("age", Domain::Typed(ValueType::Int));
        assert_eq!(c.to_string(), "age ∈ int");
    }
}
