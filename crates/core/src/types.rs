//! Value type tags and lightweight type checking.

use std::fmt;

/// The type of a [`crate::Value`].
///
/// FDM leans on the host language's type system (paper §4.2); this enum is
/// the runtime reflection of it, used for domain constraints, expression
/// type checking, and error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// The unit value (used e.g. as codomain of pure relationship
    /// predicates realized as stored key sets).
    Unit,
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit IEEE-754 floats (compared by total order).
    Float,
    /// Immutable UTF-8 strings.
    Str,
    /// Finite lists of values (composite keys, multi-argument inputs).
    List,
    /// A function value: tuples, relations, databases, relationships, or
    /// lambdas. This is what makes the model *higher-order*.
    Function,
}

impl ValueType {
    /// Short lowercase name as used in error messages and the textual
    /// expression language.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Unit => "unit",
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::List => "list",
            ValueType::Function => "function",
        }
    }

    /// `true` if values of this type admit arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::Int | ValueType::Float)
    }

    /// `true` if two types can be compared with `<`/`>` ordering operators:
    /// identical types, or the numeric pair int/float.
    pub fn comparable_with(self, other: ValueType) -> bool {
        self == other || (self.is_numeric() && other.is_numeric())
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_predicates() {
        assert_eq!(ValueType::Int.name(), "int");
        assert_eq!(ValueType::Function.to_string(), "function");
        assert!(ValueType::Int.is_numeric());
        assert!(ValueType::Float.is_numeric());
        assert!(!ValueType::Str.is_numeric());
        assert!(ValueType::Int.comparable_with(ValueType::Float));
        assert!(ValueType::Str.comparable_with(ValueType::Str));
        assert!(!ValueType::Str.comparable_with(ValueType::Int));
    }
}
