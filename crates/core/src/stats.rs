//! Cardinality and fan-out statistics for cost-based operator planning.
//!
//! FQL's schema-driven `join` must decide **which relationship function to
//! bind next**. Picking by raw entry count (the PR 2 heuristic) ignores
//! participant fan-out: a relationship with many entries but one entry per
//! bound key (fan-out 1) extends the working rows without growing them,
//! while a small relationship whose entries pile onto few keys multiplies
//! the row set. This module provides the statistics that distinguish the
//! two, cheaply enough to consult on every operator call.
//!
//! # What is tracked
//!
//! * **Per relation** — the stored cardinality ([`RelationStats::rows`])
//!   and an O(1) distinct-count estimate for a named attribute
//!   ([`estimate_distinct`]): exact for key attributes and single-attribute
//!   `Unique` constraints (both imply one distinct value per row), a
//!   documented magic fraction otherwise.
//! * **Per relationship** — the entry count, and for every participant
//!   position the number of **distinct key values** appearing there
//!   ([`RelationshipStats::distinct`]). Average fan-out falls out as
//!   `entries / distinct` ([`RelationshipStats::avg_fanout`]).
//!
//! # The cost formula
//!
//! [`RelationshipStats::estimate_join_rows`] estimates the working-row
//! count after binding a relationship, given `bound_rows` current rows and
//! the participant positions already bound:
//!
//! ```text
//! no position bound:   est = bound_rows × entries
//! positions B bound:   est = bound_rows × entries / min(entries, max_{p∈B} distinct(p))
//! ```
//!
//! i.e. each row probes the relationship through its bound keys and
//! matches `entries / distinct` entries on average (uniformity assumption;
//! with several bound positions the distinct count of the *combination* is
//! at least the per-position maximum, so the maximum gives a conservative
//! upper estimate of the fan-out). The estimate is a planning heuristic
//! only — plan choice never changes which rows a join produces, just the
//! order work happens in (pinned by `tests/tests/join_planning.rs`).
//!
//! # Staleness and update rules
//!
//! Relationship statistics live **inside** [`RelationshipF`] and follow
//! the same freshness-by-construction contract as the tuple fingerprint
//! cache (`fdm_core::tuple`): every construction and mutation path builds
//! the matching statistics in the same expression that builds the entry
//! map —
//!
//! * `RelationshipF::new` starts with [`RelationshipStats::empty`];
//! * `insert`/`insert_link` advance them with [`RelationshipStats::with_inserted`];
//! * `remove` reverses with [`RelationshipStats::with_removed`];
//! * the bulk paths (`RelationshipF::from_sorted`, `RelationshipBuilder`)
//!   count everything in one pass via [`RelationshipStats::from_entries`].
//!
//! There is no code path that changes the entry map while keeping the old
//! statistics, so stale stats are impossible by design; the per-position
//! count maps are persistent (`PMap`), so snapshots share them like they
//! share the entries. [`RelationStats`] is computed on demand from the
//! relation's O(1) length — nothing to keep fresh.
//!
//! [`RelationshipF`]: crate::RelationshipF

use crate::constraint::Constraint;
use crate::relation::RelationF;
use crate::value::Value;
use fdm_storage::PMap;
use std::sync::Arc;

/// Cardinality statistics of a relation function, read on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationStats {
    /// Number of stored tuples (computed parts are not counted — they are
    /// not enumerable in general, so no planner should rely on them).
    pub rows: usize,
}

impl RelationStats {
    /// Reads the statistics of `rel` (O(1): the persistent map tracks its
    /// length).
    pub fn of(rel: &RelationF) -> RelationStats {
        RelationStats { rows: rel.len() }
    }
}

/// The distinct-value fraction assumed for attributes with no exact
/// source (not a key, not uniquely constrained): `distinct ≈ rows / 10`.
/// A deliberate, documented magic number in the System-R tradition —
/// wrong in general, but it only biases *cost estimates*, never results.
pub const DEFAULT_DISTINCT_FRACTION: usize = 10;

/// The fraction of rows a predicate of unknown selectivity is assumed to
/// keep (the System-R 1/3). Used by `fql`'s plan-cost estimator; like
/// every number in this module it steers cost, never results.
pub const DEFAULT_FILTER_SELECTIVITY: f64 = 1.0 / 3.0;

/// O(1) estimate of the number of distinct values attribute `attr` takes
/// across the stored tuples of `rel`:
///
/// * a key attribute or a single-attribute `Unique` constraint → exactly
///   `rel.len()` (one distinct value per row);
/// * otherwise `max(1, rows / DEFAULT_DISTINCT_FRACTION)`.
///
/// Never scans tuples — this is planner input, not an answer.
pub fn estimate_distinct(rel: &RelationF, attr: &str) -> usize {
    let rows = rel.len();
    if rows == 0 {
        return 0;
    }
    let exact = rel.key_attrs().iter().any(|k| k.as_ref() == attr)
        || rel.constraints().iter().any(
            |c| matches!(c, Constraint::Unique(attrs) if attrs.len() == 1 && attrs[0].as_ref() == attr),
        );
    if exact {
        rows
    } else {
        (rows / DEFAULT_DISTINCT_FRACTION).max(1)
    }
}

/// Per-relationship cardinality and fan-out statistics, maintained
/// incrementally by every [`RelationshipF`](crate::RelationshipF)
/// construction and mutation path (see the module docs for the freshness
/// contract).
///
/// Internally one persistent count map per participant position: key value
/// → number of entries carrying it. Distinct counts are the map lengths;
/// the maps are needed (rather than bare counters) so `remove` can tell a
/// "last entry of this key" decrement from an ordinary one.
#[derive(Clone, Debug)]
pub struct RelationshipStats {
    entries: usize,
    counts: Arc<[PMap<Value, usize>]>,
}

impl RelationshipStats {
    /// Statistics of an empty k-ary relationship.
    pub fn empty(k: usize) -> RelationshipStats {
        RelationshipStats {
            entries: 0,
            counts: (0..k).map(|_| PMap::new()).collect::<Vec<_>>().into(),
        }
    }

    /// Bulk-counts statistics from entry argument lists in one pass
    /// (the `from_sorted` companion): per position, keys are collected,
    /// sorted, and run-length counted into an O(n) bulk map build.
    pub fn from_entries<'a>(k: usize, entries: impl Iterator<Item = &'a [Value]> + Clone) -> Self {
        let total = entries.clone().count();
        let mut counts = Vec::with_capacity(k);
        for pos in 0..k {
            let mut keys: Vec<Value> = entries
                .clone()
                .filter_map(|args| args.get(pos).cloned())
                .collect();
            keys.sort();
            let mut runs: Vec<(Value, usize)> = Vec::new();
            for key in keys {
                match runs.last_mut() {
                    Some((last, n)) if *last == key => *n += 1,
                    _ => runs.push((key, 1)),
                }
            }
            counts.push(PMap::from_sorted_vec(runs));
        }
        RelationshipStats {
            entries: total,
            counts: counts.into(),
        }
    }

    /// Number of stored relationship entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Number of distinct key values at participant position `pos`.
    pub fn distinct(&self, pos: usize) -> usize {
        self.counts.get(pos).map_or(0, PMap::len)
    }

    /// Average entries per distinct key at position `pos` (0.0 when
    /// empty) — how many entries a bound key matches on average.
    pub fn avg_fanout(&self, pos: usize) -> f64 {
        let d = self.distinct(pos);
        if d == 0 {
            0.0
        } else {
            self.entries as f64 / d as f64
        }
    }

    /// The statistics after inserting an entry with these argument values
    /// (persistent: the receiver is unchanged).
    pub fn with_inserted(&self, args: &[Value]) -> RelationshipStats {
        let counts: Vec<PMap<Value, usize>> = self
            .counts
            .iter()
            .zip(args)
            .map(|(m, v)| {
                let n = m.get(v).copied().unwrap_or(0);
                m.insert(v.clone(), n + 1).0
            })
            .collect();
        RelationshipStats {
            entries: self.entries + 1,
            counts: counts.into(),
        }
    }

    /// The statistics after removing an entry with these argument values
    /// (persistent: the receiver is unchanged).
    pub fn with_removed(&self, args: &[Value]) -> RelationshipStats {
        let counts: Vec<PMap<Value, usize>> = self
            .counts
            .iter()
            .zip(args)
            .map(|(m, v)| match m.get(v).copied() {
                Some(n) if n > 1 => m.insert(v.clone(), n - 1).0,
                Some(_) => m.remove(v).0,
                None => m.clone(),
            })
            .collect();
        RelationshipStats {
            entries: self.entries.saturating_sub(1),
            counts: counts.into(),
        }
    }

    /// Estimated working-row count after binding this relationship from
    /// `bound_rows` current rows with the given participant positions
    /// already bound — the module-level cost formula. With nothing bound
    /// the relationship is a generator: every row pairs with every entry.
    pub fn estimate_join_rows(&self, bound_rows: usize, bound_positions: &[usize]) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        let rows = bound_rows as f64;
        let entries = self.entries as f64;
        let max_distinct = bound_positions
            .iter()
            .map(|&p| self.distinct(p))
            .max()
            .unwrap_or(0);
        if max_distinct == 0 {
            rows * entries
        } else {
            rows * entries / (max_distinct.min(self.entries) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::tuple::TupleF;

    fn args(a: i64, b: i64) -> Vec<Value> {
        vec![Value::Int(a), Value::Int(b)]
    }

    #[test]
    fn incremental_counts_match_bulk() {
        let entries = [args(1, 7), args(1, 8), args(2, 7), args(3, 9)];
        let mut inc = RelationshipStats::empty(2);
        for e in &entries {
            inc = inc.with_inserted(e);
        }
        let bulk = RelationshipStats::from_entries(2, entries.iter().map(Vec::as_slice));
        assert_eq!(inc.entries(), 4);
        assert_eq!(bulk.entries(), 4);
        for pos in 0..2 {
            assert_eq!(inc.distinct(pos), bulk.distinct(pos), "position {pos}");
        }
        assert_eq!(inc.distinct(0), 3, "cids 1, 2, 3");
        assert_eq!(inc.distinct(1), 3, "pids 7, 8, 9");
    }

    #[test]
    fn remove_reverses_insert() {
        let s = RelationshipStats::empty(2)
            .with_inserted(&args(1, 7))
            .with_inserted(&args(1, 8));
        assert_eq!(s.distinct(0), 1);
        let s2 = s.with_removed(&args(1, 8));
        assert_eq!(s2.entries(), 1);
        assert_eq!(s2.distinct(0), 1, "key 1 still present once");
        assert_eq!(s2.distinct(1), 1, "pid 8 gone");
        let s3 = s2.with_removed(&args(1, 7));
        assert_eq!(s3.entries(), 0);
        assert_eq!(s3.distinct(0), 0);
    }

    #[test]
    fn fanout_and_estimates() {
        // 6 entries over 3 distinct cids (fan-out 2), 6 distinct pids
        // (fan-out 1)
        let mut s = RelationshipStats::empty(2);
        for (c, p) in [(1, 1), (1, 2), (2, 3), (2, 4), (3, 5), (3, 6)] {
            s = s.with_inserted(&args(c, p));
        }
        assert_eq!(s.avg_fanout(0), 2.0);
        assert_eq!(s.avg_fanout(1), 1.0);
        // 100 rows bound on position 0: each matches ~2 entries
        assert_eq!(s.estimate_join_rows(100, &[0]), 200.0);
        // bound on position 1: fan-out 1
        assert_eq!(s.estimate_join_rows(100, &[1]), 100.0);
        // both bound: the larger distinct count wins (combination is at
        // least as selective)
        assert_eq!(s.estimate_join_rows(100, &[0, 1]), 100.0);
        // nothing bound: generator
        assert_eq!(s.estimate_join_rows(10, &[]), 60.0);
        // empty stats estimate zero
        assert_eq!(RelationshipStats::empty(2).estimate_join_rows(5, &[0]), 0.0);
    }

    #[test]
    fn relation_stats_and_distinct_estimates() {
        let rel = RelationF::new("r", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("t").attr("name", "a").attr("x", 1).build(),
            )
            .unwrap()
            .insert(
                Value::Int(2),
                TupleF::builder("t").attr("name", "b").attr("x", 1).build(),
            )
            .unwrap();
        assert_eq!(RelationStats::of(&rel).rows, 2);
        // key attribute: exact
        assert_eq!(estimate_distinct(&rel, "id"), 2);
        // unconstrained attribute: magic fraction, floored at 1
        assert_eq!(estimate_distinct(&rel, "x"), 1);
        // unique constraint: exact
        let uniq = rel.with_constraint(Constraint::unique(&["name"])).unwrap();
        assert_eq!(estimate_distinct(&uniq, "name"), 2);
        // empty relation
        assert_eq!(estimate_distinct(&RelationF::new("e", &["id"]), "id"), 0);
    }
}
