//! Cardinality and fan-out statistics for cost-based operator planning.
//!
//! FQL's schema-driven `join` must decide **which relationship function to
//! bind next**. Picking by raw entry count (the PR 2 heuristic) ignores
//! participant fan-out: a relationship with many entries but one entry per
//! bound key (fan-out 1) extends the working rows without growing them,
//! while a small relationship whose entries pile onto few keys multiplies
//! the row set. This module provides the statistics that distinguish the
//! two, cheaply enough to consult on every operator call.
//!
//! # What is tracked
//!
//! * **Per relation** — the stored cardinality ([`RelationStats::rows`]),
//!   and a distinct-count estimate for a named attribute
//!   ([`estimate_distinct`]): exact for key attributes and single-attribute
//!   `Unique` constraints (both imply one distinct value per row), a
//!   [`DistinctSketch`] estimate for every other attribute of an
//!   enumerable stored body (see [`AttrSketches`]), and a documented magic
//!   fraction only on the one remaining path — bodies with no enumerable
//!   stored part, or attributes absent from every stored tuple.
//! * **Per relationship** — the entry count, for every participant
//!   position the exact number of **distinct key values** appearing there
//!   ([`RelationshipStats::distinct`]), and a constant-memory
//!   [`DistinctSketch`] per position ([`RelationshipStats::sketch`]).
//!   Average fan-out falls out as `entries / distinct`
//!   ([`RelationshipStats::avg_fanout`]).
//!
//! # The cost formula
//!
//! [`RelationshipStats::estimate_join_rows`] estimates the working-row
//! count after binding a relationship, given `bound_rows` current rows and
//! the participant positions already bound:
//!
//! ```text
//! no position bound:   est = bound_rows × entries
//! positions B bound:   est = bound_rows × entries / min(entries, max_{p∈B} distinct(p))
//! ```
//!
//! i.e. each row probes the relationship through its bound keys and
//! matches `entries / distinct` entries on average (uniformity assumption;
//! with several bound positions the distinct count of the *combination* is
//! at least the per-position maximum, so the maximum gives a conservative
//! upper estimate of the fan-out). The estimate is a planning heuristic
//! only — plan choice never changes which rows a join produces, just the
//! order work happens in (pinned by `tests/tests/join_planning.rs`).
//!
//! # The distinct-count sketches
//!
//! [`DistinctSketch`] is a HyperLogLog-style cardinality estimator over a
//! fixed array of 2^10 = 1024 registers (one KiB, no heap allocation on
//! the observe path). Its standard error is `1.04 / √1024 ≈ 3.25%`; the
//! bound this crate *documents and tests against* is the ~3σ envelope
//! [`DistinctSketch::RELATIVE_ERROR_BOUND`] (10%). Observations are
//! **insert-monotone**: a sketch never forgets a value, so after a
//! removal it over-estimates — which is why every consumer clamps the
//! estimate to the current row/entry count, keeping it a sound upper
//! bound at all times.
//!
//! # Staleness and update rules
//!
//! Relationship statistics live **inside** [`RelationshipF`] and follow
//! the same freshness-by-construction contract as the tuple fingerprint
//! cache (`fdm_core::tuple`): every construction and mutation path builds
//! the matching statistics in the same expression that builds the entry
//! map —
//!
//! * `RelationshipF::new` starts with [`RelationshipStats::empty`];
//! * `insert`/`insert_link` advance them with [`RelationshipStats::with_inserted`];
//! * `remove` reverses with [`RelationshipStats::with_removed`] (the exact
//!   count maps reverse; the sketches, being insert-monotone, are carried
//!   over unchanged and stay a documented upper bound);
//! * the bulk paths (`RelationshipF::from_sorted`, `RelationshipBuilder`)
//!   count everything in one pass via [`RelationshipStats::from_entries`] —
//!   producing **register-identical** sketches to the equivalent insert
//!   chain (HyperLogLog merges are order-insensitive maxima).
//!
//! There is no code path that changes the entry map while keeping the old
//! statistics, so stale stats are impossible by design; the per-position
//! count maps are persistent (`PMap`), so snapshots share them like they
//! share the entries. [`RelationStats`] is computed on demand from the
//! relation's O(1) length — nothing to keep fresh.
//!
//! Relation-side attribute sketches ([`AttrSketches`]) use the *other*
//! freshness-by-construction discipline, the one the tuple fingerprint
//! cache pioneered: they live in a `OnceLock` inside `RelationF` that
//! every construction and mutation path starts **fresh and empty**, and
//! are computed lazily from the stored tuples' cached fingerprints on the
//! first [`estimate_distinct`] call. Relations cannot maintain sketches
//! incrementally the way relationships do — deletes and upserts are
//! first-class relation mutations, and HyperLogLog cannot subtract — so
//! the lazy rebuild is the only design whose estimates stay *exact-fresh*
//! under deletion. The O(n) scan is paid once per relation value and
//! amortized across every later planner call (and it warms the per-tuple
//! fingerprint caches the set operations consume, so the scan is not even
//! wasted work).
//!
//! [`RelationshipF`]: crate::RelationshipF

use crate::constraint::Constraint;
use crate::error::Name;
use crate::fxhash::FxHashMap;
use crate::relation::RelationF;
use crate::tuple::TupleF;
use crate::value::Value;
use fdm_storage::PMap;
use std::sync::Arc;

/// Cardinality statistics of a relation function, read on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationStats {
    /// Number of stored tuples (computed parts are not counted — they are
    /// not enumerable in general, so no planner should rely on them).
    pub rows: usize,
}

impl RelationStats {
    /// Reads the statistics of `rel` (O(1): the persistent map tracks its
    /// length).
    pub fn of(rel: &RelationF) -> RelationStats {
        RelationStats { rows: rel.len() }
    }
}

/// Number of HyperLogLog registers in a [`DistinctSketch`]: fixed at
/// 2^10, i.e. one byte-register per bucket, 1 KiB per sketch.
pub const SKETCH_REGISTERS: usize = 1 << SKETCH_INDEX_BITS;

/// Number of hash bits consumed as the register index (the `b` in
/// HyperLogLog's `m = 2^b`).
const SKETCH_INDEX_BITS: u32 = 10;

/// A HyperLogLog-style distinct-count estimator over a fixed
/// [`SKETCH_REGISTERS`]-byte register array.
///
/// Observing a value hashes it (64-bit), uses the top 10 bits as the
/// register index and the position of
/// the first set bit of the rest as the register candidate — registers
/// keep the **maximum** ever seen, which makes sketches insert-monotone
/// and merge/order-insensitive: any sequence (or partition) of the same
/// value multiset produces register-identical sketches. No heap
/// allocation happens on the observe path.
///
/// # Accuracy
///
/// The estimator's standard error is `1.04 / √1024 ≈ 3.25%`; callers
/// should budget for [`Self::RELATIVE_ERROR_BOUND`] (10%, ~3σ), the bound
/// the test suite pins across 1k/20k loads. Small cardinalities fall back
/// to linear counting, which is near-exact.
///
/// # Examples
///
/// ```
/// use fdm_core::{DistinctSketch, Value};
///
/// let mut s = DistinctSketch::new();
/// for i in 0..1000 {
///     s.observe(&Value::Int(i % 250)); // 250 distinct values, seen 4× each
/// }
/// let est = s.estimate() as f64;
/// assert!((est - 250.0).abs() / 250.0 < DistinctSketch::RELATIVE_ERROR_BOUND);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    regs: [u8; SKETCH_REGISTERS],
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch::new()
    }
}

impl std::fmt::Debug for DistinctSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DistinctSketch(~{} distinct)", self.estimate())
    }
}

impl DistinctSketch {
    /// The documented relative error bound (`|estimate − exact| / exact`)
    /// the estimator is tested to stay within across the 1k and 20k
    /// loads: 10%, roughly 3σ of the theoretical 3.25% standard error.
    pub const RELATIVE_ERROR_BOUND: f64 = 0.10;

    /// An empty sketch (estimates 0).
    pub fn new() -> DistinctSketch {
        DistinctSketch {
            regs: [0; SKETCH_REGISTERS],
        }
    }

    /// `true` if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.regs.iter().all(|&r| r == 0)
    }

    /// Hashes `v` ([`Value::fx_hash`], which honors its cross-type numeric
    /// `Eq`) and feeds it to the registers. Equal values always land on
    /// the same register with the same candidate, so duplicates never move
    /// the estimate.
    #[inline]
    pub fn observe(&mut self, v: &Value) {
        self.observe_hash(v.fx_hash());
    }

    /// Feeds an already-computed 64-bit value hash to the registers.
    #[inline]
    pub fn observe_hash(&mut self, h: u64) {
        let (idx, rank) = Self::register_for(h);
        if self.regs[idx] < rank {
            self.regs[idx] = rank;
        }
    }

    /// The register update `observe` would perform, as a persistent
    /// operation: `None` when the observation changes nothing (the
    /// steady-state common case — the caller keeps sharing the old
    /// sketch), otherwise the updated copy (one 1 KiB stack copy, no heap
    /// allocation).
    pub fn with_observed(&self, v: &Value) -> Option<DistinctSketch> {
        let (idx, rank) = Self::register_for(v.fx_hash());
        if self.regs[idx] >= rank {
            return None;
        }
        let mut next = self.clone();
        next.regs[idx] = rank;
        Some(next)
    }

    /// Folds `other` into `self` (register-wise maximum) — the union of
    /// the observed multisets. Merging is associative, commutative, and
    /// idempotent, which is what makes bulk and incremental maintenance
    /// register-identical.
    pub fn merge_from(&mut self, other: &DistinctSketch) {
        for (a, b) in self.regs.iter_mut().zip(other.regs.iter()) {
            if *a < *b {
                *a = *b;
            }
        }
    }

    /// The estimated number of distinct observed values.
    ///
    /// Standard HyperLogLog with the small-range linear-counting
    /// correction; accurate to [`Self::RELATIVE_ERROR_BOUND`] (see the
    /// type docs). Estimates steer cost decisions only — they never
    /// change what any operator produces.
    pub fn estimate(&self) -> usize {
        let m = SKETCH_REGISTERS as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.regs {
            // 2^-r in floating point — ranks go up to 55, past any
            // integer shift width
            sum += (-f64::from(r)).exp2();
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        let corrected = if raw <= 2.5 * m && zeros > 0 {
            // linear counting: near-exact at small cardinalities
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        corrected.round() as usize
    }

    /// Splits a hash into (register index, rank candidate).
    #[inline]
    fn register_for(h: u64) -> (usize, u8) {
        // splitmix64 (the shared `fdm_storage` finalizer): the raw FxHash
        // of sequential keys is too regular for HLL's "first set bit"
        // statistic; one multiply-xor avalanche restores bit uniformity
        // at negligible cost.
        let z = fdm_storage::splitmix64(h);
        let idx = (z >> (64 - SKETCH_INDEX_BITS)) as usize;
        let rest = z << SKETCH_INDEX_BITS;
        let rank = (rest.leading_zeros() + 1).min(64 - SKETCH_INDEX_BITS + 1) as u8;
        (idx, rank)
    }
}

/// Per-attribute [`DistinctSketch`]es over a relation's stored tuples —
/// the statistics behind [`estimate_distinct`] for non-key attributes.
///
/// Built in one pass over the stored tuples from their cached canonical
/// fingerprints (`fdm_core::tuple::DataKey`), so every attribute a tuple
/// answers for — stored *or* computed — is sketched under its canonical
/// name. Tuples whose fingerprint fails to compute (a failing computed
/// attribute) are skipped; their attributes simply do not contribute.
///
/// Instances live in a `OnceLock` inside `RelationF` under the
/// freshness-by-construction contract (see the module docs): every
/// relation mutation starts a fresh empty cell, so a filled `AttrSketches`
/// always describes exactly the tuples of the relation value that carries
/// it.
///
/// # Examples
///
/// ```
/// use fdm_core::{DistinctSketch, RelationBuilder, TupleF, Value};
///
/// let mut b = RelationBuilder::new("people", &["id"]);
/// for i in 0..100i64 {
///     b.push(
///         Value::Int(i),
///         TupleF::builder("p").attr("city", format!("c{}", i % 7)).build(),
///     );
/// }
/// let rel = b.build().unwrap();
/// let sketch = rel.attr_sketches().get("city").unwrap();
/// let est = sketch.estimate() as f64;
/// assert!((est - 7.0).abs() / 7.0 < DistinctSketch::RELATIVE_ERROR_BOUND);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrSketches {
    /// Sorted by attribute name; a relation has a handful of attributes,
    /// so binary search beats hashing and keeps iteration deterministic.
    by_attr: Vec<(Name, DistinctSketch)>,
}

impl AttrSketches {
    /// Sketches every attribute appearing in the given stored tuples.
    pub fn from_stored(tuples: impl Iterator<Item = (Value, Arc<TupleF>)>) -> AttrSketches {
        let mut map: FxHashMap<Name, DistinctSketch> = FxHashMap::default();
        for (_, tuple) in tuples {
            let Ok(fp) = tuple.fingerprint() else {
                continue; // failing computed attribute: tuple contributes nothing
            };
            let Value::List(pairs) = fp.value() else {
                continue;
            };
            for pair in pairs.chunks(2) {
                if let [Value::Str(name), v] = pair {
                    map.entry(name.clone()).or_default().observe(v);
                }
            }
        }
        let mut by_attr: Vec<(Name, DistinctSketch)> = map.into_iter().collect();
        by_attr.sort_by(|a, b| a.0.cmp(&b.0));
        AttrSketches { by_attr }
    }

    /// The sketch for `attr`, if any stored tuple carries that attribute.
    pub fn get(&self, attr: &str) -> Option<&DistinctSketch> {
        self.by_attr
            .binary_search_by(|(n, _)| n.as_ref().cmp(attr))
            .ok()
            .map(|i| &self.by_attr[i].1)
    }

    /// Number of sketched attributes.
    pub fn attr_count(&self) -> usize {
        self.by_attr.len()
    }

    /// `true` if no attribute was sketched (empty relation, or no stored
    /// part).
    pub fn is_empty(&self) -> bool {
        self.by_attr.is_empty()
    }
}

/// The distinct-value fraction assumed for attributes with no exact
/// source **and no sketch**: `distinct ≈ rows / 10`. A deliberate,
/// documented magic number in the System-R tradition — wrong in general,
/// but it only biases *cost estimates*, never results.
///
/// Since the [`DistinctSketch`] layer landed, exactly one path still uses
/// it (see [`estimate_distinct`]): relations whose stored part is empty
/// or non-enumerable (fully computed bodies), or an attribute no stored
/// tuple answers for. Every enumerable stored attribute gets a real
/// sketch estimate instead.
pub const DEFAULT_DISTINCT_FRACTION: usize = 10;

/// The fraction of rows a predicate of unknown selectivity is assumed to
/// keep (the System-R 1/3). Used by `fql`'s plan-cost estimator; like
/// every number in this module it steers cost, never results.
pub const DEFAULT_FILTER_SELECTIVITY: f64 = 1.0 / 3.0;

/// `true` when the schema already answers the distinct count exactly:
/// key attributes and single-attribute `Unique` constraints both imply
/// one distinct value per row.
fn schema_exact(rel: &RelationF, attr: &str) -> bool {
    rel.key_attrs().iter().any(|k| k.as_ref() == attr)
        || rel.constraints().iter().any(
            |c| matches!(c, Constraint::Unique(attrs) if attrs.len() == 1 && attrs[0].as_ref() == attr),
        )
}

/// Estimate of the number of distinct values attribute `attr` takes
/// across the stored tuples of `rel`:
///
/// * a key attribute or a single-attribute `Unique` constraint → exactly
///   `rel.len()` (one distinct value per row), O(1);
/// * any attribute some stored tuple answers for → the relation's
///   [`AttrSketches`] estimate, clamped to `[1, rows]` (a sketch is
///   insert-monotone and may overshoot the live row count; it can never
///   legitimately exceed it). The sketches are computed **once per
///   relation value** on first use — an O(n) scan amortized across every
///   later call on the same value (see the module docs) — so this
///   function is the *planner's* entry point, not a per-probe hint: for
///   per-probe capacity hints use [`distinct_hint`], which never triggers
///   the scan;
/// * otherwise (no enumerable stored part, or the attribute appears in no
///   stored tuple) → `max(1, rows / `[`DEFAULT_DISTINCT_FRACTION`]`)`,
///   the one surviving magic-fraction path.
///
/// # Examples
///
/// ```
/// use fdm_core::{estimate_distinct, RelationBuilder, TupleF, Value};
///
/// let mut b = RelationBuilder::new("orders", &["oid"]);
/// for i in 0..200i64 {
///     b.push(
///         Value::Int(i),
///         TupleF::builder("o").attr("cid", i % 40).build(),
///     );
/// }
/// let rel = b.build().unwrap();
/// assert_eq!(estimate_distinct(&rel, "oid"), 200, "key attr: exact");
/// let est = estimate_distinct(&rel, "cid") as f64; // non-key: sketched
/// assert!((est - 40.0).abs() / 40.0 < fdm_core::DistinctSketch::RELATIVE_ERROR_BOUND);
/// ```
pub fn estimate_distinct(rel: &RelationF, attr: &str) -> usize {
    let rows = rel.len();
    if rows == 0 {
        return 0;
    }
    if schema_exact(rel, attr) {
        return rows;
    }
    if let Some(sketch) = rel.attr_sketches().get(attr) {
        return sketch.estimate().clamp(1, rows);
    }
    (rows / DEFAULT_DISTINCT_FRACTION).max(1)
}

/// Strictly-O(1) variant of [`estimate_distinct`] for hot paths that only
/// want a capacity *hint*: consults the schema and any **already
/// computed** sketches, but never triggers the O(n) sketch build —
/// falling back to the magic fraction instead. `fql`'s `join_on` uses
/// this to pre-size its probe tables without paying an analyze scan per
/// join.
pub fn distinct_hint(rel: &RelationF, attr: &str) -> usize {
    let rows = rel.len();
    if rows == 0 {
        return 0;
    }
    if schema_exact(rel, attr) {
        return rows;
    }
    if let Some(sketch) = rel.attr_sketches_cached().and_then(|s| s.get(attr)) {
        return sketch.estimate().clamp(1, rows);
    }
    (rows / DEFAULT_DISTINCT_FRACTION).max(1)
}

/// Per-relationship cardinality and fan-out statistics, maintained
/// incrementally by every [`RelationshipF`](crate::RelationshipF)
/// construction and mutation path (see the module docs for the freshness
/// contract).
///
/// Internally one persistent count map per participant position: key value
/// → number of entries carrying it. Distinct counts are the map lengths;
/// the maps are needed (rather than bare counters) so `remove` can tell a
/// "last entry of this key" decrement from an ordinary one. Each position
/// additionally carries a [`DistinctSketch`] — redundant next to the
/// exact maps, but O(1) memory and mergeable, so it is the summary a
/// consumer can export, combine across relationships, or cross-check the
/// maps against (the accuracy tests do exactly that).
#[derive(Clone, Debug)]
pub struct RelationshipStats {
    entries: usize,
    counts: Arc<[PMap<Value, usize>]>,
    /// One sketch per position, `Arc`-shared so the steady-state insert
    /// (register unchanged) is a pointer copy, not a 1 KiB memcpy.
    sketches: Arc<[Arc<DistinctSketch>]>,
}

impl RelationshipStats {
    /// Statistics of an empty k-ary relationship.
    pub fn empty(k: usize) -> RelationshipStats {
        let empty_sketch = Arc::new(DistinctSketch::new());
        RelationshipStats {
            entries: 0,
            counts: (0..k).map(|_| PMap::new()).collect::<Vec<_>>().into(),
            sketches: (0..k)
                .map(|_| empty_sketch.clone())
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Bulk-counts statistics from entry argument lists in one pass
    /// (the `from_sorted` companion): per position, keys are collected,
    /// sorted, and run-length counted into an O(n) bulk map build; the
    /// sketches observe every key in the same pass and come out
    /// register-identical to the equivalent insert chain.
    pub fn from_entries<'a>(k: usize, entries: impl Iterator<Item = &'a [Value]> + Clone) -> Self {
        let total = entries.clone().count();
        let mut counts = Vec::with_capacity(k);
        let mut sketches = Vec::with_capacity(k);
        for pos in 0..k {
            let mut sketch = DistinctSketch::new();
            let mut keys: Vec<Value> = entries
                .clone()
                .filter_map(|args| args.get(pos).cloned())
                .collect();
            for key in &keys {
                sketch.observe(key);
            }
            keys.sort();
            let mut runs: Vec<(Value, usize)> = Vec::new();
            for key in keys {
                match runs.last_mut() {
                    Some((last, n)) if *last == key => *n += 1,
                    _ => runs.push((key, 1)),
                }
            }
            counts.push(PMap::from_sorted_vec(runs));
            sketches.push(Arc::new(sketch));
        }
        RelationshipStats {
            entries: total,
            counts: counts.into(),
            sketches: sketches.into(),
        }
    }

    /// Number of stored relationship entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Number of distinct key values at participant position `pos` —
    /// **exact**, from the persistent count map.
    pub fn distinct(&self, pos: usize) -> usize {
        self.counts.get(pos).map_or(0, PMap::len)
    }

    /// The distinct-count sketch for participant position `pos` — the
    /// O(1)-memory summary maintained alongside the exact count maps.
    /// Insert-monotone: after removals it may over-count (see the module
    /// docs), which is why [`Self::distinct_estimate`] clamps.
    pub fn sketch(&self, pos: usize) -> Option<&DistinctSketch> {
        self.sketches.get(pos).map(|s| s.as_ref())
    }

    /// The sketch-based distinct estimate at position `pos`, clamped to
    /// `[1, entries]` (0 when empty) so it stays sound after removals.
    /// Within [`DistinctSketch::RELATIVE_ERROR_BOUND`] of
    /// [`Self::distinct`] on insert-only histories (pinned by the sketch
    /// accuracy tests).
    pub fn distinct_estimate(&self, pos: usize) -> usize {
        if self.entries == 0 {
            return 0;
        }
        self.sketch(pos)
            .map_or(0, DistinctSketch::estimate)
            .clamp(1, self.entries)
    }

    /// Average entries per distinct key at position `pos` (0.0 when
    /// empty) — how many entries a bound key matches on average.
    pub fn avg_fanout(&self, pos: usize) -> f64 {
        let d = self.distinct(pos);
        if d == 0 {
            0.0
        } else {
            self.entries as f64 / d as f64
        }
    }

    /// The statistics after inserting an entry with these argument values
    /// (persistent: the receiver is unchanged). Each position's sketch
    /// observes its key; an observation that changes no register — the
    /// steady state once the registers saturate — shares the old sketch
    /// instead of copying it.
    pub fn with_inserted(&self, args: &[Value]) -> RelationshipStats {
        let counts: Vec<PMap<Value, usize>> = self
            .counts
            .iter()
            .zip(args)
            .map(|(m, v)| {
                let n = m.get(v).copied().unwrap_or(0);
                m.insert(v.clone(), n + 1).0
            })
            .collect();
        let sketches: Vec<Arc<DistinctSketch>> = self
            .sketches
            .iter()
            .zip(args)
            .map(|(s, v)| match s.with_observed(v) {
                Some(next) => Arc::new(next),
                None => s.clone(),
            })
            .collect();
        RelationshipStats {
            entries: self.entries + 1,
            counts: counts.into(),
            sketches: sketches.into(),
        }
    }

    /// The statistics after removing an entry with these argument values
    /// (persistent: the receiver is unchanged). The exact count maps
    /// reverse; the sketches are insert-monotone and carried over as-is —
    /// an upper bound consumers clamp (see [`Self::distinct_estimate`]).
    pub fn with_removed(&self, args: &[Value]) -> RelationshipStats {
        let counts: Vec<PMap<Value, usize>> = self
            .counts
            .iter()
            .zip(args)
            .map(|(m, v)| match m.get(v).copied() {
                Some(n) if n > 1 => m.insert(v.clone(), n - 1).0,
                Some(_) => m.remove(v).0,
                None => m.clone(),
            })
            .collect();
        RelationshipStats {
            entries: self.entries.saturating_sub(1),
            counts: counts.into(),
            sketches: self.sketches.clone(),
        }
    }

    /// Estimated working-row count after binding this relationship from
    /// `bound_rows` current rows with the given participant positions
    /// already bound — the module-level cost formula. With nothing bound
    /// the relationship is a generator: every row pairs with every entry.
    pub fn estimate_join_rows(&self, bound_rows: usize, bound_positions: &[usize]) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        let rows = bound_rows as f64;
        let entries = self.entries as f64;
        let max_distinct = bound_positions
            .iter()
            .map(|&p| self.distinct(p))
            .max()
            .unwrap_or(0);
        if max_distinct == 0 {
            rows * entries
        } else {
            rows * entries / (max_distinct.min(self.entries) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::tuple::TupleF;

    fn args(a: i64, b: i64) -> Vec<Value> {
        vec![Value::Int(a), Value::Int(b)]
    }

    /// Register-identity regression for the splitmix64 deduplication:
    /// `register_for` must place every hash in the same register with the
    /// same rank as the pre-refactor private finalizer did, or every
    /// persisted sketch estimate silently shifts.
    #[test]
    fn register_for_is_identical_to_the_inlined_finalizer() {
        fn old_register_for(h: u64) -> (usize, u8) {
            // the removed private copy, verbatim
            let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let idx = (z >> (64 - SKETCH_INDEX_BITS)) as usize;
            let rest = z << SKETCH_INDEX_BITS;
            let rank = (rest.leading_zeros() + 1).min(64 - SKETCH_INDEX_BITS + 1) as u8;
            (idx, rank)
        }
        for h in (0u64..10_000).chain([u64::MAX, 0xFD17, 0xDEAD_BEEF]) {
            assert_eq!(
                DistinctSketch::register_for(h),
                old_register_for(h),
                "register divergence at hash {h:#x}"
            );
        }
    }

    #[test]
    fn incremental_counts_match_bulk() {
        let entries = [args(1, 7), args(1, 8), args(2, 7), args(3, 9)];
        let mut inc = RelationshipStats::empty(2);
        for e in &entries {
            inc = inc.with_inserted(e);
        }
        let bulk = RelationshipStats::from_entries(2, entries.iter().map(Vec::as_slice));
        assert_eq!(inc.entries(), 4);
        assert_eq!(bulk.entries(), 4);
        for pos in 0..2 {
            assert_eq!(inc.distinct(pos), bulk.distinct(pos), "position {pos}");
        }
        assert_eq!(inc.distinct(0), 3, "cids 1, 2, 3");
        assert_eq!(inc.distinct(1), 3, "pids 7, 8, 9");
    }

    #[test]
    fn remove_reverses_insert() {
        let s = RelationshipStats::empty(2)
            .with_inserted(&args(1, 7))
            .with_inserted(&args(1, 8));
        assert_eq!(s.distinct(0), 1);
        let s2 = s.with_removed(&args(1, 8));
        assert_eq!(s2.entries(), 1);
        assert_eq!(s2.distinct(0), 1, "key 1 still present once");
        assert_eq!(s2.distinct(1), 1, "pid 8 gone");
        let s3 = s2.with_removed(&args(1, 7));
        assert_eq!(s3.entries(), 0);
        assert_eq!(s3.distinct(0), 0);
    }

    #[test]
    fn fanout_and_estimates() {
        // 6 entries over 3 distinct cids (fan-out 2), 6 distinct pids
        // (fan-out 1)
        let mut s = RelationshipStats::empty(2);
        for (c, p) in [(1, 1), (1, 2), (2, 3), (2, 4), (3, 5), (3, 6)] {
            s = s.with_inserted(&args(c, p));
        }
        assert_eq!(s.avg_fanout(0), 2.0);
        assert_eq!(s.avg_fanout(1), 1.0);
        // 100 rows bound on position 0: each matches ~2 entries
        assert_eq!(s.estimate_join_rows(100, &[0]), 200.0);
        // bound on position 1: fan-out 1
        assert_eq!(s.estimate_join_rows(100, &[1]), 100.0);
        // both bound: the larger distinct count wins (combination is at
        // least as selective)
        assert_eq!(s.estimate_join_rows(100, &[0, 1]), 100.0);
        // nothing bound: generator
        assert_eq!(s.estimate_join_rows(10, &[]), 60.0);
        // empty stats estimate zero
        assert_eq!(RelationshipStats::empty(2).estimate_join_rows(5, &[0]), 0.0);
    }

    #[test]
    fn relation_stats_and_distinct_estimates() {
        let rel = RelationF::new("r", &["id"])
            .insert(
                Value::Int(1),
                TupleF::builder("t").attr("name", "a").attr("x", 1).build(),
            )
            .unwrap()
            .insert(
                Value::Int(2),
                TupleF::builder("t").attr("name", "b").attr("x", 1).build(),
            )
            .unwrap();
        assert_eq!(RelationStats::of(&rel).rows, 2);
        // key attribute: exact
        assert_eq!(estimate_distinct(&rel, "id"), 2);
        // unconstrained attribute: sketched — both tuples share x=1
        assert_eq!(estimate_distinct(&rel, "x"), 1);
        // ...and the names differ, so `name` sketches to 2
        assert_eq!(estimate_distinct(&rel, "name"), 2);
        // an attribute no tuple carries: the one remaining fraction path
        assert_eq!(estimate_distinct(&rel, "ghost"), 1, "rows/10 floored");
        // unique constraint: exact
        let uniq = rel.with_constraint(Constraint::unique(&["name"])).unwrap();
        assert_eq!(estimate_distinct(&uniq, "name"), 2);
        // empty relation
        assert_eq!(estimate_distinct(&RelationF::new("e", &["id"]), "id"), 0);
    }

    #[test]
    fn sketch_estimates_within_documented_bound() {
        let mut s = DistinctSketch::new();
        for d in [1usize, 10, 500, 5_000] {
            for i in 0..(d * 3) {
                s.observe(&Value::Int((i % d) as i64));
            }
            let est = s.estimate() as f64;
            let err = (est - d as f64).abs() / d as f64;
            assert!(
                err < DistinctSketch::RELATIVE_ERROR_BOUND,
                "d={d}: estimate {est} off by {err:.3}"
            );
            s = DistinctSketch::new();
        }
    }

    #[test]
    fn sketch_estimate_handles_maximal_register_ranks() {
        // a rank at the 55 cap (probability ~2^-54 per observation, but
        // guaranteed eventually at scale) must not overflow the 2^-r
        // term — regression for a debug-mode `1u32 << 55` panic
        let mut s = DistinctSketch::new();
        s.regs[0] = 55;
        s.regs[1] = 32;
        let est = s.estimate();
        assert!(est >= 1, "near-empty sketch with two hot registers: {est}");
        // and a saturated sketch still produces a finite estimate
        let full = DistinctSketch {
            regs: [55; SKETCH_REGISTERS],
        };
        assert!(full.estimate() > 0);
    }

    #[test]
    fn sketch_is_order_insensitive_and_mergeable() {
        let vals: Vec<Value> = (0..300).map(|i| Value::Int(i % 77)).collect();
        let mut fwd = DistinctSketch::new();
        let mut rev = DistinctSketch::new();
        for v in &vals {
            fwd.observe(v);
        }
        for v in vals.iter().rev() {
            rev.observe(v);
        }
        assert_eq!(fwd, rev, "register-identical under reordering");
        // split + merge reproduces the whole
        let (a, b) = vals.split_at(150);
        let mut left = DistinctSketch::new();
        let mut right = DistinctSketch::new();
        a.iter().for_each(|v| left.observe(v));
        b.iter().for_each(|v| right.observe(v));
        left.merge_from(&right);
        assert_eq!(left, fwd);
        // duplicates never move a register
        let before = fwd.clone();
        for v in &vals {
            assert!(fwd.with_observed(v).is_none(), "already observed");
        }
        assert_eq!(fwd, before);
    }

    #[test]
    fn relationship_sketches_track_inserts_and_survive_removes() {
        let mut s = RelationshipStats::empty(2);
        for i in 0..200i64 {
            s = s.with_inserted(&args(i % 25, i));
        }
        // sketch vs exact map, both positions
        for pos in 0..2 {
            let exact = s.distinct(pos) as f64;
            let est = s.distinct_estimate(pos) as f64;
            assert!(
                (est - exact).abs() / exact < DistinctSketch::RELATIVE_ERROR_BOUND,
                "pos {pos}: {est} vs {exact}"
            );
        }
        // removal: exact counts reverse, sketch stays (monotone upper
        // bound) but the estimate clamps to the entry count
        let mut removed = s.clone();
        for i in 0..195i64 {
            removed = removed.with_removed(&args(i % 25, i));
        }
        assert_eq!(removed.entries(), 5);
        assert_eq!(removed.sketch(1), s.sketch(1), "sketch never forgets");
        assert!(removed.distinct_estimate(1) <= removed.entries());
    }

    #[test]
    fn bulk_and_incremental_sketches_are_register_identical() {
        let entries: Vec<Vec<Value>> = (0..150).map(|i| args(i % 13, i % 40)).collect();
        let mut inc = RelationshipStats::empty(2);
        for e in &entries {
            inc = inc.with_inserted(e);
        }
        let bulk = RelationshipStats::from_entries(2, entries.iter().map(Vec::as_slice));
        for pos in 0..2 {
            assert_eq!(inc.sketch(pos), bulk.sketch(pos), "position {pos}");
        }
    }
}
