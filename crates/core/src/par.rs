//! Parallel operator execution primitives.
//!
//! PR 1's [`RelationBuilder`](crate::RelationBuilder) made operator output
//! a plain `Vec` handed to one O(n) bulk tree build — which is what makes
//! chunked parallelism possible at all: operator bodies are pure per-entry
//! work, so a relation's entries can be split into contiguous chunks, each
//! chunk processed on its own thread into a key-sorted run, and the runs
//! merged into a single [`RelationF::from_sorted`](crate::RelationF)
//! build. The old per-tuple persistent-insert loop serialized everything
//! through one evolving tree root and structurally prevented this.
//!
//! Three pieces:
//!
//! * [`ParConfig`] — thread count and sequential cutoff, overridable via
//!   environment (`THREADS`/`FDM_THREADS`, `FDM_PAR_CUTOFF`) so CI can pin
//!   determinism (`THREADS=1` vs `THREADS=4`) and tests can force the
//!   parallel path on small data;
//! * [`par_map_chunks`] — scoped-thread fork/join over contiguous chunks
//!   (`std::thread::scope`; the offline container has no rayon, and the
//!   txn concurrency tests already prove this pattern);
//! * [`ParallelBuilder`] — accumulates per-chunk sorted runs and k-way
//!   merges them into one relation, reporting duplicate keys with exactly
//!   the error the sequential [`RelationBuilder`](crate::RelationBuilder)
//!   would raise.
//!
//! Chunks are contiguous and runs are merged in chunk order (ties break
//! toward the lower chunk), so the result is **byte-identical** to the
//! sequential path regardless of thread count — pinned by the
//! `par_equivalence` suite.

use crate::error::{FdmError, Name, Result};
use crate::relation::RelationF;
use crate::tuple::TupleF;
use crate::value::Value;
use std::sync::Arc;

/// Entries below this many rows stay on the sequential path by default:
/// thread spawn + merge overhead beats the win on small inputs (the 1k
/// bench scale must not regress).
pub const DEFAULT_PAR_CUTOFF: usize = 2048;

/// How many worker threads to use and when to bother.
#[derive(Debug, Clone, Copy)]
pub struct ParConfig {
    /// Worker thread count (1 disables parallelism).
    pub threads: usize,
    /// Minimum input size that takes the parallel path.
    pub cutoff: usize,
}

impl ParConfig {
    /// Resolves the configuration from the environment:
    ///
    /// * `FDM_THREADS` (or `THREADS`) — worker count; defaults to
    ///   [`std::thread::available_parallelism`];
    /// * `FDM_PAR_CUTOFF` — sequential cutoff; defaults to
    ///   [`DEFAULT_PAR_CUTOFF`].
    ///
    /// Read per call (not cached) so tests and CI matrix jobs can vary it
    /// at runtime; two env lookups are noise next to any operator body.
    pub fn from_env() -> ParConfig {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
        };
        let threads = parse("FDM_THREADS")
            .or_else(|| parse("THREADS"))
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(64);
        let cutoff = parse("FDM_PAR_CUTOFF").unwrap_or(DEFAULT_PAR_CUTOFF);
        ParConfig { threads, cutoff }
    }

    /// `true` if an input of `n` entries should take the parallel path.
    pub fn should_parallelize(&self, n: usize) -> bool {
        self.threads >= 2 && n >= self.cutoff.max(2)
    }
}

/// Splits `items` into `threads` contiguous chunks, runs `f` on each chunk
/// concurrently (scoped threads; the first chunk runs on the calling
/// thread), and returns the per-chunk results **in chunk order**.
///
/// Order preservation is the determinism contract: concatenating the
/// results reproduces what a sequential left-to-right pass over `items`
/// would produce, whatever the thread interleaving was.
pub fn par_map_chunks<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        return vec![f(items)];
    }
    let chunk_len = n.div_ceil(workers);
    let mut chunks = items.chunks(chunk_len);
    let first = chunks.next().expect("n >= workers >= 2");
    let rest: Vec<&[T]> = chunks.collect();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = rest.into_iter().map(|c| s.spawn(move || f(c))).collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(f(first));
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// Accumulates key-sorted runs (one per chunk) and k-way merges them into
/// a stored relation function.
///
/// The merge reports a [`FdmError::DuplicateKey`] for the first duplicate
/// key in global sort order — exactly what the sequential
/// [`RelationBuilder`](crate::RelationBuilder) reports for the same input,
/// whether the duplicates sit inside one run or straddle a chunk boundary.
pub struct ParallelBuilder {
    name: Name,
    key_attrs: Arc<[Name]>,
    runs: Vec<Vec<(Value, Arc<TupleF>)>>,
}

impl ParallelBuilder {
    /// Starts an empty builder for a relation named `name` with the given
    /// key attributes.
    pub fn new(name: impl AsRef<str>, key_attrs: &[&str]) -> ParallelBuilder {
        ParallelBuilder {
            name: Arc::from(name.as_ref()),
            key_attrs: key_attrs.iter().map(|k| Name::from(*k)).collect(),
            runs: Vec::new(),
        }
    }

    /// Starts a builder carrying `rel`'s name and key attributes — the
    /// parallel analogue of [`RelationF::builder_like`].
    pub fn for_relation(rel: &RelationF) -> ParallelBuilder {
        ParallelBuilder {
            name: Arc::from(rel.name()),
            key_attrs: rel.key_attrs().iter().cloned().collect(),
            runs: Vec::new(),
        }
    }

    /// Appends one chunk's output. Runs arriving out of key order are
    /// stably sorted here (on the calling thread; chunk closures normally
    /// produce sorted runs because operators iterate key-ordered input).
    pub fn push_run(&mut self, mut run: Vec<(Value, Arc<TupleF>)>) {
        if !run.windows(2).all(|w| w[0].0 <= w[1].0) {
            run.sort_by(|a, b| a.0.cmp(&b.0));
        }
        self.runs.push(run);
    }

    /// Merges the runs and bulk-builds the relation in O(total).
    ///
    /// When the concatenation of runs is already strictly ascending (the
    /// common case: contiguous chunks of a key-ordered input), the merge
    /// degenerates to one `Vec` concatenation.
    pub fn build(self) -> Result<RelationF> {
        let ParallelBuilder {
            name,
            key_attrs,
            runs,
        } = self;
        let total: usize = runs.iter().map(Vec::len).sum();
        let key_strs: Vec<&str> = key_attrs.iter().map(|n| n.as_ref()).collect();

        // Fast path: every run strictly ascending and boundaries strictly
        // ascending too → concatenation is the merged, duplicate-free order.
        let concat_ok = runs.iter().all(|r| r.windows(2).all(|w| w[0].0 < w[1].0))
            && runs.windows(2).all(|w| match (w[0].last(), w[1].first()) {
                (Some((a, _)), Some((b, _))) => a < b,
                _ => true,
            });
        if concat_ok {
            let mut entries = Vec::with_capacity(total);
            for run in runs {
                entries.extend(run);
            }
            return Ok(RelationF::from_sorted(name.as_ref(), &key_strs, entries));
        }

        // K-way merge (k = chunk count, a handful): repeatedly take the
        // smallest head, ties toward the lower run index for stability.
        let mut iters: Vec<std::vec::IntoIter<(Value, Arc<TupleF>)>> =
            runs.into_iter().map(Vec::into_iter).collect();
        let mut heads: Vec<Option<(Value, Arc<TupleF>)>> =
            iters.iter_mut().map(Iterator::next).collect();
        let mut entries: Vec<(Value, Arc<TupleF>)> = Vec::with_capacity(total);
        loop {
            let mut best: Option<usize> = None;
            for i in 0..heads.len() {
                if let Some((k, _)) = &heads[i] {
                    best = match best {
                        Some(b) if heads[b].as_ref().expect("best is live").0 <= *k => Some(b),
                        _ => Some(i),
                    };
                }
            }
            let Some(i) = best else { break };
            let (key, tuple) = heads[i].take().expect("best is live");
            heads[i] = iters[i].next();
            if let Some((prev, _)) = entries.last() {
                if *prev == key {
                    return Err(FdmError::DuplicateKey {
                        relation: name.to_string(),
                        key: key.to_string(),
                    });
                }
            }
            entries.push((key, tuple));
        }
        Ok(RelationF::from_sorted(name.as_ref(), &key_strs, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;

    fn t(x: i64) -> Arc<TupleF> {
        Arc::new(TupleF::builder("t").attr("x", x).build())
    }

    #[test]
    fn par_map_chunks_preserves_order() {
        let items: Vec<i64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let runs = par_map_chunks(&items, threads, |chunk| {
                chunk.iter().map(|i| i * 2).collect::<Vec<_>>()
            });
            let flat: Vec<i64> = runs.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn contiguous_runs_take_the_concat_path() {
        let mut b = ParallelBuilder::new("r", &["k"]);
        b.push_run((0..5).map(|i| (Value::Int(i), t(i))).collect());
        b.push_run((5..9).map(|i| (Value::Int(i), t(i))).collect());
        let rel = b.build().unwrap();
        assert_eq!(rel.len(), 9);
        assert_eq!(
            rel.stored_keys(),
            (0..9).map(Value::Int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn interleaved_runs_merge_sorted() {
        let mut b = ParallelBuilder::new("r", &["k"]);
        b.push_run(vec![(Value::Int(1), t(1)), (Value::Int(4), t(4))]);
        b.push_run(vec![(Value::Int(2), t(2)), (Value::Int(3), t(3))]);
        let rel = b.build().unwrap();
        assert_eq!(
            rel.stored_keys(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]
        );
    }

    #[test]
    fn duplicate_error_matches_sequential_builder() {
        // duplicates straddling a chunk boundary
        let mut par = ParallelBuilder::new("r", &["k"]);
        par.push_run(vec![(Value::Int(1), t(1)), (Value::Int(5), t(5))]);
        par.push_run(vec![(Value::Int(5), t(50)), (Value::Int(9), t(9))]);
        let par_err = par.build().unwrap_err();

        let mut seq = RelationBuilder::new("r", &["k"]);
        for (k, tu) in [
            (Value::Int(1), t(1)),
            (Value::Int(5), t(5)),
            (Value::Int(5), t(50)),
            (Value::Int(9), t(9)),
        ] {
            seq.push_arc(k, tu);
        }
        let seq_err = seq.build().unwrap_err();
        assert_eq!(par_err.to_string(), seq_err.to_string());
        assert!(matches!(par_err, FdmError::DuplicateKey { .. }));
    }

    #[test]
    fn unsorted_run_is_sorted_on_push() {
        let mut b = ParallelBuilder::new("r", &["k"]);
        b.push_run(vec![(Value::Int(3), t(3)), (Value::Int(1), t(1))]);
        let rel = b.build().unwrap();
        assert_eq!(rel.stored_keys(), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn config_env_overrides() {
        // from_env reads the process environment; exercise the parsing
        // logic through explicit construction instead (env mutation would
        // race other tests).
        let cfg = ParConfig {
            threads: 4,
            cutoff: 100,
        };
        assert!(cfg.should_parallelize(100));
        assert!(!cfg.should_parallelize(99));
        let seq = ParConfig {
            threads: 1,
            cutoff: 0,
        };
        assert!(!seq.should_parallelize(1_000_000));
    }
}
