//! Tuple functions (paper §2.3).
//!
//! A tuple function maps attribute names to values:
//! `t1('name') = 'Alice'`. Attributes may be **stored** (a constant) or
//! **computed** (a closure over the tuple itself) — and the two are
//! indistinguishable to callers, which is the paper's point (3): "the
//! boundary between data that is stored and data that is computed is
//! removed". Values may themselves be functions (nested tuples, relations;
//! §2.6).

use crate::domain::Domain;
use crate::error::{FdmError, Name, Result};
use crate::function::Function;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A computed attribute: a closure receiving the tuple it belongs to, so it
/// can derive its value from other attributes (like the paper's
/// `t('bar') = 42 · t1('foo')`).
pub type ComputedAttr = Arc<dyn Fn(&TupleF) -> Result<Value> + Send + Sync>;

/// One attribute definition.
#[derive(Clone)]
enum AttrDef {
    Stored(Value),
    Computed(ComputedAttr),
}

/// A tuple function: attribute name → value.
///
/// Construction goes through [`TupleBuilder`]; the result is immutable.
/// "Updates" build new tuples ([`TupleF::with_attr`]) — persistence all the
/// way down, so snapshots are free.
///
/// # Examples
///
/// ```
/// use fdm_core::{TupleF, Value};
///
/// // t1(attr) := {('name': 'Alice'), ('foo': 12)}            (paper §2.3)
/// let t1 = TupleF::builder("t1")
///     .attr("name", "Alice")
///     .attr("foo", 12)
///     .build();
/// assert_eq!(t1.get("foo").unwrap(), Value::Int(12));
///
/// // computed attribute: t('bar') = 42 * t('foo')
/// let t = TupleF::builder("t")
///     .attr("name", "Alice")
///     .attr("foo", 12)
///     .computed("bar", |t| t.get("foo")?.mul(&Value::Int(42)))
///     .build();
/// assert_eq!(t.get("bar").unwrap(), Value::Int(504));
/// ```
#[derive(Clone)]
pub struct TupleF {
    name: Name,
    /// Attribute definitions in declaration order (small: linear scan wins
    /// over hashing for the typical < 32 attributes).
    attrs: Arc<[(Name, AttrDef)]>,
}

impl TupleF {
    /// Starts building a tuple function with the given name.
    pub fn builder(name: impl AsRef<str>) -> TupleBuilder {
        TupleBuilder {
            name: Arc::from(name.as_ref()),
            attrs: Vec::new(),
        }
    }

    /// Builds a stored-only tuple directly from already-interned
    /// `(name, value)` pairs — the bulk-construction companion used by join
    /// and projection hot paths, where re-allocating every attribute name
    /// through [`TupleBuilder::attr`] would dominate.
    pub fn from_parts(name: impl AsRef<str>, parts: Vec<(Name, Value)>) -> TupleF {
        TupleF {
            name: Arc::from(name.as_ref()),
            attrs: parts
                .into_iter()
                .map(|(n, v)| (n, AttrDef::Stored(v)))
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// The tuple function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (stored + computed).
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in declaration order.
    pub fn attr_names(&self) -> impl Iterator<Item = &Name> + '_ {
        self.attrs.iter().map(|(n, _)| n)
    }

    /// `true` if the tuple has this attribute.
    pub fn has_attr(&self, attr: &str) -> bool {
        self.attrs.iter().any(|(n, _)| n.as_ref() == attr)
    }

    /// `true` if the attribute exists and is computed (not stored).
    pub fn is_computed(&self, attr: &str) -> bool {
        self.attrs
            .iter()
            .any(|(n, d)| n.as_ref() == attr && matches!(d, AttrDef::Computed(_)))
    }

    /// Looks up an attribute value — calling the tuple function.
    ///
    /// Computed attributes are evaluated on demand; callers cannot tell the
    /// difference.
    pub fn get(&self, attr: &str) -> Result<Value> {
        for (n, def) in self.attrs.iter() {
            if n.as_ref() == attr {
                return match def {
                    AttrDef::Stored(v) => Ok(v.clone()),
                    AttrDef::Computed(f) => f(self),
                };
            }
        }
        Err(FdmError::NoSuchAttribute {
            attr: attr.to_string(),
        })
    }

    /// Like [`Self::get`] but returns `None` instead of an error for a
    /// missing attribute.
    pub fn try_get(&self, attr: &str) -> Option<Value> {
        self.get(attr).ok()
    }

    /// Builds a new tuple with `attr` set to `value` (stored), replacing
    /// any previous definition. This is the FQL update
    /// `customers[3]['age'] = 50` (paper Fig. 10) at the tuple level.
    pub fn with_attr(&self, attr: impl AsRef<str>, value: impl Into<Value>) -> TupleF {
        let attr = attr.as_ref();
        let mut attrs: Vec<(Name, AttrDef)> = self.attrs.to_vec();
        let def = AttrDef::Stored(value.into());
        match attrs.iter_mut().find(|(n, _)| n.as_ref() == attr) {
            Some((_, slot)) => *slot = def,
            None => attrs.push((Arc::from(attr), def)),
        }
        TupleF {
            name: self.name.clone(),
            attrs: attrs.into(),
        }
    }

    /// Builds a new tuple without `attr`.
    pub fn without_attr(&self, attr: &str) -> TupleF {
        let attrs: Vec<(Name, AttrDef)> = self
            .attrs
            .iter()
            .filter(|(n, _)| n.as_ref() != attr)
            .cloned()
            .collect();
        TupleF {
            name: self.name.clone(),
            attrs: attrs.into(),
        }
    }

    /// Builds a new tuple with only the named attributes, in the given
    /// order (projection).
    pub fn project(&self, attrs: &[&str]) -> Result<TupleF> {
        let mut out = Vec::with_capacity(attrs.len());
        for want in attrs {
            let found = self
                .attrs
                .iter()
                .find(|(n, _)| n.as_ref() == *want)
                .ok_or_else(|| FdmError::NoSuchAttribute {
                    attr: (*want).to_string(),
                })?;
            out.push(found.clone());
        }
        Ok(TupleF {
            name: self.name.clone(),
            attrs: out.into(),
        })
    }

    /// Evaluates every attribute and returns `(name, value)` pairs in
    /// declaration order. Computed attributes are materialized.
    pub fn materialize(&self) -> Result<Vec<(Name, Value)>> {
        self.attrs
            .iter()
            .map(|(n, _)| Ok((n.clone(), self.get(n)?)))
            .collect()
    }

    /// Structural data equality: same attribute names (order-insensitive)
    /// mapping to equal values, with computed attributes evaluated.
    /// Evaluation failures compare as not-equal.
    pub fn eq_data(&self, other: &TupleF) -> bool {
        if self.attrs.len() != other.attrs.len() {
            return false;
        }
        let (Ok(mut a), Ok(mut b)) = (self.materialize(), other.materialize()) else {
            return false;
        };
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        a == b
    }

    /// A canonical sort key over materialized attributes, used for
    /// deterministic ordering and duplicate elimination in set operations.
    pub fn data_key(&self) -> Result<Value> {
        let mut pairs = self.materialize()?;
        pairs.sort_by(|x, y| x.0.cmp(&y.0));
        Ok(Value::list(
            pairs.into_iter().flat_map(|(n, v)| [Value::Str(n), v]),
        ))
    }
}

impl Function for TupleF {
    fn fn_name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        1
    }

    fn domain(&self) -> Domain {
        Domain::enumerated(self.attrs.iter().map(|(n, _)| Value::Str(n.clone())))
    }

    fn apply(&self, args: &[Value]) -> Result<Value> {
        if args.len() != 1 {
            return Err(FdmError::ArityMismatch {
                function: self.name.to_string(),
                expected: 1,
                found: args.len(),
            });
        }
        let attr = args[0].as_str("tuple function argument")?;
        self.get(attr)
    }
}

impl fmt::Debug for TupleF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.name)?;
        for (i, (n, def)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match def {
                AttrDef::Stored(v) => write!(f, "'{n}': {v}")?,
                AttrDef::Computed(_) => write!(f, "'{n}': <computed>")?,
            }
        }
        write!(f, "}}")
    }
}

/// Builder for [`TupleF`].
pub struct TupleBuilder {
    name: Name,
    attrs: Vec<(Name, AttrDef)>,
}

impl TupleBuilder {
    /// Adds a stored attribute.
    pub fn attr(mut self, name: impl AsRef<str>, value: impl Into<Value>) -> Self {
        self.attrs
            .push((Arc::from(name.as_ref()), AttrDef::Stored(value.into())));
        self
    }

    /// Adds a stored attribute under an already-interned name (no name
    /// re-allocation; see [`TupleF::from_parts`]).
    pub fn attr_name(mut self, name: Name, value: Value) -> Self {
        self.attrs.push((name, AttrDef::Stored(value)));
        self
    }

    /// Adds a computed attribute: a closure over the finished tuple.
    pub fn computed(
        mut self,
        name: impl AsRef<str>,
        f: impl Fn(&TupleF) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        self.attrs
            .push((Arc::from(name.as_ref()), AttrDef::Computed(Arc::new(f))));
        self
    }

    /// Adds a nested function-valued attribute (paper §2.6: `t5('foo') = R`).
    pub fn function(
        mut self,
        name: impl AsRef<str>,
        f: impl Into<crate::function::FnValue>,
    ) -> Self {
        self.attrs.push((
            Arc::from(name.as_ref()),
            AttrDef::Stored(Value::Fn(f.into())),
        ));
        self
    }

    /// Finishes the tuple function.
    pub fn build(self) -> TupleF {
        TupleF {
            name: self.name,
            attrs: self.attrs.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{apply1, FnValue};

    fn t1() -> TupleF {
        TupleF::builder("t1")
            .attr("name", "Alice")
            .attr("foo", 12)
            .build()
    }

    #[test]
    fn paper_t1_lookup() {
        // t1('foo') = 12   (paper §2.3)
        let t = t1();
        assert_eq!(t.get("foo").unwrap(), Value::Int(12));
        assert_eq!(t.get("name").unwrap(), Value::str("Alice"));
        let err = t.get("bar").unwrap_err();
        assert!(matches!(err, FdmError::NoSuchAttribute { .. }));
    }

    #[test]
    fn computed_attr_indistinguishable_from_stored() {
        // t('bar') = 42 · t1('foo') if attr = 'bar', else t1(attr)
        let t = TupleF::builder("t")
            .attr("name", "Alice")
            .attr("foo", 12)
            .computed("bar", |t| t.get("foo")?.mul(&Value::Int(42)))
            .build();
        assert_eq!(t.get("bar").unwrap(), Value::Int(504));
        assert!(t.is_computed("bar"));
        assert!(!t.is_computed("foo"));
        // through the uniform Function interface there is no difference:
        assert_eq!(
            apply1(&t, &Value::str("bar")).unwrap(),
            apply1(&t, &Value::str("foo"))
                .unwrap()
                .mul(&Value::Int(42))
                .unwrap()
        );
    }

    #[test]
    fn function_interface_domain_is_attr_names() {
        let t = t1();
        let d = t.domain();
        assert!(d.contains(&Value::str("name")));
        assert!(!d.contains(&Value::str("nope")));
        let attrs = d.enumerate().unwrap();
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn nested_function_valued_attribute() {
        // t3('foo') = t1 — a higher-order tuple (paper §2.6)
        let inner = t1();
        let t3 = TupleF::builder("t3")
            .attr("name", "Bob")
            .function("foo", inner)
            .build();
        let v = t3.get("foo").unwrap();
        let f = v.as_fn("nested").unwrap();
        let nested = f.as_tuple().unwrap();
        assert_eq!(nested.get("name").unwrap(), Value::str("Alice"));
    }

    #[test]
    fn with_attr_is_persistent() {
        let t = t1();
        let t2 = t.with_attr("foo", 99);
        assert_eq!(t.get("foo").unwrap(), Value::Int(12), "original unchanged");
        assert_eq!(t2.get("foo").unwrap(), Value::Int(99));
        let t3 = t.with_attr("new", "x");
        assert_eq!(t3.attr_count(), 3);
        assert!(!t.has_attr("new"));
    }

    #[test]
    fn without_attr_and_project() {
        let t = t1();
        let no_foo = t.without_attr("foo");
        assert!(!no_foo.has_attr("foo"));
        assert_eq!(no_foo.attr_count(), 1);
        let proj = t.project(&["foo"]).unwrap();
        assert_eq!(proj.attr_count(), 1);
        assert!(t.project(&["nope"]).is_err());
    }

    #[test]
    fn eq_data_is_order_insensitive_and_evaluates_computed() {
        let a = TupleF::builder("a").attr("x", 1).attr("y", 2).build();
        let b = TupleF::builder("b").attr("y", 2).attr("x", 1).build();
        assert!(a.eq_data(&b), "names differ but data equal");
        let c = TupleF::builder("c")
            .attr("y", 2)
            .computed("x", |_| Ok(Value::Int(1)))
            .build();
        assert!(a.eq_data(&c), "computed 1 == stored 1");
        let d = a.with_attr("x", 5);
        assert!(!a.eq_data(&d));
    }

    #[test]
    fn materialize_preserves_declaration_order() {
        let t = TupleF::builder("t").attr("b", 2).attr("a", 1).build();
        let m = t.materialize().unwrap();
        assert_eq!(m[0].0.as_ref(), "b");
        assert_eq!(m[1].0.as_ref(), "a");
    }

    #[test]
    fn failing_computed_attr_propagates_error() {
        let t = TupleF::builder("t")
            .computed("boom", |_| Err(FdmError::Other("kaput".into())))
            .build();
        assert!(t.get("boom").is_err());
        assert!(
            !t.eq_data(&t.clone()),
            "failing tuples are never data-equal"
        );
    }

    #[test]
    fn tuple_as_fnvalue_in_value() {
        let v = Value::Fn(FnValue::from(t1()));
        assert_eq!(v.value_type(), crate::types::ValueType::Function);
        let s = v.to_string();
        assert!(s.contains("tuple function"), "{s}");
    }
}
