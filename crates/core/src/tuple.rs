//! Tuple functions (paper §2.3).
//!
//! A tuple function maps attribute names to values:
//! `t1('name') = 'Alice'`. Attributes may be **stored** (a constant) or
//! **computed** (a closure over the tuple itself) — and the two are
//! indistinguishable to callers, which is the paper's point (3): "the
//! boundary between data that is stored and data that is computed is
//! removed". Values may themselves be functions (nested tuples, relations;
//! §2.6).
//!
//! # The data-key fingerprint cache
//!
//! Database-level set operations (`minus`/`intersect`, the §4.4
//! differential-database path) compare tuples by their **canonical data
//! key**: every attribute materialized, sorted by name — an O(a log a)
//! computation with allocations, paid per comparison if done naively.
//! Each tuple therefore carries a lazily computed [`DataKey`] (the
//! canonical key plus a cheap 64-bit hash for O(1) inequality rejection)
//! in a [`OnceLock`]: the first [`TupleF::data_key`] /
//! [`TupleF::fingerprint`] / [`TupleF::eq_data`] call pays the
//! materialization, every later one is a lock-free read.
//!
//! **Invalidation contract.** A `TupleF` is immutable: every "mutation"
//! (`with_attr`, `without_attr`, `project`, the builders) constructs a
//! *new* tuple — and every construction site starts with an **empty**
//! cache. Staleness is therefore impossible by construction: there is no
//! code path that changes a tuple's attributes while keeping its cache.
//! Cloning a tuple copies the cache, which is sound because the clone has
//! identical attributes. The one assumption is that computed attributes
//! are **deterministic** (pure functions of the tuple, as the paper's
//! model demands); a computed attribute reading ambient mutable state
//! would make any caching — and the paper's stored/computed equivalence
//! itself — unsound. Failed computations are never cached: a tuple whose
//! computed attribute errors recomputes (and re-errors) on every call.

use crate::domain::Domain;
use crate::error::{FdmError, Name, Result};
use crate::function::Function;
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A tuple's canonical data fingerprint: the sorted-attribute data key
/// (see [`TupleF::data_key`]) together with its precomputed
/// [`Value::fx_hash`]. Two fingerprints are equal iff the data keys are equal;
/// the hash makes the (overwhelmingly common) *unequal* case a single
/// integer comparison.
#[derive(Clone, Debug)]
pub struct DataKey {
    hash: u64,
    key: Value,
}

impl DataKey {
    /// The 64-bit hash of the canonical key.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical key itself: a flat list
    /// `[name1, value1, name2, value2, ...]` sorted by attribute name.
    pub fn value(&self) -> &Value {
        &self.key
    }
}

impl PartialEq for DataKey {
    fn eq(&self, other: &DataKey) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}

impl Eq for DataKey {}

/// A computed attribute: a closure receiving the tuple it belongs to, so it
/// can derive its value from other attributes (like the paper's
/// `t('bar') = 42 · t1('foo')`).
pub type ComputedAttr = Arc<dyn Fn(&TupleF) -> Result<Value> + Send + Sync>;

/// One attribute definition.
#[derive(Clone)]
enum AttrDef {
    Stored(Value),
    Computed(ComputedAttr),
}

/// A tuple function: attribute name → value.
///
/// Construction goes through [`TupleBuilder`]; the result is immutable.
/// "Updates" build new tuples ([`TupleF::with_attr`]) — persistence all the
/// way down, so snapshots are free.
///
/// # Examples
///
/// ```
/// use fdm_core::{TupleF, Value};
///
/// // t1(attr) := {('name': 'Alice'), ('foo': 12)}            (paper §2.3)
/// let t1 = TupleF::builder("t1")
///     .attr("name", "Alice")
///     .attr("foo", 12)
///     .build();
/// assert_eq!(t1.get("foo").unwrap(), Value::Int(12));
///
/// // computed attribute: t('bar') = 42 * t('foo')
/// let t = TupleF::builder("t")
///     .attr("name", "Alice")
///     .attr("foo", 12)
///     .computed("bar", |t| t.get("foo")?.mul(&Value::Int(42)))
///     .build();
/// assert_eq!(t.get("bar").unwrap(), Value::Int(504));
/// ```
#[derive(Clone)]
pub struct TupleF {
    name: Name,
    /// Attribute definitions in declaration order (small: linear scan wins
    /// over hashing for the typical < 32 attributes).
    attrs: Arc<[(Name, AttrDef)]>,
    /// Lazily computed canonical fingerprint (see the module docs for the
    /// invalidation contract: fresh and empty at every construction site,
    /// so it can never outlive the attribute list it describes). `Clone`
    /// carries a filled cache over, which is sound — the clone's
    /// attributes are identical.
    data_key_cache: OnceLock<DataKey>,
}

impl TupleF {
    /// Starts building a tuple function with the given name.
    pub fn builder(name: impl AsRef<str>) -> TupleBuilder {
        TupleBuilder {
            name: Arc::from(name.as_ref()),
            attrs: Vec::new(),
        }
    }

    /// Builds a stored-only tuple directly from already-interned
    /// `(name, value)` pairs — the bulk-construction companion used by join
    /// and projection hot paths, where re-allocating every attribute name
    /// through [`TupleBuilder::attr`] would dominate.
    pub fn from_parts(name: impl AsRef<str>, parts: Vec<(Name, Value)>) -> TupleF {
        TupleF {
            name: Arc::from(name.as_ref()),
            attrs: parts
                .into_iter()
                .map(|(n, v)| (n, AttrDef::Stored(v)))
                .collect::<Vec<_>>()
                .into(),
            data_key_cache: OnceLock::new(),
        }
    }

    /// The tuple function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (stored + computed).
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in declaration order.
    pub fn attr_names(&self) -> impl Iterator<Item = &Name> + '_ {
        self.attrs.iter().map(|(n, _)| n)
    }

    /// `true` if the tuple has this attribute.
    pub fn has_attr(&self, attr: &str) -> bool {
        self.attrs.iter().any(|(n, _)| n.as_ref() == attr)
    }

    /// `true` if the attribute exists and is computed (not stored).
    pub fn is_computed(&self, attr: &str) -> bool {
        self.attrs
            .iter()
            .any(|(n, d)| n.as_ref() == attr && matches!(d, AttrDef::Computed(_)))
    }

    /// Looks up an attribute value — calling the tuple function.
    ///
    /// Computed attributes are evaluated on demand; callers cannot tell the
    /// difference.
    pub fn get(&self, attr: &str) -> Result<Value> {
        for (n, def) in self.attrs.iter() {
            if n.as_ref() == attr {
                return match def {
                    AttrDef::Stored(v) => Ok(v.clone()),
                    AttrDef::Computed(f) => f(self),
                };
            }
        }
        Err(FdmError::NoSuchAttribute {
            attr: attr.to_string(),
        })
    }

    /// Like [`Self::get`] but returns `None` instead of an error for a
    /// missing attribute.
    pub fn try_get(&self, attr: &str) -> Option<Value> {
        self.get(attr).ok()
    }

    /// Builds a new tuple with `attr` set to `value` (stored), replacing
    /// any previous definition. This is the FQL update
    /// `customers[3]['age'] = 50` (paper Fig. 10) at the tuple level.
    pub fn with_attr(&self, attr: impl AsRef<str>, value: impl Into<Value>) -> TupleF {
        let attr = attr.as_ref();
        let mut attrs: Vec<(Name, AttrDef)> = self.attrs.to_vec();
        let def = AttrDef::Stored(value.into());
        match attrs.iter_mut().find(|(n, _)| n.as_ref() == attr) {
            Some((_, slot)) => *slot = def,
            None => attrs.push((Arc::from(attr), def)),
        }
        TupleF {
            name: self.name.clone(),
            attrs: attrs.into(),
            data_key_cache: OnceLock::new(),
        }
    }

    /// Builds a new tuple without `attr`.
    pub fn without_attr(&self, attr: &str) -> TupleF {
        let attrs: Vec<(Name, AttrDef)> = self
            .attrs
            .iter()
            .filter(|(n, _)| n.as_ref() != attr)
            .cloned()
            .collect();
        TupleF {
            name: self.name.clone(),
            attrs: attrs.into(),
            data_key_cache: OnceLock::new(),
        }
    }

    /// Builds a new tuple with only the named attributes, in the given
    /// order (projection).
    pub fn project(&self, attrs: &[&str]) -> Result<TupleF> {
        let mut out = Vec::with_capacity(attrs.len());
        for want in attrs {
            let found = self
                .attrs
                .iter()
                .find(|(n, _)| n.as_ref() == *want)
                .ok_or_else(|| FdmError::NoSuchAttribute {
                    attr: (*want).to_string(),
                })?;
            out.push(found.clone());
        }
        Ok(TupleF {
            name: self.name.clone(),
            attrs: out.into(),
            data_key_cache: OnceLock::new(),
        })
    }

    /// Evaluates every attribute and returns `(name, value)` pairs in
    /// declaration order. Computed attributes are materialized.
    pub fn materialize(&self) -> Result<Vec<(Name, Value)>> {
        self.attrs
            .iter()
            .map(|(n, _)| Ok((n.clone(), self.get(n)?)))
            .collect()
    }

    /// Structural data equality: same attribute names (order-insensitive)
    /// mapping to equal values, with computed attributes evaluated.
    /// Evaluation failures compare as not-equal.
    ///
    /// Runs on the cached [`fingerprint`](Self::fingerprint): after the
    /// first comparison involving a tuple, further comparisons cost one
    /// hash check (plus a full key comparison only on hash equality).
    pub fn eq_data(&self, other: &TupleF) -> bool {
        if self.attrs.len() != other.attrs.len() {
            return false;
        }
        match (self.fingerprint(), other.fingerprint()) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        }
    }

    /// A canonical sort key over materialized attributes, used for
    /// deterministic ordering and duplicate elimination in set operations.
    /// Cached: the first call materializes and sorts (see
    /// [`Self::compute_data_key`]); later calls clone the cached value.
    pub fn data_key(&self) -> Result<Value> {
        Ok(self.fingerprint()?.value().clone())
    }

    /// The cached canonical fingerprint (data key + hash), computing and
    /// caching it on first use. Errors (a failing computed attribute) are
    /// never cached, so they surface on every call.
    pub fn fingerprint(&self) -> Result<&DataKey> {
        if self.data_key_cache.get().is_none() {
            let key = self.compute_data_key()?;
            let hash = key.fx_hash();
            // a racing thread may have set it first — identical value,
            // so losing the race is fine
            let _ = self.data_key_cache.set(DataKey { hash, key });
        }
        Ok(self.data_key_cache.get().expect("set above"))
    }

    /// Computes the canonical data key **without** consulting or filling
    /// the cache: every attribute materialized, pairs sorted by name,
    /// flattened into a list. This is the raw O(a log a) computation that
    /// [`Self::data_key`] amortizes; it stays public so benchmarks can
    /// measure the uncached path and tests can cross-check the cache.
    pub fn compute_data_key(&self) -> Result<Value> {
        let mut pairs = self.materialize()?;
        pairs.sort_by(|x, y| x.0.cmp(&y.0));
        Ok(Value::list(
            pairs.into_iter().flat_map(|(n, v)| [Value::Str(n), v]),
        ))
    }
}

impl Function for TupleF {
    fn fn_name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        1
    }

    fn domain(&self) -> Domain {
        Domain::enumerated(self.attrs.iter().map(|(n, _)| Value::Str(n.clone())))
    }

    fn apply(&self, args: &[Value]) -> Result<Value> {
        if args.len() != 1 {
            return Err(FdmError::ArityMismatch {
                function: self.name.to_string(),
                expected: 1,
                found: args.len(),
            });
        }
        let attr = args[0].as_str("tuple function argument")?;
        self.get(attr)
    }
}

impl fmt::Debug for TupleF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.name)?;
        for (i, (n, def)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match def {
                AttrDef::Stored(v) => write!(f, "'{n}': {v}")?,
                AttrDef::Computed(_) => write!(f, "'{n}': <computed>")?,
            }
        }
        write!(f, "}}")
    }
}

/// Builder for [`TupleF`].
pub struct TupleBuilder {
    name: Name,
    attrs: Vec<(Name, AttrDef)>,
}

impl TupleBuilder {
    /// Adds a stored attribute.
    pub fn attr(mut self, name: impl AsRef<str>, value: impl Into<Value>) -> Self {
        self.attrs
            .push((Arc::from(name.as_ref()), AttrDef::Stored(value.into())));
        self
    }

    /// Adds a stored attribute under an already-interned name (no name
    /// re-allocation; see [`TupleF::from_parts`]).
    pub fn attr_name(mut self, name: Name, value: Value) -> Self {
        self.attrs.push((name, AttrDef::Stored(value)));
        self
    }

    /// Adds a computed attribute: a closure over the finished tuple.
    pub fn computed(
        mut self,
        name: impl AsRef<str>,
        f: impl Fn(&TupleF) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        self.attrs
            .push((Arc::from(name.as_ref()), AttrDef::Computed(Arc::new(f))));
        self
    }

    /// Adds a nested function-valued attribute (paper §2.6: `t5('foo') = R`).
    pub fn function(
        mut self,
        name: impl AsRef<str>,
        f: impl Into<crate::function::FnValue>,
    ) -> Self {
        self.attrs.push((
            Arc::from(name.as_ref()),
            AttrDef::Stored(Value::Fn(f.into())),
        ));
        self
    }

    /// Finishes the tuple function.
    pub fn build(self) -> TupleF {
        TupleF {
            name: self.name,
            attrs: self.attrs.into(),
            data_key_cache: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{apply1, FnValue};

    fn t1() -> TupleF {
        TupleF::builder("t1")
            .attr("name", "Alice")
            .attr("foo", 12)
            .build()
    }

    #[test]
    fn paper_t1_lookup() {
        // t1('foo') = 12   (paper §2.3)
        let t = t1();
        assert_eq!(t.get("foo").unwrap(), Value::Int(12));
        assert_eq!(t.get("name").unwrap(), Value::str("Alice"));
        let err = t.get("bar").unwrap_err();
        assert!(matches!(err, FdmError::NoSuchAttribute { .. }));
    }

    #[test]
    fn computed_attr_indistinguishable_from_stored() {
        // t('bar') = 42 · t1('foo') if attr = 'bar', else t1(attr)
        let t = TupleF::builder("t")
            .attr("name", "Alice")
            .attr("foo", 12)
            .computed("bar", |t| t.get("foo")?.mul(&Value::Int(42)))
            .build();
        assert_eq!(t.get("bar").unwrap(), Value::Int(504));
        assert!(t.is_computed("bar"));
        assert!(!t.is_computed("foo"));
        // through the uniform Function interface there is no difference:
        assert_eq!(
            apply1(&t, &Value::str("bar")).unwrap(),
            apply1(&t, &Value::str("foo"))
                .unwrap()
                .mul(&Value::Int(42))
                .unwrap()
        );
    }

    #[test]
    fn function_interface_domain_is_attr_names() {
        let t = t1();
        let d = t.domain();
        assert!(d.contains(&Value::str("name")));
        assert!(!d.contains(&Value::str("nope")));
        let attrs = d.enumerate().unwrap();
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn nested_function_valued_attribute() {
        // t3('foo') = t1 — a higher-order tuple (paper §2.6)
        let inner = t1();
        let t3 = TupleF::builder("t3")
            .attr("name", "Bob")
            .function("foo", inner)
            .build();
        let v = t3.get("foo").unwrap();
        let f = v.as_fn("nested").unwrap();
        let nested = f.as_tuple().unwrap();
        assert_eq!(nested.get("name").unwrap(), Value::str("Alice"));
    }

    #[test]
    fn with_attr_is_persistent() {
        let t = t1();
        let t2 = t.with_attr("foo", 99);
        assert_eq!(t.get("foo").unwrap(), Value::Int(12), "original unchanged");
        assert_eq!(t2.get("foo").unwrap(), Value::Int(99));
        let t3 = t.with_attr("new", "x");
        assert_eq!(t3.attr_count(), 3);
        assert!(!t.has_attr("new"));
    }

    #[test]
    fn without_attr_and_project() {
        let t = t1();
        let no_foo = t.without_attr("foo");
        assert!(!no_foo.has_attr("foo"));
        assert_eq!(no_foo.attr_count(), 1);
        let proj = t.project(&["foo"]).unwrap();
        assert_eq!(proj.attr_count(), 1);
        assert!(t.project(&["nope"]).is_err());
    }

    #[test]
    fn eq_data_is_order_insensitive_and_evaluates_computed() {
        let a = TupleF::builder("a").attr("x", 1).attr("y", 2).build();
        let b = TupleF::builder("b").attr("y", 2).attr("x", 1).build();
        assert!(a.eq_data(&b), "names differ but data equal");
        let c = TupleF::builder("c")
            .attr("y", 2)
            .computed("x", |_| Ok(Value::Int(1)))
            .build();
        assert!(a.eq_data(&c), "computed 1 == stored 1");
        let d = a.with_attr("x", 5);
        assert!(!a.eq_data(&d));
    }

    #[test]
    fn materialize_preserves_declaration_order() {
        let t = TupleF::builder("t").attr("b", 2).attr("a", 1).build();
        let m = t.materialize().unwrap();
        assert_eq!(m[0].0.as_ref(), "b");
        assert_eq!(m[1].0.as_ref(), "a");
    }

    #[test]
    fn failing_computed_attr_propagates_error() {
        let t = TupleF::builder("t")
            .computed("boom", |_| Err(FdmError::Other("kaput".into())))
            .build();
        assert!(t.get("boom").is_err());
        assert!(
            !t.eq_data(&t.clone()),
            "failing tuples are never data-equal"
        );
    }

    #[test]
    fn data_key_is_cached_and_matches_uncached() {
        let t = TupleF::builder("t")
            .attr("b", 2)
            .attr("a", 1)
            .computed("c", |t| t.get("a")?.add(&Value::Int(10)))
            .build();
        let cached = t.data_key().unwrap();
        assert_eq!(cached, t.compute_data_key().unwrap());
        // second call returns the cached value (same answer, no recompute)
        assert_eq!(t.data_key().unwrap(), cached);
        let fp = t.fingerprint().unwrap();
        assert_eq!(fp.value(), &cached);
    }

    #[test]
    fn fingerprint_invalidated_by_every_mutation_path() {
        let t = t1();
        let base = t.data_key().unwrap(); // cache filled
                                          // with_attr (value change)
        let m = t.with_attr("foo", 99);
        assert_eq!(m.data_key().unwrap(), m.compute_data_key().unwrap());
        assert_ne!(m.data_key().unwrap(), base, "stale cache would be equal");
        // with_attr (new attribute)
        let m = t.with_attr("extra", 1);
        assert_eq!(m.data_key().unwrap(), m.compute_data_key().unwrap());
        assert_ne!(m.data_key().unwrap(), base);
        // without_attr
        let m = t.without_attr("foo");
        assert_eq!(m.data_key().unwrap(), m.compute_data_key().unwrap());
        assert_ne!(m.data_key().unwrap(), base);
        // project
        let m = t.project(&["name"]).unwrap();
        assert_eq!(m.data_key().unwrap(), m.compute_data_key().unwrap());
        assert_ne!(m.data_key().unwrap(), base);
        // computed-attr rebinding: replace a stored attr by a computed one
        // with a different value
        let m = TupleF::builder(t.name())
            .attr("name", "Alice")
            .computed("foo", |_| Ok(Value::Int(13)))
            .build();
        assert_eq!(m.data_key().unwrap(), m.compute_data_key().unwrap());
        assert_ne!(m.data_key().unwrap(), base);
        // the original's cache still answers for the original
        assert_eq!(t.data_key().unwrap(), base);
    }

    #[test]
    fn clone_carries_cache_soundly() {
        let t = t1();
        let dk = t.data_key().unwrap();
        let c = t.clone();
        assert_eq!(c.data_key().unwrap(), dk, "same attrs, same key");
        // mutating the clone still invalidates
        let c2 = c.with_attr("foo", 0);
        assert_ne!(c2.data_key().unwrap(), dk);
    }

    #[test]
    fn fingerprint_hash_rejects_unequal_fast() {
        let a = TupleF::builder("a").attr("x", 1).build();
        let b = TupleF::builder("b").attr("x", 2).build();
        let fa = a.fingerprint().unwrap().clone();
        let fb = b.fingerprint().unwrap().clone();
        assert_ne!(fa, fb);
        assert_ne!(fa.hash(), fb.hash(), "FxHash separates 1 from 2");
        // equal data, different declaration order → same fingerprint
        let c = TupleF::builder("c").attr("y", 2).attr("x", 1).build();
        let d = TupleF::builder("d").attr("x", 1).attr("y", 2).build();
        assert_eq!(c.fingerprint().unwrap(), d.fingerprint().unwrap());
    }

    #[test]
    fn failing_computed_attr_is_never_cached() {
        let t = TupleF::builder("t")
            .computed("boom", |_| Err(FdmError::Other("kaput".into())))
            .build();
        assert!(t.fingerprint().is_err());
        assert!(t.fingerprint().is_err(), "error re-surfaces every call");
        assert!(t.data_key().is_err());
    }

    #[test]
    fn tuple_as_fnvalue_in_value() {
        let v = Value::Fn(FnValue::from(t1()));
        assert_eq!(v.value_type(), crate::types::ValueType::Function);
        let s = v.to_string();
        assert!(s.contains("tuple function"), "{s}");
    }
}
